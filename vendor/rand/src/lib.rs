//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of `rand` items the simulator uses are reimplemented here,
//! **bit-for-bit compatible** with `rand` 0.8.5 on 64-bit platforms:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ (as in `rand_xoshiro` /
//!   `rand 0.8`'s `small_rng` feature on 64-bit targets).
//! * [`SeedableRng::seed_from_u64`] expands the seed with SplitMix64,
//!   exactly like `rand_xoshiro` does for the xoshiro family.
//! * `Rng::gen::<f64>()` uses the multiply-based `Standard` conversion
//!   (53 random bits scaled by 2⁻⁵³).
//! * `Rng::gen_range(lo..hi)` for floats uses the `[1, 2)` mantissa-fill
//!   technique of `rand`'s `UniformFloat`.
//!
//! Keeping these identical matters: the repository's golden traces
//! (`tests/golden/*.json`) were produced with the real `rand` crate, and the
//! simulator's determinism guarantee extends across this substitution.

/// The core RNG abstraction: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes (little-endian words).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed.
    ///
    /// The default expansion here is SplitMix64, which is what
    /// `rand_xoshiro` uses for the xoshiro generators (and therefore what
    /// `rand 0.8`'s `SmallRng::seed_from_u64` does on 64-bit platforms).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { x: state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, core::convert::Infallible> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// SplitMix64, used only for seed expansion.
struct SplitMix64 {
    x: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types sampleable by [`Rng::gen`] (the `Standard` distribution of `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8's multiply-based method: 53 random bits in [0, 1).
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        SCALE * (rng.next_u64() >> 11) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        SCALE * (rng.next_u32() >> 8) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand samples a u32 and checks the sign bit (shift-based method).
        rng.next_u32() & (1 << 31) != 0
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = self.end - self.start;
        loop {
            // rand's UniformFloat: fill the 52-bit mantissa to get a value
            // in [1, 2), then scale-and-shift. The retry guards the
            // rounding edge where the result lands exactly on `end`.
            let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased via rejection sampling on the top of the range.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

int_range!(u32, u64, usize, i64);

/// Convenience methods over any [`RngCore`] (the `rand::Rng` extension
/// trait). Blanket-implemented; never implement it by hand.
pub trait Rng: RngCore {
    /// Draws one value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // rand's Bernoulli: compare 64 random bits against p scaled to 2^64.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (1u64 << 32) as f64 * (1u64 << 32) as f64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast RNG: xoshiro256++, matching `rand 0.8`'s `SmallRng` on
    /// 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // rand_xoshiro truncates the low 32 bits for the u64 generators.
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; remap like
                // rand_xoshiro does.
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn matches_rand_xoshiro_reference_vector() {
        // Documented output of rand_xoshiro's
        // `Xoshiro256PlusPlus::seed_from_u64(0)`.
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0x53175d61490b23df);
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10.0..20.0);
            assert!((10.0..20.0).contains(&x));
            let k = rng.gen_range(3u64..9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SmallRng::seed_from_u64(10).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
