//! # bft-simulator
//!
//! An efficient and flexible discrete-event simulator for Byzantine
//! fault-tolerant protocols — a Rust reproduction of the DSN 2022 paper
//! *"An Efficient and Flexible Simulator for Byzantine Fault-Tolerant
//! Protocols"* (Wang, Chao, Wu, Hsiao).
//!
//! This facade crate re-exports the whole workspace and hosts the
//! [`experiments`] module, which regenerates every table and figure of the
//! paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use bft_simulator::prelude::*;
//!
//! // Simulate PBFT with 16 nodes on the paper's default network N(250, 50).
//! let cfg = ProtocolKind::Pbft.configure(
//!     RunConfig::new(16).with_seed(1).with_lambda_ms(1000.0),
//! );
//! let factory = ProtocolKind::Pbft.factory(&cfg, 42);
//! let result = SimulationBuilder::new(cfg)
//!     .network(SampledNetwork::new(Dist::normal(250.0, 50.0)))
//!     .protocols(factory)
//!     .build()
//!     .expect("valid config")
//!     .run();
//! assert!(result.is_clean());
//! println!("latency: {:?}", result.latency());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | `bft-sim-core` | event queue, controller, protocol/adversary interfaces, metrics, validator |
//! | `bft-sim-net` | network models: bounded, GST, link matrices, partitions |
//! | `bft-sim-crypto` | simulated hashing, signatures, VRFs, quorum certificates |
//! | `bft-sim-protocols` | the eight BFT protocols of Table I |
//! | `bft-sim-attacks` | fail-stop, partition, ADD+ static & rushing-adaptive attacks |
//! | `bft-sim-baseline` | packet-level BFTSim stand-in for Fig. 2 |
//! | `bft-sim-simcheck` | deterministic fuzzing harness, correctness oracles, failing-case shrinking |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use bft_sim_attacks as attacks;
pub use bft_sim_baseline as baseline;
pub use bft_sim_core as sim_core;
pub use bft_sim_crypto as crypto;
pub use bft_sim_net as net;
pub use bft_sim_protocols as protocols;
pub use bft_sim_simcheck as simcheck;

pub mod experiments;

/// Everything most users need, in one import.
pub mod prelude {
    pub use bft_sim_attacks::{
        AddAdaptiveRushingAttack, AddStaticAttack, EquivocationAttack, FailStop, PartitionAttack,
        SlowPrimary, SyncViolationAttack,
    };
    pub use bft_sim_baseline::{BaselineConfig, BaselineError, BaselineResult, BaselineSim};
    pub use bft_sim_core::network::{ConstantNetwork, SampledNetwork};
    pub use bft_sim_core::prelude::*;
    pub use bft_sim_net::churn::{ChurnPlan, ChurnedNetwork, DownWindow};
    pub use bft_sim_net::models::{BoundedNetwork, GstNetwork, LinkMatrixNetwork};
    pub use bft_sim_net::partition::{CrossTraffic, PartitionPlan, PartitionedNetwork};
    pub use bft_sim_net::topology::{BandwidthNetwork, LinkProfile, LinkTopology};
    pub use bft_sim_protocols::registry::{NetworkAssumption, ProtocolKind};
    pub use bft_sim_protocols::ProtocolParams;

    pub use crate::experiments::{AttackSpec, Scenario};
}
