//! Generators for every figure of the paper's evaluation (§IV).
//!
//! Each function reproduces the data series of one figure; the benchmark
//! harnesses in `bft-sim-bench` print them as tables, and miniature
//! versions are asserted in the integration tests. Repetition counts are
//! parameters so tests can run small and benches can run the paper's 100.

use std::time::Instant;

use bft_sim_baseline::{BaselineConfig, BaselineSim};
use bft_sim_core::dist::Dist;
use bft_sim_core::ids::NodeId;
use bft_sim_core::metrics::Summary;
use bft_sim_protocols::registry::ProtocolKind;
use bft_sim_protocols::ProtocolParams;

use super::{AttackSpec, Scenario};

/// A `(protocol, x, latency, messages)` data point shared by most figures.
#[derive(Debug, Clone)]
pub struct Point {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// The x-axis label (environment, λ, fail-stop count, …).
    pub x: String,
    /// Latency in seconds (mean ± sd over repetitions).
    pub latency: Summary,
    /// Honest messages per decision (mean ± sd).
    pub messages: Summary,
    /// Fraction of repetitions that hit the time cap without deciding.
    pub timeout_rate: f64,
}

fn measure(scenario: &Scenario, reps: usize, base_seed: u64, x: impl Into<String>) -> Point {
    let results = scenario.run_many(reps, base_seed);
    let timeouts = results.iter().filter(|r| r.timed_out).count();
    for r in &results {
        assert!(
            r.safety_violation.is_none(),
            "{}: safety violated: {:?}",
            scenario.kind,
            r.safety_violation
        );
    }
    Point {
        protocol: scenario.kind,
        x: x.into(),
        latency: scenario.latency_summary(&results),
        messages: scenario.message_summary(&results),
        timeout_rate: timeouts as f64 / reps.max(1) as f64,
    }
}

// ---------------------------------------------------------------- Fig. 2

/// One row of the Fig. 2 speed/scale comparison.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// System size.
    pub n: usize,
    /// Event-level simulator wall-clock (ms, mean ± sd).
    pub core_wall_ms: Summary,
    /// Events the event-level simulator processed.
    pub core_events: u64,
    /// Packet-level baseline wall-clock (ms), `None` if it failed.
    pub baseline_wall_ms: Option<Summary>,
    /// Events the baseline processed, if it ran.
    pub baseline_events: Option<u64>,
    /// `true` when the baseline refused the size (modelled out-of-memory),
    /// as BFTSim does beyond 32 nodes.
    pub baseline_oom: bool,
}

/// Fig. 2: simulation time for PBFT, ours vs the packet-level baseline,
/// λ = 1000 ms, delays N(250, 50). `baseline_cap` skips baseline sizes
/// above it (they would only report OOM anyway — which is recorded).
pub fn fig2(sizes: &[usize], reps: usize, base_seed: u64) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for &n in sizes {
        let scenario = Scenario::new(ProtocolKind::Pbft, n);
        let mut core_walls = Vec::new();
        let mut core_events = 0;
        let _ = scenario.run(base_seed); // warm-up, untimed
        for rep in 0..reps.max(1) {
            let start = Instant::now();
            let result = scenario.run(base_seed + rep as u64);
            core_walls.push(start.elapsed().as_secs_f64() * 1000.0);
            assert!(result.is_clean(), "fig2 core run failed at n={n}");
            core_events = result.events_processed;
        }

        let base_cfg = BaselineConfig::new(n).with_seed(base_seed);
        let params = ProtocolParams::new(base_cfg.n, base_cfg.f, 7);
        let (baseline_wall_ms, baseline_events, baseline_oom) =
            match BaselineSim::new(base_cfg.clone(), bft_sim_protocols::pbft::factory(params)) {
                Err(_) => (None, None, true),
                Ok(_) => {
                    let mut walls = Vec::new();
                    let mut events = 0;
                    let mut oom = false;
                    for rep in 0..reps.max(1) {
                        let cfg = BaselineConfig::new(n).with_seed(base_seed + rep as u64);
                        let sim = BaselineSim::new(cfg, bft_sim_protocols::pbft::factory(params))
                            .expect("size accepted above");
                        let start = Instant::now();
                        match sim.run() {
                            Ok(res) => {
                                walls.push(start.elapsed().as_secs_f64() * 1000.0);
                                events = res.events_processed;
                            }
                            Err(_) => oom = true,
                        }
                    }
                    if walls.is_empty() {
                        (None, None, true)
                    } else {
                        (Some(Summary::of(&walls)), Some(events), oom)
                    }
                }
            };

        rows.push(Fig2Row {
            n,
            core_wall_ms: Summary::of(&core_walls),
            core_events,
            baseline_wall_ms,
            baseline_events,
            baseline_oom,
        });
    }
    rows
}

// ---------------------------------------------------------------- Fig. 3

/// Fig. 3(a)+(b): all eight protocols across the four network environments
/// (λ = 1000 ms). Returns one [`Point`] per (protocol, environment); the
/// latency field is Fig. 3a, the messages field Fig. 3b.
pub fn fig3(n: usize, reps: usize, base_seed: u64) -> Vec<Point> {
    let envs = bft_sim_net::scenarios::fig3_environments();
    let mut points = Vec::new();
    for kind in ProtocolKind::all() {
        for env in envs {
            let label = match env {
                Dist::Normal { mu, sigma } => format!("N({mu:.0},{sigma:.0})"),
                other => format!("{other:?}"),
            };
            let scenario = Scenario::new(kind, n).with_delay(env);
            points.push(measure(&scenario, reps, base_seed, label));
        }
    }
    points
}

// ---------------------------------------------------------------- Fig. 4

/// Fig. 4: latency when the timeout is overestimated — λ swept upward with
/// the network fixed at N(250, 50). Responsive protocols stay flat; the
/// synchronous ones scale with λ.
pub fn fig4(n: usize, reps: usize, base_seed: u64, lambdas: &[f64]) -> Vec<Point> {
    let mut points = Vec::new();
    for kind in ProtocolKind::all() {
        for &lambda in lambdas {
            let scenario = Scenario::new(kind, n).with_lambda(lambda);
            points.push(measure(
                &scenario,
                reps,
                base_seed,
                format!("λ={lambda:.0}"),
            ));
        }
    }
    points
}

// ---------------------------------------------------------------- Fig. 5

/// Fig. 5: latency when the timeout is underestimated — partially
/// synchronous protocols only, λ swept below the actual delay, N(250, 50).
pub fn fig5(n: usize, reps: usize, base_seed: u64, lambdas: &[f64]) -> Vec<Point> {
    let kinds = [
        ProtocolKind::Pbft,
        ProtocolKind::HotStuffNs,
        ProtocolKind::LibraBft,
    ];
    let mut points = Vec::new();
    for kind in kinds {
        for &lambda in lambdas {
            let scenario = Scenario::new(kind, n)
                .with_lambda(lambda)
                // HotStuff+NS can wander for minutes here (that is the
                // finding); give it room before calling a timeout.
                .with_time_cap_s(900.0);
            points.push(measure(
                &scenario,
                reps,
                base_seed,
                format!("λ={lambda:.0}"),
            ));
        }
    }
    points
}

// ---------------------------------------------------------------- Fig. 6

/// Fig. 6: time usage under a network partition that resolves at
/// `resolve_s` seconds. Includes Algorand (the partition-resilient
/// synchronous protocol), async BA, and the partially synchronous trio.
pub fn fig6(n: usize, reps: usize, base_seed: u64, resolve_s: f64) -> Vec<Point> {
    let kinds = [
        ProtocolKind::Algorand,
        ProtocolKind::AsyncBa,
        ProtocolKind::Pbft,
        ProtocolKind::HotStuffNs,
        ProtocolKind::LibraBft,
    ];
    kinds
        .into_iter()
        .map(|kind| {
            // The attacker *drops* cross-partition traffic (§III-C), except
            // against async BA, whose asynchronous model promises eventual
            // delivery — there the attacker delays instead (also §III-C).
            let attack = AttackSpec::Partition {
                start_ms: 0,
                end_ms: (resolve_s * 1000.0) as u64,
                drop: kind != ProtocolKind::AsyncBa,
            };
            // Fig. 6 reports *termination* time (when the first consensus
            // completes), so the pipelined protocols are measured to one
            // decision here rather than their usual ten-decision average.
            let scenario = Scenario::new(kind, n)
                .with_attack(attack)
                .with_decisions(1)
                .with_time_cap_s(900.0);
            measure(&scenario, reps, base_seed, format!("resolve@{resolve_s}s"))
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 7

/// Fig. 7: latency across different numbers of fail-stop nodes
/// (λ = 1000 ms, N(1000, 300)).
pub fn fig7(n: usize, reps: usize, base_seed: u64, failstop_counts: &[usize]) -> Vec<Point> {
    let mut points = Vec::new();
    for kind in ProtocolKind::all() {
        for &k in failstop_counts {
            if k > kind.default_f(n) {
                continue; // beyond the protocol's fault budget
            }
            let scenario = Scenario::new(kind, n)
                .with_delay(Dist::normal(1000.0, 300.0))
                .with_attack(AttackSpec::FailStopLast(k))
                .with_time_cap_s(900.0);
            points.push(measure(&scenario, reps, base_seed, format!("crash={k}")));
        }
    }
    points
}

// ---------------------------------------------------------------- Fig. 8

/// Fig. 8: the static attack (left) and the rushing adaptive attack
/// (right) against the three ADD+ variants. Returns points labelled
/// `static`/`adaptive`/`none`.
pub fn fig8(n: usize, reps: usize, base_seed: u64) -> Vec<Point> {
    let variants = [
        ProtocolKind::AddV1,
        ProtocolKind::AddV2,
        ProtocolKind::AddV3,
    ];
    let mut points = Vec::new();
    for kind in variants {
        let f = kind.default_f(n);
        for (label, attack) in [
            ("none", AttackSpec::None),
            ("static", AttackSpec::AddStatic(f)),
            ("adaptive", AttackSpec::AddAdaptive),
        ] {
            let scenario = Scenario::new(kind, n)
                .with_attack(attack)
                .with_time_cap_s(900.0);
            points.push(measure(&scenario, reps, base_seed, label));
        }
    }
    points
}

// ---------------------------------------------------------------- Fig. 9

/// Fig. 9: each node's view over time during a HotStuff+NS execution with
/// an underestimated timeout (λ = 150 ms, N(250, 50)) — the
/// view-synchronisation visualisation. Returns `(node, [(t_secs, view)])`
/// per node for a single seeded run.
pub fn fig9(n: usize, seed: u64) -> Vec<(NodeId, Vec<(f64, u64)>)> {
    let scenario = Scenario::new(ProtocolKind::HotStuffNs, n)
        .with_lambda(150.0)
        .with_time_cap_s(900.0);
    let result = scenario.run(seed);
    NodeId::all(n)
        .map(|id| {
            let timeline = result
                .trace
                .view_timeline(id)
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v))
                .collect();
            (id, timeline)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_row_shape() {
        let rows = fig2(&[4], 1, 11);
        assert_eq!(rows.len(), 1);
        assert!(!rows[0].baseline_oom);
        assert!(rows[0].core_events > 0);
        assert!(rows[0].baseline_events.unwrap() > rows[0].core_events);
    }

    #[test]
    fn fig9_produces_view_timelines() {
        let lines = fig9(4, 3);
        assert_eq!(lines.len(), 4);
        for (_, timeline) in &lines {
            assert!(!timeline.is_empty());
        }
    }
}
