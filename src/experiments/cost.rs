//! Computation-cost and throughput estimation.
//!
//! The paper's simulator does not model computation and therefore cannot
//! measure throughput, but §III-A3 sketches the fix: "estimate the
//! computation time through calculating the number of computationally
//! expensive operations, such as cryptography operations". This module
//! implements that sketch: per-node message counts (one signature per send,
//! one verification per delivery) are priced with a [`CostModel`], giving
//! each node's CPU time, the system's critical-path utilisation, and an
//! estimated sustainable throughput.

use bft_sim_core::ids::NodeId;
use bft_sim_core::metrics::RunResult;

/// Microsecond prices for the two dominant cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of producing one signature (µs).
    pub sign_us: f64,
    /// Cost of verifying one signature (µs).
    pub verify_us: f64,
}

impl CostModel {
    /// Ed25519 on commodity hardware: ~50 µs sign, ~150 µs verify.
    pub fn ed25519() -> Self {
        CostModel {
            sign_us: 50.0,
            verify_us: 150.0,
        }
    }

    /// RSA-2048: slow signing (~1.5 ms), fast verification (~50 µs).
    pub fn rsa2048() -> Self {
        CostModel {
            sign_us: 1500.0,
            verify_us: 50.0,
        }
    }

    /// Symmetric MACs (as classic PBFT used): ~1 µs each way.
    pub fn mac() -> Self {
        CostModel {
            sign_us: 1.0,
            verify_us: 1.0,
        }
    }

    /// Estimates the computation profile of a finished run.
    pub fn estimate(&self, result: &RunResult) -> CostEstimate {
        let per_node_us: Vec<f64> = result
            .sent_per_node
            .iter()
            .zip(&result.delivered_per_node)
            .map(|(&sent, &delivered)| {
                sent as f64 * self.sign_us + delivered as f64 * self.verify_us
            })
            .collect();
        let (busiest, &busiest_us) = per_node_us
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap_or((0, &0.0));
        let wall_us = result.end_time.as_micros() as f64;
        let utilisation = if wall_us > 0.0 {
            busiest_us / wall_us
        } else {
            0.0
        };
        let decisions = result.decisions_completed();
        let decisions_per_sec = if result.end_time.as_secs_f64() > 0.0 {
            decisions as f64 / result.end_time.as_secs_f64()
        } else {
            0.0
        };
        // The busiest node's CPU is the throughput bottleneck: the observed
        // rate can be scaled until that node saturates.
        let max_decisions_per_sec = if utilisation > 0.0 {
            decisions_per_sec / utilisation
        } else {
            f64::INFINITY
        };
        CostEstimate {
            per_node_us,
            busiest_node: NodeId::new(busiest as u32),
            busiest_node_us: busiest_us,
            cpu_utilisation: utilisation,
            decisions_per_sec,
            max_decisions_per_sec,
        }
    }
}

/// The computation profile of one run under a [`CostModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Estimated CPU microseconds per node.
    pub per_node_us: Vec<f64>,
    /// The node doing the most cryptographic work (usually the leader).
    pub busiest_node: NodeId,
    /// Its CPU time (µs).
    pub busiest_node_us: f64,
    /// Fraction of wall-clock the busiest node spent on crypto (> 1 means
    /// the modelled hardware could not keep up with the simulated rate).
    pub cpu_utilisation: f64,
    /// Decisions per simulated second actually observed.
    pub decisions_per_sec: f64,
    /// Estimated sustainable decisions per second before the busiest node
    /// saturates.
    pub max_decisions_per_sec: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Scenario;
    use bft_sim_protocols::registry::ProtocolKind;

    #[test]
    fn leaders_do_more_work_than_followers_in_pbft() {
        let result = Scenario::new(ProtocolKind::Pbft, 7).run(4);
        let est = CostModel::ed25519().estimate(&result);
        assert_eq!(est.per_node_us.len(), 7);
        assert!(est.busiest_node_us > 0.0);
        assert!(est.cpu_utilisation > 0.0);
        assert!(est.max_decisions_per_sec > 0.0);
    }

    #[test]
    fn linear_hotstuff_is_cheaper_per_node_than_quadratic_pbft() {
        let pbft = Scenario::new(ProtocolKind::Pbft, 16).run(4);
        let hs = Scenario::new(ProtocolKind::HotStuffNs, 16).run(4);
        let model = CostModel::ed25519();
        let pbft_follower_avg: f64 = model.estimate(&pbft).per_node_us.iter().sum::<f64>()
            / 16.0
            / pbft.decisions_completed() as f64;
        let hs_follower_avg: f64 = model.estimate(&hs).per_node_us.iter().sum::<f64>()
            / 16.0
            / hs.decisions_completed() as f64;
        assert!(
            hs_follower_avg < pbft_follower_avg / 4.0,
            "hotstuff {hs_follower_avg:.1} vs pbft {pbft_follower_avg:.1} µs/node/decision"
        );
    }

    #[test]
    fn cost_models_order_sensibly() {
        let result = Scenario::new(ProtocolKind::Pbft, 4).run(4);
        let mac = CostModel::mac().estimate(&result);
        let ed = CostModel::ed25519().estimate(&result);
        assert!(mac.busiest_node_us < ed.busiest_node_us);
        assert!(mac.max_decisions_per_sec > ed.max_decisions_per_sec);
    }
}
