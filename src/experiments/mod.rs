//! The paper's evaluation (§IV), reproducible: scenario runner, attack
//! specifications, repetition machinery and per-figure generators.
//!
//! Every table and figure of the paper has a generator in [`figures`]; the
//! benchmark harnesses in `bft-sim-bench` print them, and miniature versions
//! run inside the integration test-suite.

pub mod cost;
pub mod figures;
pub mod loc;

use bft_sim_core::adversary::{Adversary, NullAdversary};
use bft_sim_core::config::RunConfig;
use bft_sim_core::dist::Dist;
use bft_sim_core::engine::SimulationBuilder;
use bft_sim_core::metrics::{RunResult, Summary};
use bft_sim_core::network::SampledNetwork;
use bft_sim_core::scheduler::SchedulerKind;
use bft_sim_core::time::{SimDuration, SimTime};
use bft_sim_net::partition::{CrossTraffic, PartitionPlan};
use bft_sim_protocols::registry::ProtocolKind;

use bft_sim_attacks::{AddAdaptiveRushingAttack, AddStaticAttack, FailStop, PartitionAttack};

/// A declarative attack choice, buildable per repetition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackSpec {
    /// No attack.
    None,
    /// Fail-stop the last `k` nodes at start (Fig. 7).
    FailStopLast(usize),
    /// Split the network in half between the two times (Fig. 6). With
    /// `drop` the attacker discards cross traffic; otherwise it holds it
    /// back until the partition resolves (both modes appear in §III-C).
    Partition {
        /// Partition start (ms).
        start_ms: u64,
        /// Partition resolution (ms).
        end_ms: u64,
        /// Drop cross traffic instead of delaying it.
        drop: bool,
    },
    /// Fail-stop the first `k` round-robin leaders (Fig. 8, left).
    AddStatic(usize),
    /// Rushing adaptive leader corruption (Fig. 8, right).
    AddAdaptive,
}

impl AttackSpec {
    fn build(self, n: usize) -> Box<dyn Adversary> {
        match self {
            AttackSpec::None => Box::new(NullAdversary::new()),
            AttackSpec::FailStopLast(k) => Box::new(FailStop::last_k(n, k)),
            AttackSpec::Partition {
                start_ms,
                end_ms,
                drop,
            } => Box::new(PartitionAttack::new(PartitionPlan::halves(
                n,
                SimTime::from_millis(start_ms),
                SimTime::from_millis(end_ms),
                if drop {
                    CrossTraffic::Drop
                } else {
                    CrossTraffic::HoldUntilResolve
                },
            ))),
            AttackSpec::AddStatic(k) => Box::new(AddStaticAttack::new(k)),
            AttackSpec::AddAdaptive => Box::new(AddAdaptiveRushingAttack::new()),
        }
    }
}

/// One experiment scenario: a protocol under a network condition, a timeout
/// configuration λ, and optionally an attack.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The protocol under test.
    pub kind: ProtocolKind,
    /// System size.
    pub n: usize,
    /// Timeout parameter λ (ms).
    pub lambda_ms: f64,
    /// Message-delay distribution (ms).
    pub delay: Dist,
    /// The attack, if any.
    pub attack: AttackSpec,
    /// Simulated-time cap (s); timed-out runs report the cap as latency.
    pub time_cap_s: f64,
    /// Shared-randomness seed for VRFs / common coins.
    pub genesis_seed: u64,
    /// Decision target; `None` uses the paper's per-protocol convention
    /// (10 for the pipelined protocols, 1 otherwise).
    pub decisions: Option<u64>,
    /// Event-scheduler backend for every repetition. Results are
    /// byte-identical under every backend (the scheduler determinism
    /// contract); the knob only changes the simulator's own speed.
    pub scheduler: SchedulerKind,
}

impl Scenario {
    /// A scenario with the paper's defaults: λ = 1000 ms, delays
    /// N(250, 50), no attack, 600 s cap.
    pub fn new(kind: ProtocolKind, n: usize) -> Self {
        Scenario {
            kind,
            n,
            lambda_ms: 1000.0,
            delay: Dist::normal(250.0, 50.0),
            attack: AttackSpec::None,
            time_cap_s: 600.0,
            genesis_seed: 7,
            decisions: None,
            scheduler: SchedulerKind::default(),
        }
    }

    /// Sets λ (ms).
    pub fn with_lambda(mut self, lambda_ms: f64) -> Self {
        self.lambda_ms = lambda_ms;
        self
    }

    /// Sets the delay distribution.
    pub fn with_delay(mut self, delay: Dist) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the attack.
    pub fn with_attack(mut self, attack: AttackSpec) -> Self {
        self.attack = attack;
        self
    }

    /// Sets the simulated-time cap in seconds.
    pub fn with_time_cap_s(mut self, cap: f64) -> Self {
        self.time_cap_s = cap;
        self
    }

    /// Overrides the decision target.
    pub fn with_decisions(mut self, k: u64) -> Self {
        self.decisions = Some(k);
        self
    }

    /// Selects the event-scheduler backend.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The decision target in effect.
    pub fn target_decisions(&self) -> u64 {
        self.decisions
            .unwrap_or_else(|| self.kind.measured_decisions())
    }

    /// Runs the scenario once with the given seed.
    pub fn run(&self, seed: u64) -> RunResult {
        let cfg = self
            .kind
            .configure(
                RunConfig::new(self.n)
                    .with_seed(seed)
                    .with_lambda_ms(self.lambda_ms)
                    .with_time_cap(SimDuration::from_secs(self.time_cap_s)),
            )
            .with_target_decisions(self.target_decisions());
        let factory = self.kind.factory(&cfg, self.genesis_seed);
        let n = cfg.n;
        SimulationBuilder::new(cfg)
            .network(SampledNetwork::new(self.delay))
            .scheduler(self.scheduler)
            .adversary(BoxedAdversary(self.attack.build(n)))
            .protocols(factory)
            .build()
            .expect("scenario configuration is valid")
            .run()
    }

    /// Runs `reps` seeded repetitions in parallel (the paper uses 100),
    /// using all available cores. Results come back in seed order, so the
    /// output is identical to running serially.
    pub fn run_many(&self, reps: usize, base_seed: u64) -> Vec<RunResult> {
        self.run_many_threads(reps, base_seed, 0)
    }

    /// Like [`run_many`](Scenario::run_many) with an explicit worker-thread
    /// count (0 = available parallelism). Repetitions are sharded through
    /// the deterministic sweep engine (work-stealing, seed-order
    /// reassembly); a panic in any repetition is re-raised here, since the
    /// experiment scenarios are all expected to run clean.
    pub fn run_many_threads(&self, reps: usize, base_seed: u64, threads: usize) -> Vec<RunResult> {
        bft_sim_core::sweep::sweep(reps, threads, |i| self.run(base_seed + i as u64))
            .into_iter()
            .map(|r| match r {
                Ok(result) => result,
                Err(p) => panic!("{p}"),
            })
            .collect()
    }

    /// The latency metric the paper reports for this protocol, in seconds:
    /// average per decision over ten decisions for the pipelined protocols,
    /// time to the single decision otherwise. Timed-out runs report the
    /// full (capped) run time.
    pub fn latency_secs(&self, result: &RunResult) -> f64 {
        let k = self.target_decisions() as usize;
        let measured = if self.kind.pipelined() {
            result.avg_latency_per_decision(k)
        } else {
            result.latency()
        };
        measured
            .map(|d| d.as_secs_f64())
            .unwrap_or_else(|| result.end_time.as_secs_f64())
    }

    /// The message-usage metric: honest messages per decision.
    pub fn messages_per_decision(&self, result: &RunResult) -> f64 {
        result
            .messages_per_decision()
            .unwrap_or(result.honest_messages as f64)
    }

    /// Latency summary (mean ± sd seconds) over repetitions.
    pub fn latency_summary(&self, results: &[RunResult]) -> Summary {
        Summary::of(
            &results
                .iter()
                .map(|r| self.latency_secs(r))
                .collect::<Vec<_>>(),
        )
    }

    /// Message-usage summary over repetitions.
    pub fn message_summary(&self, results: &[RunResult]) -> Summary {
        Summary::of(
            &results
                .iter()
                .map(|r| self.messages_per_decision(r))
                .collect::<Vec<_>>(),
        )
    }
}

/// Adapter: the engine builder takes a concrete `A: Adversary`; this wraps
/// the trait object produced by [`AttackSpec::build`].
struct BoxedAdversary(Box<dyn Adversary>);

impl Adversary for BoxedAdversary {
    fn init(&mut self, api: &mut bft_sim_core::adversary::AdversaryApi<'_>) {
        self.0.init(api);
    }

    fn attack(
        &mut self,
        msg: &mut bft_sim_core::message::Message,
        proposed: SimDuration,
        api: &mut bft_sim_core::adversary::AdversaryApi<'_>,
    ) -> bft_sim_core::adversary::Fate {
        self.0.attack(msg, proposed, api)
    }

    fn on_timer(&mut self, tag: u64, api: &mut bft_sim_core::adversary::AdversaryApi<'_>) {
        self.0.on_timer(tag, api);
    }

    fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_and_summarises() {
        let s = Scenario::new(ProtocolKind::Pbft, 4);
        let results = s.run_many(4, 100);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.is_clean());
        }
        let lat = s.latency_summary(&results);
        assert!(lat.mean > 0.0 && lat.count == 4);
        let msg = s.message_summary(&results);
        assert!(msg.mean > 0.0);
    }

    #[test]
    fn repetitions_are_deterministic_in_aggregate() {
        let s = Scenario::new(ProtocolKind::AsyncBa, 4);
        let a = s.latency_summary(&s.run_many(3, 5));
        let b = s.latency_summary(&s.run_many(3, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn attack_specs_build() {
        for spec in [
            AttackSpec::None,
            AttackSpec::FailStopLast(1),
            AttackSpec::Partition {
                start_ms: 0,
                end_ms: 10,
                drop: true,
            },
            AttackSpec::AddStatic(1),
            AttackSpec::AddAdaptive,
        ] {
            let _ = spec.build(4);
        }
    }
}
