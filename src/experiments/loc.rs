//! Lines-of-code accounting for Tables I and II.
//!
//! The paper reports implementation size to argue the simulator makes
//! protocols and attacks cheap to express. We embed the workspace's own
//! protocol and attack sources at compile time and count *implementation*
//! lines: non-blank, non-comment lines above the `#[cfg(test)]` marker.

/// Counts implementation lines in a module source: non-blank, non-comment
/// lines, stopping at the unit-test section.
pub fn implementation_loc(source: &str) -> usize {
    source
        .lines()
        .take_while(|line| !line.trim_start().starts_with("#[cfg(test)]"))
        .filter(|line| {
            let t = line.trim();
            !t.is_empty() && !t.starts_with("//")
        })
        .count()
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolLoc {
    /// Protocol name.
    pub name: &'static str,
    /// Its network-model assumption.
    pub network: &'static str,
    /// Implementation lines of code.
    pub loc: usize,
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackLoc {
    /// Attack name.
    pub name: &'static str,
    /// Attacker capability, as in the paper's Table II.
    pub capability: &'static str,
    /// Implementation lines of code.
    pub loc: usize,
}

/// Table I: LoC of each implemented protocol. The ADD+ variants share the
/// lock-step machine, so each variant is charged its wrapper plus the
/// machine (mirroring that the paper's three variants each carry the full
/// protocol).
pub fn table1() -> Vec<ProtocolLoc> {
    let add_machine = implementation_loc(include_str!("../../crates/protocols/src/add/machine.rs"));
    vec![
        ProtocolLoc {
            name: "add-v1",
            network: "synchronous",
            loc: add_machine
                + implementation_loc(include_str!("../../crates/protocols/src/add/v1.rs")),
        },
        ProtocolLoc {
            name: "add-v2",
            network: "synchronous",
            loc: add_machine
                + implementation_loc(include_str!("../../crates/protocols/src/add/v2.rs")),
        },
        ProtocolLoc {
            name: "add-v3",
            network: "synchronous",
            loc: add_machine
                + implementation_loc(include_str!("../../crates/protocols/src/add/v3.rs")),
        },
        ProtocolLoc {
            name: "algorand",
            network: "synchronous",
            loc: implementation_loc(include_str!("../../crates/protocols/src/algorand.rs")),
        },
        ProtocolLoc {
            name: "async-ba",
            network: "asynchronous",
            loc: implementation_loc(include_str!("../../crates/protocols/src/async_ba.rs")),
        },
        ProtocolLoc {
            name: "pbft",
            network: "partially-synchronous",
            loc: implementation_loc(include_str!("../../crates/protocols/src/pbft.rs")),
        },
        ProtocolLoc {
            name: "hotstuff-ns",
            network: "partially-synchronous",
            loc: implementation_loc(include_str!("../../crates/protocols/src/hotstuff.rs")),
        },
        ProtocolLoc {
            name: "librabft",
            network: "partially-synchronous",
            loc: implementation_loc(include_str!("../../crates/protocols/src/librabft.rs")),
        },
    ]
}

/// Table II: LoC of each implemented attack.
pub fn table2() -> Vec<AttackLoc> {
    let add_attacks = include_str!("../../crates/attacks/src/add_attacks.rs");
    // The two ADD+ attacks share a file; attribute lines by struct block.
    let (static_loc, adaptive_loc) = split_add_attacks(add_attacks);
    vec![
        AttackLoc {
            name: "network-partition",
            capability: "partition",
            loc: implementation_loc(include_str!("../../crates/attacks/src/partition.rs")),
        },
        AttackLoc {
            name: "fail-stop",
            capability: "crash",
            loc: implementation_loc(include_str!("../../crates/attacks/src/fail_stop.rs")),
        },
        AttackLoc {
            name: "add-static",
            capability: "static",
            loc: static_loc,
        },
        AttackLoc {
            name: "add-adaptive",
            capability: "rushing + adaptive",
            loc: adaptive_loc,
        },
    ]
}

/// Splits the shared `add_attacks.rs` by the adaptive attack's doc anchor.
fn split_add_attacks(source: &str) -> (usize, usize) {
    let marker = "Rushing adaptive attack";
    let split = source
        .lines()
        .position(|l| l.contains(marker))
        .unwrap_or(source.lines().count());
    let head: String = source.lines().take(split).collect::<Vec<_>>().join("\n");
    let tail: String = source.lines().skip(split).collect::<Vec<_>>().join("\n");
    (implementation_loc(&head), implementation_loc(&tail))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_skips_blanks_comments_and_tests() {
        let src = "fn a() {}\n\n// comment\nfn b() {}\n#[cfg(test)]\nmod tests { fn c() {} }\n";
        assert_eq!(implementation_loc(src), 2);
    }

    #[test]
    fn table1_has_eight_rows_of_plausible_size() {
        let t = table1();
        assert_eq!(t.len(), 8);
        for row in &t {
            assert!(
                row.loc > 50 && row.loc < 2000,
                "{}: implausible loc {}",
                row.name,
                row.loc
            );
        }
    }

    #[test]
    fn table2_attacks_are_compact() {
        let t = table2();
        assert_eq!(t.len(), 4);
        for row in &t {
            assert!(
                row.loc > 5 && row.loc < 400,
                "{}: attacks should be small, got {}",
                row.name,
                row.loc
            );
        }
    }
}
