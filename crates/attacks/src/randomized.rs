//! A seeded, budgeted, randomized adversary for schedule fuzzing.
//!
//! [`RandomizedAdversary`] composes the primitive capabilities of the
//! attacker module — drop, delay, and equivocation-style payload replay —
//! under a probability [`FuzzBudget`], driven by its *own* seeded RNG so the
//! attack sequence depends only on the adversary seed and the order of
//! intercepted messages (which the run seed fixes). Every action it takes is
//! logged as a [`FuzzAction`] against the index of the message it hit; the
//! log can be re-run verbatim in **scripted** mode, which is what lets the
//! `simcheck` shrinker delete actions one by one and re-test.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bft_sim_core::adversary::{Adversary, AdversaryApi, Fate};
use bft_sim_core::ids::NodeId;
use bft_sim_core::json::Json;
use bft_sim_core::message::Message;
use bft_sim_core::time::SimDuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What the adversary did to one intercepted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzActionKind {
    /// Dropped the message.
    Drop,
    /// Delivered the message `extra_micros` later than the network proposed.
    Delay {
        /// Extra delay added on top of the network's proposed delay.
        extra_micros: u64,
    },
    /// Delivered the message normally but *also* injected a copy of its
    /// payload to `dst`, claiming the original sender — a stale re-delivery,
    /// the building block of equivocation-style confusion.
    Replay {
        /// The node that receives the duplicated payload.
        dst: NodeId,
        /// Delivery delay of the duplicate.
        delay_micros: u64,
    },
}

/// One logged adversary action: `kind` applied to the `msg_index`-th honest
/// transmission of the run (0-based, in send order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzAction {
    /// Index of the intercepted message, counting every honest transmission
    /// the adversary saw, in order.
    pub msg_index: u64,
    /// What was done to it.
    pub kind: FuzzActionKind,
}

/// Probability budget for [`RandomizedAdversary::generate`] mode.
///
/// Per intercepted message the adversary rolls, in order: drop, delay,
/// replay; the first roll that hits is applied. `max_actions` caps the total
/// number of actions per run so shrunk reproducers stay small and benign
/// configurations (`max_actions == 0`) stay benign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzBudget {
    /// Probability of dropping an intercepted message.
    pub drop_prob: f64,
    /// Probability of delaying an intercepted message.
    pub delay_prob: f64,
    /// Probability of replaying an intercepted payload to a random node.
    pub replay_prob: f64,
    /// Upper bound (exclusive is fine at 0) on the sampled extra delay.
    pub max_extra_delay_micros: u64,
    /// Hard cap on actions per run; `0` disables the adversary entirely.
    pub max_actions: u64,
}

impl FuzzBudget {
    /// A benign budget: the adversary touches nothing.
    pub fn benign() -> Self {
        FuzzBudget {
            drop_prob: 0.0,
            delay_prob: 0.0,
            replay_prob: 0.0,
            max_extra_delay_micros: 0,
            max_actions: 0,
        }
    }

    /// A budget scaled by `intensity` in `[0, 1]`: at `1.0` roughly 6% of
    /// messages are dropped, 10% delayed (by up to four λ at λ = 1 s) and 4%
    /// replayed, capped at `max_actions`.
    pub fn with_intensity(intensity: f64, max_actions: u64) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        FuzzBudget {
            drop_prob: 0.06 * intensity,
            delay_prob: 0.10 * intensity,
            replay_prob: 0.04 * intensity,
            max_extra_delay_micros: 4_000_000,
            max_actions,
        }
    }
}

enum Mode {
    /// Roll fresh actions from the seeded RNG, within the budget.
    Generate { rng: SmallRng, budget: FuzzBudget },
    /// Apply exactly the given actions, by message index.
    Scripted {
        by_index: HashMap<u64, FuzzActionKind>,
    },
}

/// Shared handle onto the adversary's action log, readable after
/// `Simulation::run` has consumed the adversary itself.
#[derive(Debug, Clone, Default)]
pub struct FuzzActionLog {
    shared: Arc<Mutex<Vec<FuzzAction>>>,
}

impl FuzzActionLog {
    /// A copy of every action applied so far, in message-index order.
    pub fn snapshot(&self) -> Vec<FuzzAction> {
        self.shared.lock().expect("fuzz log lock").clone()
    }

    fn push(&self, action: FuzzAction) {
        self.shared.lock().expect("fuzz log lock").push(action);
    }
}

/// The randomized (or scripted) fuzzing adversary. See the module docs.
pub struct RandomizedAdversary {
    mode: Mode,
    log: FuzzActionLog,
    next_index: u64,
    applied: u64,
}

impl core::fmt::Debug for RandomizedAdversary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RandomizedAdversary")
            .field(
                "mode",
                match &self.mode {
                    Mode::Generate { .. } => &"generate",
                    Mode::Scripted { .. } => &"scripted",
                },
            )
            .field("next_index", &self.next_index)
            .field("applied", &self.applied)
            .finish()
    }
}

impl RandomizedAdversary {
    /// Creates a generating adversary with its own RNG seeded from `seed`.
    ///
    /// The seed is independent of the run seed on purpose: the same attack
    /// sequence can then be aimed at different network samples, and vice
    /// versa.
    pub fn generate(seed: u64, budget: FuzzBudget) -> Self {
        RandomizedAdversary {
            mode: Mode::Generate {
                rng: SmallRng::seed_from_u64(seed),
                budget,
            },
            log: FuzzActionLog::default(),
            next_index: 0,
            applied: 0,
        }
    }

    /// Creates a scripted adversary that re-applies exactly `actions`.
    ///
    /// Duplicate `msg_index` entries keep the last occurrence.
    pub fn scripted(actions: &[FuzzAction]) -> Self {
        RandomizedAdversary {
            mode: Mode::Scripted {
                by_index: actions.iter().map(|a| (a.msg_index, a.kind)).collect(),
            },
            log: FuzzActionLog::default(),
            next_index: 0,
            applied: 0,
        }
    }

    /// A shared handle onto the action log; clone it out before moving the
    /// adversary into a `SimulationBuilder`.
    pub fn log_handle(&self) -> FuzzActionLog {
        self.log.clone()
    }

    fn decide_action(&mut self, n: usize) -> Option<FuzzActionKind> {
        match &mut self.mode {
            Mode::Scripted { by_index } => by_index.get(&self.next_index).copied(),
            Mode::Generate { rng, budget } => {
                if self.applied >= budget.max_actions {
                    return None;
                }
                // One roll per capability, in a fixed order, every message —
                // the RNG consumption pattern must not depend on earlier
                // outcomes or the sequence loses its meaning when shrunk.
                let drop = rng.gen_bool(budget.drop_prob);
                let delay = rng.gen_bool(budget.delay_prob);
                let replay = rng.gen_bool(budget.replay_prob);
                let extra = if budget.max_extra_delay_micros > 0 {
                    rng.gen_range(0..budget.max_extra_delay_micros)
                } else {
                    0
                };
                let dst = NodeId::new(rng.gen_range(0..n as u32));
                if drop {
                    Some(FuzzActionKind::Drop)
                } else if delay {
                    Some(FuzzActionKind::Delay {
                        extra_micros: extra,
                    })
                } else if replay {
                    Some(FuzzActionKind::Replay {
                        dst,
                        delay_micros: extra,
                    })
                } else {
                    None
                }
            }
        }
    }
}

impl Adversary for RandomizedAdversary {
    fn attack(
        &mut self,
        msg: &mut Message,
        proposed: SimDuration,
        api: &mut AdversaryApi<'_>,
    ) -> Fate {
        let action = self.decide_action(api.n());
        let index = self.next_index;
        self.next_index += 1;
        let Some(kind) = action else {
            return Fate::Deliver(proposed);
        };
        self.applied += 1;
        self.log.push(FuzzAction {
            msg_index: index,
            kind,
        });
        match kind {
            FuzzActionKind::Drop => Fate::Drop,
            FuzzActionKind::Delay { extra_micros } => {
                Fate::Deliver(proposed + SimDuration::from_micros(extra_micros))
            }
            FuzzActionKind::Replay { dst, delay_micros } => {
                api.inject_payload(
                    msg.src(),
                    dst,
                    SimDuration::from_micros(delay_micros),
                    msg.clone_payload_arc(),
                );
                Fate::Deliver(proposed)
            }
        }
    }

    fn name(&self) -> &'static str {
        "randomized"
    }
}

/// Serializes a list of actions for repro files.
pub fn actions_to_json(actions: &[FuzzAction]) -> Json {
    Json::Arr(
        actions
            .iter()
            .map(|a| {
                let kind = match a.kind {
                    FuzzActionKind::Drop => Json::from("Drop"),
                    FuzzActionKind::Delay { extra_micros } => Json::obj([(
                        "Delay",
                        Json::obj([("extra_micros", Json::from(extra_micros))]),
                    )]),
                    FuzzActionKind::Replay { dst, delay_micros } => Json::obj([(
                        "Replay",
                        Json::obj([
                            ("dst", Json::from(dst.as_u32())),
                            ("delay_micros", Json::from(delay_micros)),
                        ]),
                    )]),
                };
                Json::obj([("msg_index", Json::from(a.msg_index)), ("kind", kind)])
            })
            .collect(),
    )
}

/// Parses the format produced by [`actions_to_json`].
///
/// # Errors
///
/// Returns a description of the first malformed entry, naming its index.
pub fn actions_from_json(json: &Json) -> Result<Vec<FuzzAction>, String> {
    let entries = json.as_arr().ok_or("actions: expected an array")?;
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| action_from_json(e).map_err(|err| format!("actions: entry #{i}: {err}")))
        .collect()
}

fn action_from_json(json: &Json) -> Result<FuzzAction, String> {
    let msg_index = json
        .get("msg_index")
        .and_then(Json::as_u64)
        .ok_or("bad \"msg_index\"")?;
    let kind = json.get("kind").ok_or("missing \"kind\"")?;
    let field = |body: &Json, name: &str| -> Result<u64, String> {
        body.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("bad \"{name}\""))
    };
    let kind = if kind.as_str() == Some("Drop") {
        FuzzActionKind::Drop
    } else if let Some(body) = kind.get("Delay") {
        FuzzActionKind::Delay {
            extra_micros: field(body, "extra_micros")?,
        }
    } else if let Some(body) = kind.get("Replay") {
        FuzzActionKind::Replay {
            dst: NodeId::new(field(body, "dst")? as u32),
            delay_micros: field(body, "delay_micros")?,
        }
    } else {
        return Err(format!("unknown kind {kind}"));
    };
    Ok(FuzzAction { msg_index, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::config::RunConfig;
    use bft_sim_core::engine::SimulationBuilder;
    use bft_sim_core::network::ConstantNetwork;
    use bft_sim_core::time::SimDuration;
    use bft_sim_protocols::registry::ProtocolKind;

    fn run_with(
        adv: RandomizedAdversary,
        seed: u64,
    ) -> (bft_sim_core::metrics::RunResult, Vec<FuzzAction>) {
        let kind = ProtocolKind::Pbft;
        let cfg = kind.configure(
            RunConfig::new(7)
                .with_seed(seed)
                .with_lambda_ms(1000.0)
                .with_time_cap(SimDuration::from_secs(300.0)),
        );
        let log = adv.log_handle();
        let factory = kind.factory(&cfg, 23);
        let result = SimulationBuilder::new(cfg)
            .network(ConstantNetwork::new(SimDuration::from_millis(100.0)))
            .adversary(adv)
            .protocols(factory)
            .build()
            .unwrap()
            .run();
        (result, log.snapshot())
    }

    #[test]
    fn generated_actions_are_deterministic_per_seed() {
        let budget = FuzzBudget::with_intensity(0.5, 64);
        let (r1, a1) = run_with(RandomizedAdversary::generate(9, budget), 5);
        let (r2, a2) = run_with(RandomizedAdversary::generate(9, budget), 5);
        assert_eq!(a1, a2, "same seeds must replay the same attack");
        assert_eq!(r1, r2, "same seeds must reproduce the same run");
        assert!(!a1.is_empty(), "intensity 0.5 must act on a PBFT run");
    }

    #[test]
    fn scripted_mode_reapplies_the_generated_log() {
        let budget = FuzzBudget::with_intensity(0.5, 64);
        let (r1, a1) = run_with(RandomizedAdversary::generate(9, budget), 5);
        let (r2, a2) = run_with(RandomizedAdversary::scripted(&a1), 5);
        assert_eq!(a1, a2, "script must apply exactly the recorded actions");
        assert_eq!(r1, r2, "scripted replay must reproduce the run");
    }

    #[test]
    fn benign_budget_touches_nothing() {
        let (r, actions) = run_with(RandomizedAdversary::generate(9, FuzzBudget::benign()), 5);
        assert!(actions.is_empty());
        assert!(r.is_clean(), "{:?}", r.safety_violation);
        assert_eq!(r.dropped_messages, 0);
        assert_eq!(r.adversary_messages, 0);
    }

    #[test]
    fn max_actions_caps_the_attack() {
        let budget = FuzzBudget {
            max_actions: 3,
            ..FuzzBudget::with_intensity(1.0, 3)
        };
        let (_, actions) = run_with(RandomizedAdversary::generate(9, budget), 5);
        assert_eq!(actions.len(), 3);
    }

    #[test]
    fn actions_json_round_trip() {
        let actions = vec![
            FuzzAction {
                msg_index: 0,
                kind: FuzzActionKind::Drop,
            },
            FuzzAction {
                msg_index: 17,
                kind: FuzzActionKind::Delay { extra_micros: 250 },
            },
            FuzzAction {
                msg_index: 99,
                kind: FuzzActionKind::Replay {
                    dst: NodeId::new(3),
                    delay_micros: 1_000,
                },
            },
        ];
        let text = actions_to_json(&actions).dump_pretty();
        let back = actions_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, actions);
    }

    #[test]
    fn actions_json_rejects_garbage() {
        let err = actions_from_json(&Json::parse("[{\"msg_index\": 1}]").unwrap()).unwrap_err();
        assert!(err.contains("entry #0"), "{err}");
        assert!(err.contains("kind"), "{err}");
        let err =
            actions_from_json(&Json::parse("[{\"msg_index\": 1, \"kind\": \"Explode\"}]").unwrap())
                .unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
    }
}
