//! Targeted-delay ("slow primary") attack.
//!
//! The classic performance-degradation attack that motivated *BFT protocols
//! under fire* (the BFTSim paper) and Aardvark: a Byzantine-ish network
//! position delays every message **from** a targeted node — typically the
//! current primary — by just under the amount that would trigger a view
//! change. Consensus stays live, the victim protocol never recovers by
//! replacing its leader, and latency quietly multiplies.
//!
//! Because the simulator's global attacker assigns every message's delay,
//! this attack is a three-line `attack` callback (§III-A5).

use bft_sim_core::adversary::{Adversary, AdversaryApi, Fate};
use bft_sim_core::ids::NodeId;
use bft_sim_core::message::Message;
use bft_sim_core::time::SimDuration;

/// Delays every message sent by `target` by `extra`.
#[derive(Debug, Clone)]
pub struct SlowPrimary {
    target: NodeId,
    extra: SimDuration,
}

impl SlowPrimary {
    /// Creates the attack against `target`, adding `extra` delay to each of
    /// its outgoing messages.
    pub fn new(target: NodeId, extra: SimDuration) -> Self {
        SlowPrimary { target, extra }
    }

    /// The targeted node.
    pub fn target(&self) -> NodeId {
        self.target
    }
}

impl Adversary for SlowPrimary {
    fn attack(
        &mut self,
        msg: &mut Message,
        proposed: SimDuration,
        _api: &mut AdversaryApi<'_>,
    ) -> Fate {
        if msg.src() == self.target {
            Fate::Deliver(proposed + self.extra)
        } else {
            Fate::Deliver(proposed)
        }
    }

    fn name(&self) -> &'static str {
        "slow-primary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::adversary::NullAdversary;
    use bft_sim_core::config::RunConfig;
    use bft_sim_core::engine::SimulationBuilder;
    use bft_sim_core::network::ConstantNetwork;
    use bft_sim_protocols::registry::ProtocolKind;

    fn run_pbft<A: Adversary + 'static>(adv: A) -> bft_sim_core::metrics::RunResult {
        let cfg = ProtocolKind::Pbft.configure(
            RunConfig::new(4)
                .with_seed(2)
                .with_lambda_ms(1000.0)
                .with_time_cap(SimDuration::from_secs(60.0)),
        );
        let factory = ProtocolKind::Pbft.factory(&cfg, 9);
        SimulationBuilder::new(cfg)
            .network(ConstantNetwork::new(SimDuration::from_millis(50.0)))
            .adversary(adv)
            .protocols(factory)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn slowing_the_primary_degrades_latency_without_a_view_change() {
        let baseline = run_pbft(NullAdversary::new());
        // Keep the added delay safely under the 1000 ms timeout so the
        // primary is never suspected.
        let attacked = run_pbft(SlowPrimary::new(
            NodeId::new(0), // view-0 primary
            SimDuration::from_millis(600.0),
        ));
        assert!(baseline.is_clean() && attacked.is_clean());
        assert!(
            attacked.latency().unwrap() > baseline.latency().unwrap(),
            "the attack must cost latency"
        );
        // The protocol never changed views: the slowdown flew under the
        // timeout radar (that is the point of the attack).
        assert!(attacked.trace.custom("view-change").is_empty());
    }

    #[test]
    fn slowing_a_follower_barely_matters() {
        let baseline = run_pbft(NullAdversary::new());
        let attacked = run_pbft(SlowPrimary::new(
            NodeId::new(3), // not the primary
            SimDuration::from_millis(600.0),
        ));
        assert!(attacked.is_clean());
        // Quorums of 2f + 1 = 3 of 4 can exclude one slow follower
        // entirely in the prepare phase; a modest commit-phase delay can
        // remain, but nothing close to the full per-phase delay.
        let slack = attacked.latency().unwrap().as_millis_f64()
            - baseline.latency().unwrap().as_millis_f64();
        assert!(
            slack <= 650.0,
            "follower delay should not stack phases: {slack}"
        );
    }
}
