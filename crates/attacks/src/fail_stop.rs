//! Fail-stop attack: the weakest Byzantine behaviour (§III-C).
//!
//! The paper simulates fail-stop nodes by "starting the system with n − f
//! honest nodes, with the total number set to n". Our global adversary
//! achieves the same effect — and more — by crashing a chosen set of nodes,
//! either before the run starts or at a scheduled time.

use bft_sim_core::adversary::{Adversary, AdversaryApi};
use bft_sim_core::ids::NodeId;
use bft_sim_core::time::SimDuration;

/// Crashes a fixed set of nodes, optionally at a delayed point in time.
///
/// # Examples
///
/// ```
/// use bft_sim_attacks::FailStop;
///
/// // The paper's fail-stop setup: the last 3 of n nodes never participate.
/// let attack = FailStop::last_k(16, 3);
/// assert_eq!(attack.targets().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FailStop {
    targets: Vec<NodeId>,
    at: Option<SimDuration>,
}

impl FailStop {
    /// Crashes exactly `targets` at simulation start.
    pub fn new(targets: Vec<NodeId>) -> Self {
        FailStop { targets, at: None }
    }

    /// Crashes the *last* `k` of `n` nodes at start — leaves the low ids
    /// (which round-robin protocols use as early leaders) alive, so the
    /// measured slowdown isolates the quorum-thinning effect (Fig. 7).
    pub fn last_k(n: usize, k: usize) -> Self {
        let k = k.min(n);
        FailStop::new(((n - k)..n).map(|i| NodeId::new(i as u32)).collect())
    }

    /// Crashes the *first* `k` nodes at start — kills the first `k`
    /// round-robin leaders, the static attack on ADD+ v1 (Fig. 8, left).
    pub fn first_k(k: usize) -> Self {
        FailStop::new((0..k).map(|i| NodeId::new(i as u32)).collect())
    }

    /// Delays the crash until `at` after simulation start.
    pub fn at(mut self, at: SimDuration) -> Self {
        self.at = Some(at);
        self
    }

    /// The nodes this attack crashes.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    fn crash_all(&self, api: &mut AdversaryApi<'_>) {
        for &node in &self.targets {
            // Budget-checked: silently stops crashing if f is exhausted.
            let _ = api.crash(node);
        }
    }
}

impl Adversary for FailStop {
    fn init(&mut self, api: &mut AdversaryApi<'_>) {
        match self.at {
            None => self.crash_all(api),
            Some(at) => api.set_timer(0, at),
        }
    }

    fn on_timer(&mut self, _tag: u64, api: &mut AdversaryApi<'_>) {
        self.crash_all(api);
    }

    fn name(&self) -> &'static str {
        "fail-stop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_the_right_targets() {
        assert_eq!(
            FailStop::first_k(2).targets(),
            &[NodeId::new(0), NodeId::new(1)]
        );
        assert_eq!(
            FailStop::last_k(4, 2).targets(),
            &[NodeId::new(2), NodeId::new(3)]
        );
        assert_eq!(FailStop::last_k(3, 9).targets().len(), 3, "clamped to n");
    }
}
