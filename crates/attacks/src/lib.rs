//! # bft-sim-attacks
//!
//! Attack implementations for the BFT simulator's global-adversary model
//! (the paper's Table II plus fail-stop):
//!
//! | Attack | Capability | Module |
//! |---|---|---|
//! | Fail-stop | crash | [`fail_stop`] |
//! | Network partition | packet filtering | [`partition`] |
//! | ADD+ static attack | static corruption | [`add_attacks`] |
//! | ADD+ adaptive attack | rushing + adaptive corruption | [`add_attacks`] |
//! | Equivocation (extension) | corruption + injection | [`equivocation`] |
//! | Slow primary (extension) | targeted delay | [`slow_primary`] |
//! | Synchrony violation (extension) | corruption + injection + delay | [`sync_violation`] |
//! | Randomized fuzzing (extension) | seeded drop + delay + replay | [`randomized`] |
//!
//! Because every message traverses the attacker module before delivery, all
//! attacks here are rushing-capable by construction; the adaptive attack
//! additionally corrupts nodes mid-run within the fault budget `f`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod add_attacks;
pub mod equivocation;
pub mod fail_stop;
pub mod partition;
pub mod randomized;
pub mod slow_primary;
pub mod sync_violation;

pub use add_attacks::{AddAdaptiveRushingAttack, AddStaticAttack};
pub use equivocation::EquivocationAttack;
pub use fail_stop::FailStop;
pub use partition::PartitionAttack;
pub use randomized::{
    actions_from_json, actions_to_json, FuzzAction, FuzzActionKind, FuzzActionLog, FuzzBudget,
    RandomizedAdversary,
};
pub use slow_primary::SlowPrimary;
pub use sync_violation::SyncViolationAttack;
