//! The two leader-targeting attacks on the ADD+ family (§III-C, Fig. 8).

use bft_sim_core::adversary::{Adversary, AdversaryApi, Fate};
use bft_sim_core::ids::NodeId;
use bft_sim_core::message::Message;
use bft_sim_core::time::SimDuration;
use bft_sim_protocols::add::machine::AddMsg;

/// **Static attack on ADD+ v1** (Fig. 8, left).
///
/// ADD+ v1's leader sequence is deterministic (round-robin), so a *static*
/// attacker — one that must pick its victims before the protocol starts —
/// simply fail-stops the first `f` leaders. Every one of the first `f`
/// iterations then has a crashed leader and is wasted, delaying termination
/// by `f` iterations. Against ADD+ v2 the same attack is useless: the VRF
/// winner is always among the live nodes.
#[derive(Debug, Clone)]
pub struct AddStaticAttack {
    victims: usize,
}

impl AddStaticAttack {
    /// Fail-stops the first `victims` round-robin leaders (≤ f enforced by
    /// the engine's corruption budget).
    pub fn new(victims: usize) -> Self {
        AddStaticAttack { victims }
    }
}

impl Adversary for AddStaticAttack {
    fn init(&mut self, api: &mut AdversaryApi<'_>) {
        for i in 0..self.victims.min(api.n()) {
            if !api.crash(NodeId::new(i as u32)) {
                break; // fault budget exhausted
            }
        }
    }

    fn name(&self) -> &'static str {
        "add-static"
    }
}

/// **Rushing adaptive attack on ADD+ v2/v3** (Fig. 8, right).
///
/// The attacker sits on the wire (every message passes through it before
/// delivery, so it is *rushing* by construction) and corrupts nodes *during*
/// execution (*adaptive*). The strategy: the moment the VRF election winner
/// identifies itself by sending its `Propose`, corrupt it — the engine then
/// silences the node — and drop the proposal in flight so no honest node
/// ever hears it. Each corruption wastes one iteration of ADD+ v2 until the
/// budget `f` is exhausted (so v2 terminates only after ~`f` iterations),
/// whereas ADD+ v3 commits from its prepare certificates and sails through.
#[derive(Debug, Clone, Default)]
pub struct AddAdaptiveRushingAttack {
    corruptions: usize,
}

impl AddAdaptiveRushingAttack {
    /// Creates the attack.
    pub fn new() -> Self {
        AddAdaptiveRushingAttack::default()
    }

    /// How many leaders were corrupted so far.
    pub fn corruptions(&self) -> usize {
        self.corruptions
    }
}

impl Adversary for AddAdaptiveRushingAttack {
    fn attack(
        &mut self,
        msg: &mut Message,
        proposed: SimDuration,
        api: &mut AdversaryApi<'_>,
    ) -> Fate {
        // Silence everything a corrupted node already had in flight.
        if api.is_corrupted(msg.src()) {
            return Fate::Drop;
        }
        if let Some(AddMsg::Propose { .. }) = msg.downcast_ref::<AddMsg>() {
            // The elected leader just revealed itself: corrupt it now (if
            // the budget allows) and suppress the proposal.
            if api.corrupt(msg.src()) {
                self.corruptions += 1;
                return Fate::Drop;
            }
        }
        Fate::Deliver(proposed)
    }

    fn name(&self) -> &'static str {
        "add-adaptive-rushing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::adversary::NullAdversary;
    use bft_sim_core::config::RunConfig;
    use bft_sim_core::engine::SimulationBuilder;
    use bft_sim_core::network::ConstantNetwork;
    use bft_sim_protocols::registry::ProtocolKind;

    fn run_add<A: Adversary + 'static>(
        kind: ProtocolKind,
        n: usize,
        adversary: A,
    ) -> bft_sim_core::metrics::RunResult {
        let cfg = kind.configure(
            RunConfig::new(n)
                .with_seed(4)
                .with_lambda_ms(1000.0)
                .with_time_cap(SimDuration::from_secs(600.0)),
        );
        let factory = kind.factory(&cfg, 31);
        SimulationBuilder::new(cfg)
            .network(ConstantNetwork::new(SimDuration::from_millis(250.0)))
            .adversary(adversary)
            .protocols(factory)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn static_attack_delays_v1_by_f_iterations() {
        let n = 8; // f = 3 for the synchronous family
        let baseline = run_add(ProtocolKind::AddV1, n, NullAdversary::new());
        let attacked = run_add(ProtocolKind::AddV1, n, AddStaticAttack::new(3));
        assert!(baseline.is_clean() && attacked.is_clean());
        // Baseline: iteration 0 succeeds. Attack: iterations 0..3 wasted.
        let base_iters = 1.0;
        let ratio =
            attacked.latency().unwrap().as_secs_f64() / baseline.latency().unwrap().as_secs_f64();
        assert!(
            ratio >= (3.0 + base_iters) / base_iters - 0.01,
            "static attack too weak: ratio {ratio}"
        );
    }

    #[test]
    fn static_attack_is_useless_against_v2() {
        let n = 8;
        let baseline = run_add(ProtocolKind::AddV2, n, NullAdversary::new());
        let attacked = run_add(ProtocolKind::AddV2, n, AddStaticAttack::new(3));
        assert!(baseline.is_clean() && attacked.is_clean());
        assert_eq!(
            baseline.latency().unwrap(),
            attacked.latency().unwrap(),
            "VRF leaders are always live: v2 unaffected by static crashes"
        );
    }

    #[test]
    fn adaptive_attack_stalls_v2_for_f_iterations() {
        let n = 8;
        let baseline = run_add(ProtocolKind::AddV2, n, NullAdversary::new());
        let attacked = run_add(ProtocolKind::AddV2, n, AddAdaptiveRushingAttack::new());
        assert!(
            baseline.is_clean() && attacked.is_clean(),
            "{:?}",
            attacked.safety_violation
        );
        let ratio =
            attacked.latency().unwrap().as_secs_f64() / baseline.latency().unwrap().as_secs_f64();
        assert!(
            ratio >= 3.5,
            "adaptive attack too weak on v2: ratio {ratio}"
        );
    }

    #[test]
    fn adaptive_attack_barely_touches_v3() {
        let n = 8;
        let baseline = run_add(ProtocolKind::AddV3, n, NullAdversary::new());
        let attacked = run_add(ProtocolKind::AddV3, n, AddAdaptiveRushingAttack::new());
        assert!(
            baseline.is_clean() && attacked.is_clean(),
            "{:?}",
            attacked.safety_violation
        );
        assert_eq!(
            baseline.latency().unwrap(),
            attacked.latency().unwrap(),
            "v3 commits from prepare certificates; silencing the leader is moot"
        );
    }
}
