//! Network partition attack (§III-C, after Algorand's attack model).
//!
//! All messages pass through the attacker module, so a partition is a set of
//! between-node packet-filter rules: while the partition is active, the
//! attacker drops (or delays until resolution) every message that crosses a
//! subnet boundary. The plan itself is shared with the network-level variant
//! in `bft_sim_net::partition`.

use bft_sim_core::adversary::{Adversary, AdversaryApi, Fate};
use bft_sim_core::message::Message;
use bft_sim_core::time::SimDuration;
use bft_sim_net::partition::{CrossTraffic, PartitionPlan};

/// Drops or delays cross-subnet traffic during the partition window.
///
/// # Examples
///
/// ```
/// use bft_sim_attacks::PartitionAttack;
/// use bft_sim_net::partition::{CrossTraffic, PartitionPlan};
/// use bft_sim_core::time::SimTime;
///
/// // Split 16 nodes in half from t = 0 to t = 20 s, dropping cross traffic.
/// let plan = PartitionPlan::halves(
///     16,
///     SimTime::ZERO,
///     SimTime::from_millis(20_000),
///     CrossTraffic::Drop,
/// );
/// let attack = PartitionAttack::new(plan);
/// assert!(attack.plan().is_active(SimTime::from_millis(5_000)));
/// ```
#[derive(Debug, Clone)]
pub struct PartitionAttack {
    plan: PartitionPlan,
}

impl PartitionAttack {
    /// Creates the attack from a partition plan.
    pub fn new(plan: PartitionPlan) -> Self {
        PartitionAttack { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &PartitionPlan {
        &self.plan
    }
}

impl Adversary for PartitionAttack {
    fn attack(
        &mut self,
        msg: &mut Message,
        proposed: SimDuration,
        api: &mut AdversaryApi<'_>,
    ) -> Fate {
        if !self.plan.severs(msg.src(), msg.dst(), api.now()) {
            return Fate::Deliver(proposed);
        }
        match self.plan.cross_traffic() {
            CrossTraffic::Drop => Fate::Drop,
            CrossTraffic::HoldUntilResolve => {
                Fate::Deliver((self.plan.end() - api.now()) + proposed)
            }
        }
    }

    fn name(&self) -> &'static str {
        "partition"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::config::RunConfig;
    use bft_sim_core::engine::SimulationBuilder;
    use bft_sim_core::ids::NodeId;
    use bft_sim_core::network::ConstantNetwork;
    use bft_sim_core::time::SimTime;
    use bft_sim_protocols::registry::ProtocolKind;

    fn partition_run(
        kind: ProtocolKind,
        cross: CrossTraffic,
        end_ms: u64,
        cap_s: f64,
    ) -> bft_sim_core::metrics::RunResult {
        let cfg = kind.configure(
            RunConfig::new(8)
                .with_seed(3)
                .with_lambda_ms(1000.0)
                .with_time_cap(SimDuration::from_secs(cap_s)),
        );
        let plan = PartitionPlan::halves(8, SimTime::ZERO, SimTime::from_millis(end_ms), cross);
        let factory = kind.factory(&cfg, 7);
        SimulationBuilder::new(cfg)
            .network(ConstantNetwork::new(SimDuration::from_millis(100.0)))
            .adversary(PartitionAttack::new(plan))
            .protocols(factory)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn pbft_cannot_decide_during_partition_and_recovers_after() {
        let r = partition_run(ProtocolKind::Pbft, CrossTraffic::Drop, 10_000, 300.0);
        assert!(r.is_clean(), "{:?}", r.safety_violation);
        let latency = r.latency().unwrap().as_secs_f64();
        assert!(latency >= 10.0, "decided during the partition: {latency}");
        assert!(latency < 60.0, "recovery too slow: {latency}");
    }

    #[test]
    fn librabft_recovers_within_seconds_of_resolution() {
        let r = partition_run(ProtocolKind::LibraBft, CrossTraffic::Drop, 10_000, 300.0);
        assert!(r.is_clean(), "{:?}", r.safety_violation);
        let latency = r.latency().unwrap().as_secs_f64();
        assert!(latency >= 10.0);
        assert!(latency < 25.0, "LibraBFT must resync fast: {latency}");
    }

    #[test]
    fn algorand_is_partition_resilient() {
        let r = partition_run(ProtocolKind::Algorand, CrossTraffic::Drop, 10_000, 600.0);
        assert!(r.is_clean(), "{:?}", r.safety_violation);
        assert_eq!(r.decisions_completed(), 1);
    }

    #[test]
    fn held_messages_arrive_after_resolution() {
        let r = partition_run(
            ProtocolKind::Pbft,
            CrossTraffic::HoldUntilResolve,
            5_000,
            300.0,
        );
        assert!(r.is_clean());
        assert_eq!(r.dropped_messages, 0, "hold mode never drops");
    }

    #[test]
    fn same_subnet_traffic_is_untouched() {
        let plan = PartitionPlan::halves(
            4,
            SimTime::ZERO,
            SimTime::from_millis(1000),
            CrossTraffic::Drop,
        );
        let attack = PartitionAttack::new(plan);
        // Node 0 and 1 share a subnet: message must pass.
        let msg = Message::new(
            NodeId::new(0),
            NodeId::new(1),
            SimTime::from_millis(500),
            bft_sim_core::payload::boxed(1u8),
        );
        // Build a minimal api through a real simulation is overkill; use the
        // plan directly.
        assert!(!attack.plan().severs(msg.src(), msg.dst(), msg.sent_at()));
        assert!(attack
            .plan()
            .severs(NodeId::new(0), NodeId::new(2), SimTime::from_millis(500)));
    }
}
