//! Equivocation attack (Twins-style, cf. the paper's related work §V).
//!
//! The adversary corrupts the first PBFT leader and *injects* two
//! conflicting pre-prepares for the same `(view, slot)` — one value to the
//! lower half of the nodes, another to the upper half. A correct PBFT
//! must not let both values reach a `2f + 1` prepare quorum, so safety is
//! preserved and liveness recovers through a view change. This exercises
//! the attacker module's message-insertion capability (§III-A5): the
//! corrupted node's behaviour is fully expressed by forging its messages.

use bft_sim_core::adversary::{Adversary, AdversaryApi, Fate};
use bft_sim_core::ids::NodeId;
use bft_sim_core::message::Message;
use bft_sim_core::time::SimDuration;
use bft_sim_crypto::hash::Digest;
use bft_sim_protocols::pbft::PbftMsg;

/// Makes the view-0 PBFT leader equivocate on its first proposal.
#[derive(Debug, Clone, Default)]
pub struct EquivocationAttack {
    fired: bool,
}

impl EquivocationAttack {
    /// Creates the attack.
    pub fn new() -> Self {
        EquivocationAttack::default()
    }
}

impl Adversary for EquivocationAttack {
    fn init(&mut self, api: &mut AdversaryApi<'_>) {
        // Corrupt the first leader before it can act honestly...
        let leader = NodeId::new(0);
        if !api.corrupt(leader) {
            return;
        }
        // ...and speak in its name: conflicting proposals to each half.
        let n = api.n();
        let value_a = Digest::of_bytes(b"equivocation-a");
        let value_b = Digest::of_bytes(b"equivocation-b");
        for i in 1..n as u32 {
            let value = if (i as usize) < n / 2 {
                value_a
            } else {
                value_b
            };
            api.inject(
                leader,
                NodeId::new(i),
                SimDuration::from_millis(100.0),
                PbftMsg::PrePrepare {
                    view: 0,
                    slot: 0,
                    digest: value,
                },
            );
        }
    }

    fn attack(
        &mut self,
        msg: &mut Message,
        proposed: SimDuration,
        api: &mut AdversaryApi<'_>,
    ) -> Fate {
        // Silence everything the corrupted leader actually tries to send.
        if api.is_corrupted(msg.src()) {
            self.fired = true;
            return Fate::Drop;
        }
        Fate::Deliver(proposed)
    }

    fn name(&self) -> &'static str {
        "equivocation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::config::RunConfig;
    use bft_sim_core::engine::SimulationBuilder;
    use bft_sim_core::network::ConstantNetwork;
    use bft_sim_protocols::registry::ProtocolKind;

    #[test]
    fn pbft_survives_an_equivocating_leader() {
        let cfg = ProtocolKind::Pbft.configure(
            RunConfig::new(7)
                .with_seed(3)
                .with_lambda_ms(500.0)
                .with_time_cap(SimDuration::from_secs(120.0)),
        );
        let factory = ProtocolKind::Pbft.factory(&cfg, 9);
        let r = SimulationBuilder::new(cfg)
            .network(ConstantNetwork::new(SimDuration::from_millis(50.0)))
            .adversary(EquivocationAttack::new())
            .protocols(factory)
            .build()
            .unwrap()
            .run();
        // Safety must hold; neither equivocated value may split the nodes.
        assert!(r.safety_violation.is_none(), "{:?}", r.safety_violation);
        // Liveness recovers through the view change.
        assert!(!r.timed_out, "PBFT never recovered from the equivocation");
        assert_eq!(r.decisions_completed(), 1);
        assert!(r.adversary_messages > 0, "injections must be counted");
        // The corrupted node's sequence is empty — it never decides.
        assert!(r.decided[0].is_empty());
    }

    #[test]
    fn split_prepares_cannot_both_reach_quorum() {
        // With n = 4 (f = 1, quorum 3) and a 2/1 split of honest nodes,
        // at most one value can gather a prepare quorum.
        let cfg = ProtocolKind::Pbft.configure(
            RunConfig::new(4)
                .with_seed(5)
                .with_lambda_ms(500.0)
                .with_time_cap(SimDuration::from_secs(60.0)),
        );
        let factory = ProtocolKind::Pbft.factory(&cfg, 9);
        let r = SimulationBuilder::new(cfg)
            .network(ConstantNetwork::new(SimDuration::from_millis(50.0)))
            .adversary(EquivocationAttack::new())
            .protocols(factory)
            .build()
            .unwrap()
            .run();
        assert!(r.safety_violation.is_none(), "{:?}", r.safety_violation);
        // All honest deciders agreed on a single value.
        let decided: std::collections::HashSet<u64> = r
            .decided
            .iter()
            .skip(1) // node 0 is corrupted
            .filter_map(|seq| seq.first().map(|&(_, v)| v.as_u64()))
            .collect();
        assert!(decided.len() <= 1, "conflicting decisions: {decided:?}");
    }
}
