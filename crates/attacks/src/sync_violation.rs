//! Synchrony-violation attack on Sync HotStuff.
//!
//! The paper cites Momose's force-locking attack on Sync HotStuff [27] as
//! the kind of sophisticated attack strategy earlier simulators cannot
//! express. This attack is in the same family: it demonstrates that the
//! protocol's **2Δ commit rule is exactly as strong as the synchrony
//! assumption behind it**.
//!
//! The global attacker corrupts the leader and injects two conflicting
//! proposals, one to each half of the replicas. It then *delays all
//! cross-half traffic beyond the 2Δ commit window* — a synchrony violation,
//! since honest-to-honest messages are supposed to arrive within Δ. Each
//! half consequently sees a perfectly consistent world until its commit
//! timers fire, commits its own value — and the simulator's safety checker
//! reports the conflicting decisions. Run the same attack with the
//! violation disabled and the equivocation evidence arrives in time: no
//! commit happens in the poisoned view and safety holds.

use bft_sim_core::adversary::{Adversary, AdversaryApi, Fate};
use bft_sim_core::ids::NodeId;
use bft_sim_core::message::Message;
use bft_sim_core::time::SimDuration;
use bft_sim_crypto::hash::Digest;
use bft_sim_protocols::sync_hotstuff::ShsMsg;

/// Equivocate through the corrupted leader and (optionally) hold
/// cross-half traffic beyond the 2Δ commit window.
#[derive(Debug, Clone)]
pub struct SyncViolationAttack {
    /// Extra delay added to cross-half messages. Anything larger than the
    /// victims' 2Δ commit window breaks synchrony; `None` mounts only the
    /// equivocation (which the protocol survives).
    pub cross_delay: Option<SimDuration>,
}

impl SyncViolationAttack {
    /// Full attack: equivocate and delay cross-half traffic by `cross_delay`.
    pub fn new(cross_delay: SimDuration) -> Self {
        SyncViolationAttack {
            cross_delay: Some(cross_delay),
        }
    }

    /// Equivocation only, delivery within synchrony: the protocol detects
    /// the conflict before any commit window closes.
    pub fn equivocation_only() -> Self {
        SyncViolationAttack { cross_delay: None }
    }

    fn half_of(node: NodeId, n: usize) -> bool {
        (node.index()) < n / 2
    }
}

impl Adversary for SyncViolationAttack {
    fn init(&mut self, api: &mut AdversaryApi<'_>) {
        // Corrupt the view-1 leader (node 1) and speak in its name.
        let leader = NodeId::new(1);
        if !api.corrupt(leader) {
            return;
        }
        let value_a = Digest::of_bytes(b"sync-violation-a");
        let value_b = Digest::of_bytes(b"sync-violation-b");
        let n = api.n();
        for i in 0..n as u32 {
            let dst = NodeId::new(i);
            if dst == leader {
                continue;
            }
            let digest = if Self::half_of(dst, n) {
                value_a
            } else {
                value_b
            };
            api.inject(
                leader,
                dst,
                SimDuration::from_millis(50.0),
                ShsMsg::Propose {
                    view: 1,
                    height: 1,
                    digest,
                },
            );
        }
    }

    fn attack(
        &mut self,
        msg: &mut Message,
        proposed: SimDuration,
        api: &mut AdversaryApi<'_>,
    ) -> Fate {
        // Silence whatever the corrupted leader tries to send itself.
        if api.is_corrupted(msg.src()) {
            return Fate::Drop;
        }
        // Hold cross-half traffic beyond the commit window (the synchrony
        // violation) so neither half learns of the other's world in time.
        if let Some(extra) = self.cross_delay {
            let n = api.n();
            if Self::half_of(msg.src(), n) != Self::half_of(msg.dst(), n) {
                return Fate::Deliver(proposed + extra);
            }
        }
        Fate::Deliver(proposed)
    }

    fn name(&self) -> &'static str {
        "sync-violation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::config::RunConfig;
    use bft_sim_core::engine::SimulationBuilder;
    use bft_sim_core::network::ConstantNetwork;
    use bft_sim_protocols::registry::ProtocolKind;

    fn run(attack: SyncViolationAttack) -> bft_sim_core::metrics::RunResult {
        let cfg = ProtocolKind::SyncHotStuff.configure(
            RunConfig::new(5)
                .with_seed(2)
                .with_lambda_ms(500.0)
                .with_time_cap(SimDuration::from_secs(60.0)),
        );
        let factory = ProtocolKind::SyncHotStuff.factory(&cfg, 3);
        SimulationBuilder::new(cfg)
            .network(ConstantNetwork::new(SimDuration::from_millis(50.0)))
            .adversary(attack)
            .protocols(factory)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn breaking_synchrony_breaks_the_two_delta_commit_rule() {
        // Cross-half traffic held for 5 s ≫ 2Δ = 1 s: both halves commit
        // their own value and the simulator reports the safety violation.
        let r = run(SyncViolationAttack::new(SimDuration::from_millis(5000.0)));
        assert!(
            r.safety_violation.is_some(),
            "expected conflicting commits once synchrony is violated"
        );
    }

    #[test]
    fn within_synchrony_the_equivocation_is_harmless() {
        // Same equivocation, but every message arrives within Δ: the
        // conflicting evidence reaches both halves inside their 2Δ windows,
        // nobody commits the poisoned view, and the blame quorum replaces
        // the leader.
        let r = run(SyncViolationAttack::equivocation_only());
        assert!(r.safety_violation.is_none(), "{:?}", r.safety_violation);
        assert!(!r.timed_out, "the view change must restore liveness");
        assert_eq!(r.decisions_completed(), 1);
    }
}
