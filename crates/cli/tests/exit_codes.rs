//! End-to-end assertions on the `bft-sim` binary's documented exit-code map
//! (see "Exit codes" in the crate docs of `lib.rs`):
//!
//! - `0` — success,
//! - `2` — usage errors (bad flags, unknown commands, unparseable scenarios),
//! - `3` — fuzz sweeps that found oracle violations or panicked runs
//!   (feature `testbug`, which seeds a violation to find),
//! - `4` — repro-file errors (unreadable, malformed, stale),
//!
//! each distinct from the others and from a Rust panic's `101`, so scripts
//! and CI can branch on *why* a command failed.

use std::process::Output;

fn bft_sim(args: &[&str]) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_bft-sim"))
        .args(args)
        .output()
        .expect("bft-sim binary spawns")
}

fn assert_code(args: &[&str], expected: i32) {
    let out = bft_sim(args);
    assert_eq!(
        out.status.code(),
        Some(expected),
        "bft-sim {args:?}\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A scratch directory unique to this test binary invocation.
fn scratch(label: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bft-sim-exit-codes-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn success_exits_zero() {
    assert_code(&["list"], 0);
    assert_code(&["trace", "pbft", "--json", "--last-k", "8"], 0);
}

#[test]
fn usage_errors_exit_two() {
    let cases: &[&[&str]] = &[
        &["frobnicate"],
        &["trace"],
        &["trace", "raft"],
        &["trace", "pbft", "--last-k", "x"],
        &["fuzz", "--scheduler", "splay"],
        &["fig", "99"],
    ];
    for args in cases {
        assert_code(args, 2);
    }
}

#[test]
fn repro_file_errors_exit_four() {
    assert_code(&["repro", "/definitely/not/a/file.json"], 4);

    let dir = scratch("repro");
    let malformed = dir.join("malformed.json");
    std::fs::write(&malformed, "{ this is not json").expect("write malformed repro");
    assert_code(&["repro", malformed.to_str().unwrap()], 4);

    let wrong_shape = dir.join("wrong-shape.json");
    std::fs::write(&wrong_shape, "{\"format\": \"bogus-v0\"}").expect("write wrong-shape repro");
    assert_code(&["repro", wrong_shape.to_str().unwrap()], 4);

    std::fs::remove_dir_all(&dir).ok();
}

/// A fuzz sweep that finds violations must exit 3 — distinct from both the
/// repro-file class (4) and a panic (101). Needs the seeded bug, so this
/// case only runs under `--features testbug`.
#[cfg(feature = "testbug")]
#[test]
fn oracle_violations_exit_three() {
    let dir = scratch("fuzz");
    let out_dir = dir.join("repros");
    let out = bft_sim(&[
        "fuzz",
        "--seeds",
        "3",
        "--protocols",
        "pbft",
        "--inject-bug",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
