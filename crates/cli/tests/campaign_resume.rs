//! End-to-end determinism contract of `bft-sim campaign`: the final report
//! must be byte-identical whether the campaign runs straight through, is
//! killed and resumed, or is sharded across processes and merged — at any
//! thread count and under either scheduler backend. `--max-units` is the
//! deterministic stand-in for a kill: it stops at a batch boundary exactly
//! like SIGKILL-between-checkpoints does, minus the flakiness.

use bft_sim_cli::{exec_campaign_merge, exec_campaign_run, CampaignMergeSpec, CampaignRunSpec};
use bft_sim_core::json::Json;
use bft_sim_core::scheduler::SchedulerKind;

/// A fresh scratch directory per test so parallel tests never share files.
fn scratch(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bft-sim-campaign-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small grid that still exercises every axis: two protocols, two delay
/// distributions, a churn-afflicted net next to the plain one, benign and
/// adversarial intensities, two seeds — 32 units at checkpoint_every 3, so
/// the last batch is partial and the pause points never align with cells.
fn write_manifest(dir: &std::path::Path) -> String {
    let manifest = r#"{
  "format": "bft-sim-campaign-v1",
  "protocols": ["pbft", "hotstuff-ns"],
  "nodes": [4],
  "delays": ["constant", "uniform"],
  "nets": ["none", "full_mesh:churn=5,2,500,4000"],
  "attacks": [0, 500],
  "seeds": {"lo": 0, "hi": 2},
  "checkpoint_every": 3,
  "max_actions": 24
}"#;
    let path = dir.join("grid.json");
    std::fs::write(&path, manifest).unwrap();
    path.display().to_string()
}

fn run_spec(manifest: &str, dir: &std::path::Path, checkpoint: &str) -> CampaignRunSpec {
    CampaignRunSpec {
        manifest: manifest.to_string(),
        checkpoint: Some(dir.join(checkpoint).display().to_string()),
        out_dir: dir.join("repros").display().to_string(),
        ..CampaignRunSpec::default()
    }
}

#[test]
fn reports_are_byte_identical_across_resume_shard_and_scheduler() {
    let dir = scratch("identity");
    let manifest = write_manifest(&dir);

    // Straight through, two worker threads.
    let straight = exec_campaign_run(&CampaignRunSpec {
        threads: 2,
        ..run_spec(&manifest, &dir, "straight.ck.json")
    })
    .unwrap()
    .expect("an uninterrupted run must produce the report")
    .dump_pretty();

    // The whole grid is expected clean — including the eight churn-cell
    // units, which stall on scheduled downtime and must NOT be reported as
    // termination violations (the churn-aware oracle contract).
    let report = Json::parse(&straight).unwrap();
    assert_eq!(report.get("units").and_then(Json::as_u64), Some(32));
    assert_eq!(report.get("clean").and_then(Json::as_u64), Some(32));
    assert_eq!(report.get("violated").and_then(Json::as_u64), Some(0));
    assert_eq!(report.get("panicked").and_then(Json::as_u64), Some(0));

    // Killed and resumed: two units per invocation, single-threaded. Every
    // invocation but the last pauses at a batch boundary and returns no
    // report; the checkpoint carries all state across the "kills".
    let interrupted = run_spec(&manifest, &dir, "interrupted.ck.json");
    let mut resumed = None;
    for _ in 0..40 {
        let step = exec_campaign_run(&CampaignRunSpec {
            resume: true,
            threads: 1,
            max_units: Some(2),
            ..interrupted.clone()
        })
        .unwrap();
        if let Some(report) = step {
            resumed = Some(report.dump_pretty());
            break;
        }
    }
    assert_eq!(
        resumed.expect("the resumed campaign must finish"),
        straight,
        "kill/resume must not change a byte of the report"
    );

    // Sharded two ways, then merged.
    for shard in 0..2 {
        let done = exec_campaign_run(&CampaignRunSpec {
            shard: (shard, 2),
            ..run_spec(&manifest, &dir, &format!("shard{shard}.ck.json"))
        })
        .unwrap();
        assert!(done.is_none(), "a shard run reports via `campaign merge`");
    }
    let merged = exec_campaign_merge(&CampaignMergeSpec {
        manifest: manifest.clone(),
        checkpoints: (0..2)
            .map(|s| dir.join(format!("shard{s}.ck.json")).display().to_string())
            .collect(),
        json: false,
        report: None,
    })
    .unwrap()
    .dump_pretty();
    assert_eq!(merged, straight, "shard+merge must not change a byte");

    // The wheel scheduler backend.
    let wheel = exec_campaign_run(&CampaignRunSpec {
        scheduler: SchedulerKind::Wheel,
        ..run_spec(&manifest, &dir, "wheel.ck.json")
    })
    .unwrap()
    .expect("an uninterrupted run must produce the report")
    .dump_pretty();
    assert_eq!(wheel, straight, "the scheduler backend must not leak");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_rejects_a_checkpoint_from_an_edited_grid() {
    let dir = scratch("edited");
    let manifest = write_manifest(&dir);
    let spec = CampaignRunSpec {
        resume: true,
        max_units: Some(2),
        ..run_spec(&manifest, &dir, "ck.json")
    };
    assert!(exec_campaign_run(&spec).unwrap().is_none());

    // Widen the grid under the checkpoint's feet: the hash no longer
    // matches, so resuming must be refused as an artifact error (exit 4).
    let text = std::fs::read_to_string(&manifest).unwrap();
    std::fs::write(
        &manifest,
        text.replace("\"max_actions\": 24", "\"max_actions\": 48"),
    )
    .unwrap();
    let err = exec_campaign_run(&spec).unwrap_err();
    assert_eq!(err.code, 4, "hash mismatch is an artifact error: {err}");
    assert!(err.message.contains("hash"), "unexpected message: {err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn run_refuses_to_clobber_a_checkpoint_without_resume() {
    let dir = scratch("clobber");
    let manifest = write_manifest(&dir);
    let spec = CampaignRunSpec {
        max_units: Some(2),
        ..run_spec(&manifest, &dir, "ck.json")
    };
    assert!(exec_campaign_run(&spec).unwrap().is_none());
    let err = exec_campaign_run(&spec).unwrap_err();
    assert_eq!(err.code, 1, "clobber refusal is a runtime error: {err}");
    assert!(
        err.message.contains("--resume"),
        "unexpected message: {err}"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}
