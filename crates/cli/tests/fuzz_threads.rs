//! The headline determinism guarantee of the parallel sweep layer:
//! `bft-sim fuzz --seeds 64 --threads 4` must produce a JSON report
//! byte-identical to `--threads 1`.
//!
//! The test drives the same code path the binary does — `fuzz_many` with the
//! spec's options, then [`bft_sim_cli::fuzz_report_json`] — and compares the
//! serialised bytes directly, so any divergence in run counts, event totals,
//! outcome ordering or repro content fails loudly.

use bft_sim_cli::{fuzz_report_json, FuzzSpec};
use bft_sim_protocols::registry::ProtocolKind;
use bft_sim_simcheck::{fuzz_coverage, fuzz_many, FuzzOptions, FuzzReport};

fn sweep_json(spec: &FuzzSpec, threads: usize) -> String {
    let opts = FuzzOptions {
        protocols: ProtocolKind::extended().to_vec(),
        intensity_permille: spec.intensity_permille,
        max_actions: spec.max_actions,
        inject_bug: false,
        threads,
        scheduler: spec.scheduler,
        observability: spec.observability,
        n_override: spec.n_override,
        net_override: None,
        fault_preset: spec.fault_preset,
        latent_bug: false,
    };
    // Mirror `bft-sim fuzz`'s dispatch: `--coverage` runs the corpus search
    // with `--seeds A..B` meaning master seed A and budget B − A.
    let report: FuzzReport = if spec.coverage {
        fuzz_coverage(
            spec.seeds.0,
            spec.seeds.1.saturating_sub(spec.seeds.0),
            !spec.blind,
            &opts,
        )
        .expect("coverage search builds")
    } else {
        fuzz_many(spec.seeds.0..spec.seeds.1, &opts).expect("sweep builds")
    };
    // Derive the repro paths the CLI would write, purely from the report, so
    // the comparison covers them without touching the filesystem.
    let repro_paths: Vec<String> = report
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "repros/repro-seed{}-{}.json",
                o.scenario_seed, o.repro.oracle
            )
        })
        .collect();
    fuzz_report_json(spec, &report, &repro_paths).dump_pretty()
}

#[test]
fn fuzz_json_is_byte_identical_across_thread_counts() {
    let spec = FuzzSpec {
        seeds: (0, 64),
        ..FuzzSpec::default()
    };
    let serial = sweep_json(&spec, 1);
    let parallel = sweep_json(&spec, 4);
    assert_eq!(
        serial, parallel,
        "--threads 4 must serialise byte-identically to --threads 1"
    );
    // Sanity: the report actually covered the sweep.
    let parsed = bft_sim_core::json::Json::parse(&serial).expect("report is valid JSON");
    assert_eq!(
        parsed.get("runs").and_then(|r| r.as_u64()),
        Some(64),
        "all 64 seeds must have run"
    );
    assert!(parsed.get("events_processed").and_then(|e| e.as_u64()) > Some(0));
    assert!(parsed.get("skipped_cancelled_timers").is_some());
    assert!(parsed.get("skipped_excluded_nodes").is_some());
}

#[test]
fn observed_fuzz_json_is_byte_identical_across_thread_counts() {
    // Aggregation happens in seed order in the collector, so the
    // observability block must not depend on which worker ran which seed.
    let spec = FuzzSpec {
        seeds: (0, 16),
        observability: true,
        ..FuzzSpec::default()
    };
    let serial = sweep_json(&spec, 1);
    let parallel = sweep_json(&spec, 4);
    assert_eq!(
        serial, parallel,
        "--obs --threads 4 must serialise byte-identically to --obs --threads 1"
    );
    let parsed = bft_sim_core::json::Json::parse(&serial).expect("report is valid JSON");
    assert!(
        parsed.get("observability").is_some(),
        "--obs adds an observability block"
    );
}

#[test]
fn chaos_coverage_json_is_byte_identical_across_thread_counts() {
    // The fault catalog and the corpus loop must not reintroduce thread
    // dependence: a chaos-preset coverage search — fault injection in every
    // run, fingerprinting, corpus mutation, adaptive rates — serialises
    // byte-identically at any worker count, coverage block included.
    let spec = FuzzSpec {
        seeds: (7, 7 + 48),
        fault_preset: bft_sim_core::buggify::FaultPreset::Chaos,
        coverage: true,
        ..FuzzSpec::default()
    };
    let serial = sweep_json(&spec, 1);
    let parallel = sweep_json(&spec, 4);
    assert_eq!(
        serial, parallel,
        "--coverage --preset chaos --threads 4 must match --threads 1"
    );
    let parsed = bft_sim_core::json::Json::parse(&serial).expect("report is valid JSON");
    assert_eq!(
        parsed.get("fault_preset").and_then(|p| p.as_str()),
        Some("chaos")
    );
    let coverage = parsed.get("coverage").expect("--coverage adds a block");
    assert_eq!(
        coverage.get("mode").and_then(|m| m.as_str()),
        Some("corpus")
    );
    assert_eq!(coverage.get("runs").and_then(|r| r.as_u64()), Some(48));
    assert!(
        coverage
            .get("distinct_fingerprints")
            .and_then(|d| d.as_u64())
            > Some(1)
    );
}
