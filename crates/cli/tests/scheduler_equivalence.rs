//! The headline determinism guarantee of the pluggable scheduler core:
//! `bft-sim fuzz --scheduler wheel` must produce a JSON report
//! byte-identical to `--scheduler heap` — same seeds, same violations,
//! same shrunk repros, byte for byte.
//!
//! The test drives the same code path the binary does — `fuzz_many` with the
//! spec's options, then [`bft_sim_cli::fuzz_report_json`] — so any place a
//! backend leaks into simulated behaviour (event ordering, timer
//! cancellation, skip accounting) fails loudly. Thread counts are varied on
//! the wheel side too, so both axes of determinism (sharding and backend)
//! are exercised together.

use bft_sim_cli::{fuzz_report_json, FuzzSpec};
use bft_sim_core::scheduler::SchedulerKind;
use bft_sim_protocols::registry::ProtocolKind;
use bft_sim_simcheck::{fuzz_coverage, fuzz_many, FuzzOptions, FuzzReport};

fn sweep_json(spec: &FuzzSpec, scheduler: SchedulerKind, threads: usize) -> String {
    let opts = FuzzOptions {
        protocols: ProtocolKind::extended().to_vec(),
        intensity_permille: spec.intensity_permille,
        max_actions: spec.max_actions,
        inject_bug: false,
        threads,
        scheduler,
        observability: spec.observability,
        n_override: spec.n_override,
        net_override: None,
        fault_preset: spec.fault_preset,
        latent_bug: false,
    };
    // Mirror `bft-sim fuzz`'s dispatch: `--coverage` runs the corpus search
    // with `--seeds A..B` meaning master seed A and budget B − A.
    let report: FuzzReport = if spec.coverage {
        fuzz_coverage(
            spec.seeds.0,
            spec.seeds.1.saturating_sub(spec.seeds.0),
            !spec.blind,
            &opts,
        )
        .expect("coverage search builds")
    } else {
        fuzz_many(spec.seeds.0..spec.seeds.1, &opts).expect("sweep builds")
    };
    // Derive the repro paths the CLI would write, purely from the report, so
    // the comparison covers them without touching the filesystem.
    let repro_paths: Vec<String> = report
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "repros/repro-seed{}-{}.json",
                o.scenario_seed, o.repro.oracle
            )
        })
        .collect();
    fuzz_report_json(spec, &report, &repro_paths).dump_pretty()
}

#[test]
fn fuzz_json_is_byte_identical_across_scheduler_backends() {
    let spec = FuzzSpec {
        seeds: (0, 32),
        ..FuzzSpec::default()
    };
    let heap = sweep_json(&spec, SchedulerKind::Heap, 1);
    let wheel = sweep_json(&spec, SchedulerKind::Wheel, 1);
    assert_eq!(
        heap, wheel,
        "--scheduler wheel must serialise byte-identically to --scheduler heap"
    );
    // The two determinism axes compose: a parallel wheel sweep still matches
    // the serial heap one.
    let wheel_parallel = sweep_json(&spec, SchedulerKind::Wheel, 4);
    assert_eq!(
        heap, wheel_parallel,
        "--scheduler wheel --threads 4 must match --scheduler heap --threads 1"
    );
    // Sanity: the report actually covered the sweep.
    let parsed = bft_sim_core::json::Json::parse(&heap).expect("report is valid JSON");
    assert_eq!(
        parsed.get("runs").and_then(|r| r.as_u64()),
        Some(32),
        "all 32 seeds must have run"
    );
    assert!(parsed.get("events_processed").and_then(|e| e.as_u64()) > Some(0));
}

#[test]
fn observed_fuzz_json_is_byte_identical_across_scheduler_backends() {
    // The observability block is derived purely from simulated quantities, so
    // it must not reintroduce backend dependence into the report.
    let spec = FuzzSpec {
        seeds: (0, 16),
        observability: true,
        ..FuzzSpec::default()
    };
    let heap = sweep_json(&spec, SchedulerKind::Heap, 1);
    let wheel = sweep_json(&spec, SchedulerKind::Wheel, 2);
    assert_eq!(
        heap, wheel,
        "--obs --scheduler wheel must serialise byte-identically to --obs --scheduler heap"
    );
    let parsed = bft_sim_core::json::Json::parse(&heap).expect("report is valid JSON");
    let obs = parsed
        .get("observability")
        .expect("--obs adds an observability block");
    assert!(obs.get("delivery_latency").is_some());
    assert!(obs.get("phase_totals").is_some());
}

#[test]
fn chaos_coverage_json_is_byte_identical_across_scheduler_backends() {
    // The fault injector sits between the scheduler and the protocols
    // (skewed timers, duplicated/reordered deliveries are *scheduled*
    // events), so this is the sharpest place a backend could leak into
    // behavior. A chaos-preset coverage search must serialise
    // byte-identically under heap and wheel — and the parallel-wheel
    // variant closes the loop on both determinism axes at once.
    let spec = FuzzSpec {
        seeds: (7, 7 + 48),
        fault_preset: bft_sim_core::buggify::FaultPreset::Chaos,
        coverage: true,
        ..FuzzSpec::default()
    };
    let heap = sweep_json(&spec, SchedulerKind::Heap, 1);
    let wheel = sweep_json(&spec, SchedulerKind::Wheel, 1);
    assert_eq!(
        heap, wheel,
        "--coverage --preset chaos under wheel must match heap"
    );
    let wheel_parallel = sweep_json(&spec, SchedulerKind::Wheel, 4);
    assert_eq!(
        heap, wheel_parallel,
        "--coverage --preset chaos --scheduler wheel --threads 4 must match serial heap"
    );
    let parsed = bft_sim_core::json::Json::parse(&heap).expect("report is valid JSON");
    let coverage = parsed.get("coverage").expect("--coverage adds a block");
    assert_eq!(
        coverage.get("mode").and_then(|m| m.as_str()),
        Some("corpus")
    );
    assert_eq!(coverage.get("runs").and_then(|r| r.as_u64()), Some(48));
}
