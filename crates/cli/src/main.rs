//! The `bft-sim` binary: thin wrapper over the library in `lib.rs`.

use bft_sim_bench::alloc_counter::CountingAllocator;

// Counting allocator so `bft-sim bench-baseline` can report allocations
// per broadcast; a relaxed atomic increment per allocation otherwise.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match bft_sim_cli::parse_args(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", bft_sim_cli::usage());
            std::process::exit(e.code);
        }
    };
    if let Err(e) = bft_sim_cli::execute(cmd) {
        eprintln!("error: {e}");
        std::process::exit(e.code);
    }
}
