//! # bft-sim-cli
//!
//! Command-line front end for the BFT simulator. The paper's workflow —
//! "write a configuration specifying the network model and parameters, the
//! BFT protocol, and optionally the attack scenario" — maps to flags or a
//! JSON config file:
//!
//! ```text
//! bft-sim run --protocol pbft --nodes 16 --lambda 1000 \
//!             --delay-mu 250 --delay-sigma 50 --reps 100
//! bft-sim run --config experiment.json
//! bft-sim compare --nodes 16 --reps 20
//! bft-sim fig 5
//! bft-sim table 1
//! bft-sim trace pbft --json
//! bft-sim list
//! ```
//!
//! ## Exit codes
//!
//! The binary maps every failure class to a distinct exit code, so scripts
//! and CI can tell a crash from a caught bug:
//!
//! | code | meaning |
//! |-----:|---------|
//! | 0    | success (for `fuzz`: clean sweep; for `repro`: the oracle fired) |
//! | 1    | runtime failure — simulation error, I/O error |
//! | 2    | usage or parse error — bad flags, malformed config file |
//! | 3    | `fuzz` / `campaign` found oracle violations or panicked runs |
//! | 4    | artifact error — an unreadable or malformed repro, manifest, or checkpoint file, or a repro that no longer reproduces |
//! | 101  | the process itself panicked (Rust's default panic exit) |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;

pub use campaign::{
    default_checkpoint_path, emit_report, exec_campaign_merge, exec_campaign_run, load_manifest,
    CampaignMergeSpec, CampaignRunSpec,
};

use bft_sim_core::buggify::FaultPreset;
use bft_sim_core::dist::Dist;
use bft_sim_core::json::Json;
use bft_sim_core::scheduler::SchedulerKind;
use bft_simulator::experiments::{figures, loc, AttackSpec, Scenario};
use bft_simulator::prelude::ProtocolKind;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one scenario (repeatedly) and print its metrics.
    Run(RunSpec),
    /// Run every protocol under one network condition.
    Compare(RunSpec),
    /// Regenerate one of the paper's figures.
    Fig(u8),
    /// Regenerate one of the paper's tables.
    Table(u8),
    /// Run the perf-baseline workloads and write `BENCH_baseline.json`.
    BenchBaseline {
        /// Output path for the baseline document.
        out: String,
        /// Worker threads for the fuzz-throughput and thread-scaling
        /// measurements (0 = available parallelism). The per-case baseline
        /// workloads always run serially so allocation deltas stay
        /// attributable.
        threads: usize,
        /// Scheduler backend to measure; `None` measures every backend
        /// (the default, so the heap-vs-wheel comparison lands in one
        /// document).
        scheduler: Option<SchedulerKind>,
    },
    /// Sweep deterministic fuzz scenarios, oracle-check every run, shrink
    /// violations to repro files.
    Fuzz(FuzzSpec),
    /// Replay a repro file and confirm its oracle still fires.
    Repro {
        /// Path to a `bft-sim-repro-v1` JSON file.
        path: String,
    },
    /// Run one scenario with full observability and print its
    /// instrumentation (histograms, flow matrix, view timings, last events).
    Trace(TraceSpec),
    /// Run (or resume) a manifest-driven campaign sweep.
    CampaignRun(CampaignRunSpec),
    /// Merge shard checkpoints into a campaign's final report.
    CampaignMerge(CampaignMergeSpec),
    /// List available protocols.
    List,
    /// Print usage.
    Help,
}

/// Scenario parameters shared by `run` and `compare` (JSON-compatible, so
/// `--config file.json` loads the same structure).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Protocol short name (ignored by `compare`).
    pub protocol: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Timeout parameter λ in ms.
    pub lambda_ms: f64,
    /// Mean network delay (ms).
    pub delay_mu: f64,
    /// Network delay standard deviation (ms).
    pub delay_sigma: f64,
    /// Repetitions.
    pub reps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Attack: `none`, `failstop:K`, `partition:START_MS:END_MS`,
    /// `add-static:K`, `add-adaptive`.
    pub attack: String,
    /// Emit JSON instead of a table.
    pub json: bool,
    /// Computation-cost model for throughput estimation:
    /// `none`, `ed25519`, `rsa2048` or `mac`.
    pub cost: String,
}

impl RunSpec {
    /// Parses a spec from a JSON config object; absent fields keep their
    /// defaults, unknown fields are rejected (mirroring strict derive-style
    /// deserialisation so typos in config files surface as errors).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown field.
    pub fn from_json(json: &Json) -> Result<RunSpec, String> {
        let Json::Obj(pairs) = json else {
            return Err("config: expected a JSON object".into());
        };
        let mut spec = RunSpec::default();
        for (key, value) in pairs {
            let bad = || format!("config: bad value for \"{key}\"");
            match key.as_str() {
                "protocol" => spec.protocol = value.as_str().ok_or_else(bad)?.to_string(),
                "nodes" => spec.nodes = value.as_u64().ok_or_else(bad)? as usize,
                "lambda_ms" => spec.lambda_ms = value.as_f64().ok_or_else(bad)?,
                "delay_mu" => spec.delay_mu = value.as_f64().ok_or_else(bad)?,
                "delay_sigma" => spec.delay_sigma = value.as_f64().ok_or_else(bad)?,
                "reps" => spec.reps = value.as_u64().ok_or_else(bad)? as usize,
                "seed" => spec.seed = value.as_u64().ok_or_else(bad)?,
                "attack" => spec.attack = value.as_str().ok_or_else(bad)?.to_string(),
                "json" => spec.json = value.as_bool().ok_or_else(bad)?,
                "cost" => spec.cost = value.as_str().ok_or_else(bad)?.to_string(),
                other => return Err(format!("config: unknown field \"{other}\"")),
            }
        }
        Ok(spec)
    }

    /// Serialises the spec as a JSON config object (the format
    /// [`RunSpec::from_json`] reads back).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.as_str())),
            ("nodes", Json::from(self.nodes)),
            ("lambda_ms", Json::from(self.lambda_ms)),
            ("delay_mu", Json::from(self.delay_mu)),
            ("delay_sigma", Json::from(self.delay_sigma)),
            ("reps", Json::from(self.reps)),
            ("seed", Json::from(self.seed)),
            ("attack", Json::from(self.attack.as_str())),
            ("json", Json::from(self.json)),
            ("cost", Json::from(self.cost.as_str())),
        ])
    }
}

/// Parameters of a `bft-sim fuzz` sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzSpec {
    /// Scenario seed range, half-open.
    pub seeds: (u64, u64),
    /// `all` or a comma-separated list of protocol short names.
    pub protocols: String,
    /// Adversary intensity in permille.
    pub intensity_permille: u64,
    /// Per-run cap on adversary actions.
    pub max_actions: u64,
    /// Arm the feature-gated seeded safety bug (needs `--features testbug`).
    pub inject_bug: bool,
    /// Directory repro files are written to.
    pub out_dir: String,
    /// Emit a JSON report instead of text.
    pub json: bool,
    /// Worker threads for the sweep (0 = available parallelism). The report
    /// is byte-identical at any thread count.
    pub threads: usize,
    /// Event-scheduler backend for every run (`heap` or `wheel`). The
    /// report is byte-identical under either — the scheduler determinism
    /// contract — so the flag only changes sweep throughput.
    pub scheduler: SchedulerKind,
    /// Instrument every run (`--obs`): the report gains an `observability`
    /// block, repros and failures carry their last trace events. Everything
    /// else in the report is byte-identical with it on or off.
    pub observability: bool,
    /// `--n N`: force every generated scenario to `N` nodes instead of the
    /// generator's small-biased scales. The large-n smoke knob.
    pub n_override: Option<usize>,
    /// `--preset calm|moderate|chaos`: fault-catalog preset armed in every
    /// generated scenario (calm = no injection, the default).
    pub fault_preset: FaultPreset,
    /// `--coverage`: run the coverage-guided corpus search instead of the
    /// per-seed sweep. `--seeds A..B` then means master seed `A` with a
    /// budget of `B − A` runs, and the report gains a `coverage` block.
    pub coverage: bool,
    /// `--blind` (with `--coverage`): same budget and coverage accounting,
    /// but the corpus loop stays off — the comparison baseline.
    pub blind: bool,
    /// `--corpus-dir DIR` (with `--coverage`): persist the search corpus in
    /// `DIR/corpus.json` — loaded before the search starts (a cold directory
    /// starts empty) and written back after it, so successive invocations
    /// (e.g. cached CI jobs) resume from the previous frontier.
    pub corpus_dir: Option<String>,
    /// `--net-preset SPEC`: pin every scenario's link-level network block
    /// (topology, bandwidth cap, churn) to one shape — see the usage string
    /// for the spec grammar.
    pub net_preset: Option<String>,
}

impl Default for FuzzSpec {
    fn default() -> Self {
        FuzzSpec {
            seeds: (0, 32),
            protocols: "all".into(),
            intensity_permille: 500,
            max_actions: 48,
            inject_bug: false,
            out_dir: ".".into(),
            json: false,
            threads: 0,
            scheduler: SchedulerKind::default(),
            observability: false,
            n_override: None,
            fault_preset: FaultPreset::Calm,
            coverage: false,
            blind: false,
            corpus_dir: None,
            net_preset: None,
        }
    }
}

/// Parameters of a `bft-sim trace` run: one scenario executed with full
/// observability, its instrumentation printed as tables or JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// A protocol short name (baseline scenario) or a path to a
    /// `ScenarioSpec` JSON file (as embedded in repro files).
    pub scenario: String,
    /// Overrides the scenario's run seed.
    pub seed: Option<u64>,
    /// Ring capacity for the recent-event dump.
    pub last_k: usize,
    /// Emit JSON instead of tables.
    pub json: bool,
    /// Event-scheduler backend. The observability block is byte-identical
    /// under either backend.
    pub scheduler: SchedulerKind,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            scenario: String::new(),
            seed: None,
            last_k: bft_sim_core::obs::DEFAULT_LAST_K,
            json: false,
            scheduler: SchedulerKind::default(),
        }
    }
}

fn default_protocol() -> String {
    "pbft".into()
}
fn default_nodes() -> usize {
    16
}
fn default_lambda() -> f64 {
    1000.0
}
fn default_mu() -> f64 {
    250.0
}
fn default_sigma() -> f64 {
    50.0
}
fn default_reps() -> usize {
    10
}
fn default_attack() -> String {
    "none".into()
}
fn default_cost() -> String {
    "none".into()
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            protocol: default_protocol(),
            nodes: default_nodes(),
            lambda_ms: default_lambda(),
            delay_mu: default_mu(),
            delay_sigma: default_sigma(),
            reps: default_reps(),
            seed: 0,
            attack: default_attack(),
            json: false,
            cost: default_cost(),
        }
    }
}

/// Errors surfaced to the CLI user, carrying the process exit code the
/// binary exits with. See [the exit-code map](crate#exit-codes).
#[derive(Debug, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description, printed to stderr.
    pub message: String,
    /// The process exit code for this class of error.
    pub code: i32,
}

impl CliError {
    /// A usage or parse error — bad flags, malformed config file. Exit 2.
    pub fn usage(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    /// A runtime failure — simulation error, I/O error. Exit 1.
    pub fn runtime(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 1,
        }
    }

    /// A fuzz sweep that found oracle violations or panicked runs. Exit 3.
    pub fn violation(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 3,
        }
    }

    /// An artifact error — an unreadable or malformed repro, manifest, or
    /// checkpoint file, or a repro that no longer reproduces. Exit 4.
    pub fn repro(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
            code: 4,
        }
    }
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parses the attack flag syntax.
pub fn parse_attack(s: &str) -> Result<AttackSpec, CliError> {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["none"] => Ok(AttackSpec::None),
        ["failstop", k] => k
            .parse()
            .map(AttackSpec::FailStopLast)
            .map_err(|_| CliError::usage(format!("bad failstop count: {k}"))),
        ["partition", start, end] => {
            let start_ms = start
                .parse()
                .map_err(|_| CliError::usage(format!("bad partition start: {start}")))?;
            let end_ms = end
                .parse()
                .map_err(|_| CliError::usage(format!("bad partition end: {end}")))?;
            Ok(AttackSpec::Partition {
                start_ms,
                end_ms,
                drop: false,
            })
        }
        ["add-static", k] => k
            .parse()
            .map(AttackSpec::AddStatic)
            .map_err(|_| CliError::usage(format!("bad add-static count: {k}"))),
        ["add-adaptive"] => Ok(AttackSpec::AddAdaptive),
        _ => Err(CliError::usage(format!(
            "unknown attack '{s}' (try none, failstop:K, partition:S:E, add-static:K, add-adaptive)"
        ))),
    }
}

/// Parses argv (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "fig" => {
            let n = it
                .next()
                .ok_or_else(|| CliError::usage("fig needs a number 2..=9"))?;
            let n: u8 = n
                .parse()
                .map_err(|_| CliError::usage(format!("bad figure: {n}")))?;
            if !(2..=9).contains(&n) {
                return Err(CliError::usage(format!("no figure {n} (valid: 2..=9)")));
            }
            Ok(Command::Fig(n))
        }
        "table" => {
            let n = it
                .next()
                .ok_or_else(|| CliError::usage("table needs 1 or 2"))?;
            let n: u8 = n
                .parse()
                .map_err(|_| CliError::usage(format!("bad table: {n}")))?;
            if !(1..=2).contains(&n) {
                return Err(CliError::usage(format!("no table {n} (valid: 1, 2)")));
            }
            Ok(Command::Table(n))
        }
        "bench-baseline" => {
            let mut out = "BENCH_baseline.json".to_string();
            let mut threads = 0usize;
            let mut scheduler = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--out" => {
                        out = it
                            .next()
                            .cloned()
                            .ok_or_else(|| CliError::usage("--out needs a value"))?;
                    }
                    "--threads" => {
                        threads = it
                            .next()
                            .ok_or_else(|| CliError::usage("--threads needs a value"))?
                            .parse()
                            .map_err(|_| CliError::usage("bad --threads"))?;
                    }
                    "--scheduler" => {
                        let s = it
                            .next()
                            .ok_or_else(|| CliError::usage("--scheduler needs a value"))?;
                        scheduler = match s.as_str() {
                            "both" => None,
                            other => Some(SchedulerKind::parse(other).ok_or_else(|| {
                                CliError::usage(format!(
                                    "bad --scheduler '{other}' (use heap, wheel or both)"
                                ))
                            })?),
                        };
                    }
                    other => return Err(CliError::usage(format!("unknown flag '{other}'"))),
                }
            }
            Ok(Command::BenchBaseline {
                out,
                threads,
                scheduler,
            })
        }
        "run" | "compare" => {
            let spec = parse_run_spec(&args[1..])?;
            if cmd == "run" {
                Ok(Command::Run(spec))
            } else {
                Ok(Command::Compare(spec))
            }
        }
        "fuzz" => Ok(Command::Fuzz(parse_fuzz_spec(&args[1..])?)),
        "trace" => Ok(Command::Trace(parse_trace_spec(&args[1..])?)),
        "repro" => {
            let path = it
                .next()
                .cloned()
                .ok_or_else(|| CliError::usage("repro needs a file path"))?;
            if let Some(extra) = it.next() {
                return Err(CliError::usage(format!("unexpected argument '{extra}'")));
            }
            Ok(Command::Repro { path })
        }
        "campaign" => parse_campaign(&args[1..]),
        other => Err(CliError::usage(format!("unknown command '{other}'"))),
    }
}

/// Parses `--shard` syntax: `I/M` with `I < M`.
fn parse_shard(s: &str) -> Result<(u32, u32), CliError> {
    let bad = || CliError::usage(format!("bad --shard '{s}' (use I/M, e.g. 0/4)"));
    let (i, m) = s.split_once('/').ok_or_else(bad)?;
    let shard = (i.parse().map_err(|_| bad())?, m.parse().map_err(|_| bad())?);
    if shard.1 == 0 || shard.0 >= shard.1 {
        return Err(CliError::usage(format!(
            "bad --shard '{s}' (shard index must be below the shard count)"
        )));
    }
    Ok(shard)
}

fn parse_campaign(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it
        .next()
        .ok_or_else(|| CliError::usage("campaign needs a subcommand: run or merge"))?;
    match sub.as_str() {
        "run" => {
            let mut spec = CampaignRunSpec::default();
            while let Some(arg) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError::usage(format!("{name} needs a value")))
                };
                match arg.as_str() {
                    "--checkpoint" => spec.checkpoint = Some(value("--checkpoint")?),
                    "--resume" => spec.resume = true,
                    "--shard" => spec.shard = parse_shard(&value("--shard")?)?,
                    "--threads" => {
                        spec.threads = value("--threads")?
                            .parse()
                            .map_err(|_| CliError::usage("bad --threads"))?
                    }
                    "--scheduler" => {
                        let s = value("--scheduler")?;
                        spec.scheduler = SchedulerKind::parse(&s).ok_or_else(|| {
                            CliError::usage(format!("bad --scheduler '{s}' (use heap or wheel)"))
                        })?
                    }
                    "--out" => spec.out_dir = value("--out")?,
                    "--json" => spec.json = true,
                    "--report" => spec.report = Some(value("--report")?),
                    "--max-units" => {
                        spec.max_units = Some(
                            value("--max-units")?
                                .parse()
                                .map_err(|_| CliError::usage("bad --max-units"))?,
                        )
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError::usage(format!("unknown flag '{flag}'")))
                    }
                    manifest if spec.manifest.is_empty() => spec.manifest = manifest.to_string(),
                    extra => return Err(CliError::usage(format!("unexpected argument '{extra}'"))),
                }
            }
            if spec.manifest.is_empty() {
                return Err(CliError::usage("campaign run needs a manifest file"));
            }
            Ok(Command::CampaignRun(spec))
        }
        "merge" => {
            let mut spec = CampaignMergeSpec {
                manifest: String::new(),
                checkpoints: Vec::new(),
                json: false,
                report: None,
            };
            while let Some(arg) = it.next() {
                let mut value = |name: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError::usage(format!("{name} needs a value")))
                };
                match arg.as_str() {
                    "--json" => spec.json = true,
                    "--report" => spec.report = Some(value("--report")?),
                    flag if flag.starts_with("--") => {
                        return Err(CliError::usage(format!("unknown flag '{flag}'")))
                    }
                    manifest if spec.manifest.is_empty() => spec.manifest = manifest.to_string(),
                    checkpoint => spec.checkpoints.push(checkpoint.to_string()),
                }
            }
            if spec.manifest.is_empty() || spec.checkpoints.is_empty() {
                return Err(CliError::usage(
                    "campaign merge needs a manifest and at least one checkpoint file",
                ));
            }
            Ok(Command::CampaignMerge(spec))
        }
        other => Err(CliError::usage(format!(
            "unknown campaign subcommand '{other}' (use run or merge)"
        ))),
    }
}

/// Parses `--seeds` syntax: `A..B` (half-open) or a bare count `N` (= `0..N`).
fn parse_seed_range(s: &str) -> Result<(u64, u64), CliError> {
    let bad = || CliError::usage(format!("bad --seeds '{s}' (use A..B or a count N)"));
    let (lo, hi) = match s.split_once("..") {
        Some((lo, hi)) => (
            lo.parse().map_err(|_| bad())?,
            hi.parse().map_err(|_| bad())?,
        ),
        None => (0, s.parse().map_err(|_| bad())?),
    };
    if hi <= lo {
        return Err(CliError::usage(format!("empty seed range '{s}'")));
    }
    Ok((lo, hi))
}

fn parse_fuzz_spec(args: &[String]) -> Result<FuzzSpec, CliError> {
    let mut spec = FuzzSpec::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--seeds" => spec.seeds = parse_seed_range(&value("--seeds")?)?,
            "--protocols" => spec.protocols = value("--protocols")?,
            "--intensity" => {
                spec.intensity_permille = value("--intensity")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --intensity (permille, 0..=1000)"))?
            }
            "--max-actions" => {
                spec.max_actions = value("--max-actions")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --max-actions"))?
            }
            "--inject-bug" => spec.inject_bug = true,
            "--out" => spec.out_dir = value("--out")?,
            "--json" => spec.json = true,
            "--obs" => spec.observability = true,
            "--n" => {
                let n: usize = value("--n")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --n (node count)"))?;
                if n < 4 {
                    return Err(CliError::usage("--n must be at least 4 (n = 3f + 1)"));
                }
                spec.n_override = Some(n);
            }
            "--threads" => {
                spec.threads = value("--threads")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --threads".to_string()))?
            }
            "--scheduler" => {
                let s = value("--scheduler")?;
                spec.scheduler = SchedulerKind::parse(&s).ok_or_else(|| {
                    CliError::usage(format!("bad --scheduler '{s}' (use heap or wheel)"))
                })?
            }
            "--preset" => {
                let s = value("--preset")?;
                spec.fault_preset = FaultPreset::parse(&s).map_err(|_| {
                    CliError::usage(format!("bad --preset '{s}' (use calm, moderate, or chaos)"))
                })?
            }
            "--coverage" => spec.coverage = true,
            "--blind" => spec.blind = true,
            "--corpus-dir" => spec.corpus_dir = Some(value("--corpus-dir")?),
            "--net-preset" => {
                let s = value("--net-preset")?;
                parse_net_preset(&s)?; // reject malformed specs at parse time
                spec.net_preset = Some(s);
            }
            other => return Err(CliError::usage(format!("unknown flag '{other}'"))),
        }
    }
    if spec.blind && !spec.coverage {
        return Err(CliError::usage("--blind only applies to --coverage runs"));
    }
    if spec.corpus_dir.is_some() && !spec.coverage {
        return Err(CliError::usage(
            "--corpus-dir only applies to --coverage runs",
        ));
    }
    Ok(spec)
}

/// Parses a `--net-preset` spec:
/// `TOPOLOGY[:bw=BYTES_PER_SEC][:seed=S][:churn=SEED,CRASHES,MIN_MS,MAX_MS]`
/// — e.g. `ring_gradient:bw=200000:seed=7:churn=5,2,500,4000`.
pub(crate) fn parse_net_preset(s: &str) -> Result<bft_sim_simcheck::NetSpec, CliError> {
    use bft_sim_simcheck::{ChurnSpec, NetSpec, TopologyKind};

    let mut parts = s.split(':');
    let topo = parts.next().unwrap_or("");
    let topology = TopologyKind::parse(topo).ok_or_else(|| {
        CliError::usage(format!(
            "bad --net-preset topology '{topo}' \
             (use full_mesh, ring, ring_gradient, or clustered)"
        ))
    })?;
    let mut net = NetSpec {
        topology,
        bandwidth: None,
        topology_seed: 0,
        churn: None,
    };
    for part in parts {
        let (key, val) = part.split_once('=').ok_or_else(|| {
            CliError::usage(format!(
                "bad --net-preset part '{part}' (expected key=value)"
            ))
        })?;
        match key {
            "bw" => {
                net.bandwidth = Some(val.parse().map_err(|_| {
                    CliError::usage("bad --net-preset bw (bytes per second)".to_string())
                })?)
            }
            "seed" => {
                net.topology_seed = val
                    .parse()
                    .map_err(|_| CliError::usage("bad --net-preset seed".to_string()))?
            }
            "churn" => {
                let nums: Vec<u64> = val
                    .split(',')
                    .map(|v| v.parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| {
                        CliError::usage(
                            "bad --net-preset churn (SEED,CRASHES,MIN_MS,MAX_MS)".to_string(),
                        )
                    })?;
                let [seed, crashes, min_down_ms, max_down_ms] = nums[..] else {
                    return Err(CliError::usage(
                        "bad --net-preset churn (SEED,CRASHES,MIN_MS,MAX_MS)".to_string(),
                    ));
                };
                net.churn = Some(ChurnSpec {
                    seed,
                    crashes,
                    min_down_ms,
                    max_down_ms,
                });
            }
            other => {
                return Err(CliError::usage(format!(
                    "unknown --net-preset key '{other}' (use bw, seed, or churn)"
                )))
            }
        }
    }
    Ok(net)
}

fn parse_trace_spec(args: &[String]) -> Result<TraceSpec, CliError> {
    let mut spec = TraceSpec::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--seed" => {
                spec.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|_| CliError::usage("bad --seed".to_string()))?,
                )
            }
            "--last-k" => {
                spec.last_k = value("--last-k")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --last-k".to_string()))?
            }
            "--json" => spec.json = true,
            "--scheduler" => {
                let s = value("--scheduler")?;
                spec.scheduler = SchedulerKind::parse(&s).ok_or_else(|| {
                    CliError::usage(format!("bad --scheduler '{s}' (use heap or wheel)"))
                })?
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::usage(format!("unknown flag '{flag}'")))
            }
            scenario if spec.scenario.is_empty() => spec.scenario = scenario.to_string(),
            extra => return Err(CliError::usage(format!("unexpected argument '{extra}'"))),
        }
    }
    if spec.scenario.is_empty() {
        return Err(CliError::usage(
            "trace needs a scenario: a protocol name or a scenario JSON file".to_string(),
        ));
    }
    Ok(spec)
}

/// Resolves `all` or a comma-separated protocol list.
fn parse_protocol_list(s: &str) -> Result<Vec<ProtocolKind>, CliError> {
    if s == "all" {
        return Ok(ProtocolKind::extended().to_vec());
    }
    s.split(',')
        .map(|name| {
            let name = name.trim();
            ProtocolKind::parse(name)
                .ok_or_else(|| CliError::usage(format!("unknown protocol '{name}'")))
        })
        .collect()
}

fn parse_run_spec(args: &[String]) -> Result<RunSpec, CliError> {
    let mut spec = RunSpec::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--config" => {
                let path = value("--config")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| CliError::usage(format!("cannot read {path}: {e}")))?;
                let parsed = Json::parse(&text)
                    .map_err(|e| CliError::usage(format!("bad config {path}: {e}")))?;
                spec = RunSpec::from_json(&parsed)
                    .map_err(|e| CliError::usage(format!("bad config {path}: {e}")))?;
            }
            "--protocol" => spec.protocol = value("--protocol")?,
            "--nodes" => {
                spec.nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --nodes"))?
            }
            "--lambda" => {
                spec.lambda_ms = value("--lambda")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --lambda"))?
            }
            "--delay-mu" => {
                spec.delay_mu = value("--delay-mu")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --delay-mu"))?
            }
            "--delay-sigma" => {
                spec.delay_sigma = value("--delay-sigma")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --delay-sigma"))?
            }
            "--reps" => {
                spec.reps = value("--reps")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --reps"))?
            }
            "--seed" => {
                spec.seed = value("--seed")?
                    .parse()
                    .map_err(|_| CliError::usage("bad --seed"))?
            }
            "--attack" => spec.attack = value("--attack")?,
            "--cost" => spec.cost = value("--cost")?,
            "--json" => spec.json = true,
            other => return Err(CliError::usage(format!("unknown flag '{other}'"))),
        }
    }
    Ok(spec)
}

/// One protocol's aggregated results, as printed / serialised by `run` and
/// `compare`.
#[derive(Debug)]
pub struct Report {
    /// Protocol short name.
    pub protocol: String,
    /// Mean latency (s).
    pub latency_mean_s: f64,
    /// Latency standard deviation (s).
    pub latency_sd_s: f64,
    /// Mean messages per decision.
    pub messages_mean: f64,
    /// Message standard deviation.
    pub messages_sd: f64,
    /// Fraction of repetitions that timed out.
    pub timeout_rate: f64,
    /// Repetitions run.
    pub reps: usize,
    /// Estimated sustainable decisions/second under the chosen cost model
    /// (`None` when `--cost none`; omitted from JSON output in that case).
    pub est_max_decisions_per_sec: Option<f64>,
}

impl Report {
    /// Serialises the report as a JSON object. `est_max_decisions_per_sec`
    /// is omitted when absent.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("protocol".to_string(), Json::from(self.protocol.as_str())),
            (
                "latency_mean_s".to_string(),
                Json::from(self.latency_mean_s),
            ),
            ("latency_sd_s".to_string(), Json::from(self.latency_sd_s)),
            ("messages_mean".to_string(), Json::from(self.messages_mean)),
            ("messages_sd".to_string(), Json::from(self.messages_sd)),
            ("timeout_rate".to_string(), Json::from(self.timeout_rate)),
            ("reps".to_string(), Json::from(self.reps)),
        ];
        if let Some(t) = self.est_max_decisions_per_sec {
            pairs.push(("est_max_decisions_per_sec".to_string(), Json::from(t)));
        }
        Json::Obj(pairs)
    }
}

/// Runs one protocol per the spec and returns its report.
///
/// # Errors
///
/// Returns [`CliError`] for unknown attacks or if any repetition reports a
/// safety violation.
pub fn run_one(kind: ProtocolKind, spec: &RunSpec) -> Result<Report, CliError> {
    use bft_simulator::experiments::cost::CostModel;
    let cost_model = match spec.cost.as_str() {
        "none" => None,
        "ed25519" => Some(CostModel::ed25519()),
        "rsa2048" => Some(CostModel::rsa2048()),
        "mac" => Some(CostModel::mac()),
        other => return Err(CliError::usage(format!("unknown cost model '{other}'"))),
    };
    let attack = parse_attack(&spec.attack)?;
    let scenario = Scenario::new(kind, spec.nodes)
        .with_lambda(spec.lambda_ms)
        .with_delay(Dist::normal(spec.delay_mu, spec.delay_sigma))
        .with_attack(attack);
    let results = scenario.run_many(spec.reps, spec.seed);
    for r in &results {
        if let Some(v) = &r.safety_violation {
            return Err(CliError::runtime(format!("safety violation: {v}")));
        }
    }
    let lat = scenario.latency_summary(&results);
    let msg = scenario.message_summary(&results);
    let timeouts = results.iter().filter(|r| r.timed_out).count();
    let est_max_decisions_per_sec = cost_model.and_then(|model| {
        results
            .first()
            .map(|r| model.estimate(r).max_decisions_per_sec)
    });
    Ok(Report {
        protocol: kind.name().to_string(),
        latency_mean_s: lat.mean,
        latency_sd_s: lat.std_dev,
        messages_mean: msg.mean,
        messages_sd: msg.std_dev,
        timeout_rate: timeouts as f64 / spec.reps.max(1) as f64,
        reps: spec.reps,
        est_max_decisions_per_sec,
    })
}

/// Executes a parsed command, writing human or JSON output to stdout.
///
/// # Errors
///
/// Returns [`CliError`] for unknown protocols/attacks and simulation-level
/// failures; parse errors are reported by [`parse_args`].
pub fn execute(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Help => {
            println!("{}", usage());
        }
        Command::List => {
            println!(
                "{:<14} {:<24} {:<10} responsive",
                "protocol", "network model", "measured"
            );
            for kind in ProtocolKind::extended() {
                println!(
                    "{:<14} {:<24} {:<10} {}",
                    kind.name(),
                    kind.network_assumption().to_string(),
                    format!("{} dec.", kind.measured_decisions()),
                    kind.responsive()
                );
            }
        }
        Command::Run(spec) => {
            let kind = ProtocolKind::parse(&spec.protocol)
                .ok_or_else(|| CliError::usage(format!("unknown protocol '{}'", spec.protocol)))?;
            let report = run_one(kind, &spec)?;
            emit(&[report], spec.json);
        }
        Command::Compare(spec) => {
            let mut reports = Vec::new();
            for kind in ProtocolKind::all() {
                reports.push(run_one(kind, &spec)?);
            }
            emit(&reports, spec.json);
        }
        Command::BenchBaseline {
            out,
            threads,
            scheduler,
        } => {
            let backends: Vec<SchedulerKind> = match scheduler {
                Some(kind) => vec![kind],
                None => SchedulerKind::ALL.to_vec(),
            };
            let results = bft_sim_bench::baseline::run_all(1, 10, &backends);
            let fuzz: Vec<_> = backends
                .iter()
                .map(|&kind| bft_sim_bench::baseline::run_fuzz_stat(32, threads, kind))
                .collect();
            let scaling =
                bft_sim_bench::baseline::measure_thread_scaling(256, threads, backends[0]);
            let obs = bft_sim_bench::baseline::run_obs_overhead(
                bft_sim_protocols::registry::ProtocolKind::Pbft,
                16,
                1,
                50,
                5,
            );
            let bandwidth = bft_sim_bench::baseline::run_bandwidth_contention(
                bft_sim_protocols::registry::ProtocolKind::Pbft,
                16,
                1,
                10,
                2_000,
            );
            let json = bft_sim_bench::baseline::to_json(
                &results,
                &fuzz,
                Some(&scaling),
                Some(&obs),
                Some(&bandwidth),
            )
            .dump_pretty();
            std::fs::write(&out, &json)
                .map_err(|e| CliError::runtime(format!("cannot write {out}: {e}")))?;
            println!(
                "{:<14} {:>4} {:>6} {:>10} {:>12} {:>12} {:>12} {:>18}",
                "protocol",
                "n",
                "sched",
                "wall (ms)",
                "events",
                "events/s",
                "peak queue",
                "allocs/broadcast"
            );
            for r in &results {
                println!(
                    "{:<14} {:>4} {:>6} {:>10.1} {:>12} {:>12.0} {:>12} {:>18}",
                    r.protocol,
                    r.n,
                    r.scheduler,
                    r.wall_ms,
                    r.events_processed,
                    r.events_per_sec,
                    r.peak_queue_depth,
                    r.allocs_per_broadcast
                        .map(|a| format!("{a:.3}"))
                        .unwrap_or_else(|| "- (no counter)".into()),
                );
            }
            println!();
            for f in &fuzz {
                println!(
                    "fuzz [{}]: {} scenarios, {} events, {:.1} ms \
                     ({:.0} events/s, {} threads)",
                    f.scheduler, f.runs, f.events_processed, f.wall_ms, f.events_per_sec, f.threads
                );
            }
            println!(
                "scaling [{}]: {:.0} scenarios/s at 1 thread vs {:.0} at {} threads \
                 ({:.2}x, host has {})",
                scaling.serial.scheduler,
                scaling.serial.scenarios_per_sec,
                scaling.parallel.scenarios_per_sec,
                scaling.parallel.threads,
                scaling.speedup,
                scaling.host_threads
            );
            println!(
                "obs [{} n={}]: disabled {:+.2}% (A/A noise floor), \
                 enabled {:+.2}% vs {:.0} events/s baseline",
                obs.protocol,
                obs.n,
                obs.disabled_overhead_percent,
                obs.enabled_overhead_percent,
                obs.baseline_events_per_sec
            );
            println!("wrote {out}");
        }
        Command::Fuzz(spec) => run_fuzz(&spec)?,
        Command::Repro { path } => run_repro(&path)?,
        Command::Trace(spec) => run_trace(&spec)?,
        Command::CampaignRun(spec) => {
            if let Some(report) = exec_campaign_run(&spec)? {
                emit_report(&report, spec.json, spec.report.as_deref())?;
            }
        }
        Command::CampaignMerge(spec) => {
            let report = exec_campaign_merge(&spec)?;
            emit_report(&report, spec.json, spec.report.as_deref())?;
        }
        Command::Fig(which) => run_figure(which),
        Command::Table(which) => match which {
            1 => {
                for row in loc::table1() {
                    println!("{:<14} {:<24} {:>6}", row.name, row.network, row.loc);
                }
            }
            _ => {
                for row in loc::table2() {
                    println!("{:<20} {:<22} {:>6}", row.name, row.capability, row.loc);
                }
            }
        },
    }
    Ok(())
}

/// Serialises a fuzz report as the `bft-sim fuzz --json` document.
/// `repro_paths` pairs with `report.outcomes` (one written repro file per
/// violating scenario). Deterministic: byte-identical for the same report,
/// which is itself byte-identical at any thread count and under either
/// scheduler backend — which is also why the document deliberately carries
/// no scheduler field.
pub fn fuzz_report_json(
    spec: &FuzzSpec,
    report: &bft_sim_simcheck::FuzzReport,
    repro_paths: &[String],
) -> Json {
    let outcomes = report
        .outcomes
        .iter()
        .zip(repro_paths)
        .map(|(o, path)| {
            Json::obj([
                ("scenario_seed", Json::from(o.scenario_seed)),
                (
                    "violations",
                    Json::Arr(
                        o.violations
                            .iter()
                            .map(|v| Json::from(v.as_str()))
                            .collect(),
                    ),
                ),
                ("repro", Json::from(path.as_str())),
            ])
        })
        .collect();
    let failures = report
        .failures
        .iter()
        .map(|f| {
            let mut pairs = vec![
                ("scenario_seed".to_string(), Json::from(f.scenario_seed)),
                ("panic".to_string(), Json::from(f.message.as_str())),
            ];
            if !f.last_events.is_empty() {
                pairs.push((
                    "last_events".to_string(),
                    Json::Arr(f.last_events.iter().map(|e| e.to_json()).collect()),
                ));
            }
            Json::Obj(pairs)
        })
        .collect();
    let mut pairs = vec![
        (
            "seeds".to_string(),
            Json::obj([
                ("lo", Json::from(spec.seeds.0)),
                ("hi", Json::from(spec.seeds.1)),
            ]),
        ),
        ("runs".to_string(), Json::from(report.runs)),
        (
            "events_processed".to_string(),
            Json::from(report.events_processed),
        ),
        (
            "skipped_cancelled_timers".to_string(),
            Json::from(report.skipped_cancelled_timers),
        ),
        (
            "skipped_excluded_nodes".to_string(),
            Json::from(report.skipped_excluded_nodes),
        ),
        (
            "violating_scenarios".to_string(),
            Json::from(report.outcomes.len()),
        ),
        ("outcomes".to_string(), Json::Arr(outcomes)),
        (
            "panicked_scenarios".to_string(),
            Json::from(report.panicked),
        ),
        ("failures".to_string(), Json::Arr(failures)),
    ];
    if spec.fault_preset != FaultPreset::Calm {
        pairs.push((
            "fault_preset".to_string(),
            Json::from(spec.fault_preset.name()),
        ));
    }
    if let Some(coverage) = &report.coverage {
        pairs.push(("coverage".to_string(), coverage.to_json()));
    }
    if let Some(obs) = &report.observability {
        pairs.push(("observability".to_string(), obs.to_json()));
    }
    Json::Obj(pairs)
}

/// Runs a `bft-sim fuzz` sweep: per-seed scenario generation (sharded across
/// `--threads` workers), oracle checks, shrinking, and one repro file per
/// violation.
fn run_fuzz(spec: &FuzzSpec) -> Result<(), CliError> {
    let protocols = parse_protocol_list(&spec.protocols)?;
    let net_override = spec
        .net_preset
        .as_deref()
        .map(parse_net_preset)
        .transpose()?;
    let opts = bft_sim_simcheck::FuzzOptions {
        protocols,
        intensity_permille: spec.intensity_permille,
        max_actions: spec.max_actions,
        inject_bug: spec.inject_bug,
        threads: spec.threads,
        scheduler: spec.scheduler,
        observability: spec.observability,
        n_override: spec.n_override,
        net_override,
        fault_preset: spec.fault_preset,
        latent_bug: false,
    };
    let start = std::time::Instant::now();
    let report = if spec.coverage {
        let budget = spec.seeds.1.saturating_sub(spec.seeds.0);
        let dir = spec.corpus_dir.as_ref().map(std::path::Path::new);
        bft_sim_simcheck::fuzz_coverage_in_dir(spec.seeds.0, budget, !spec.blind, &opts, dir)
            .map_err(CliError::runtime)?
    } else {
        bft_sim_simcheck::fuzz_many(spec.seeds.0..spec.seeds.1, &opts).map_err(CliError::runtime)?
    };
    let wall = start.elapsed().as_secs_f64();
    let mut repro_paths = Vec::new();
    for outcome in &report.outcomes {
        let path = std::path::Path::new(&spec.out_dir).join(format!(
            "repro-seed{}-{}.json",
            outcome.scenario_seed, outcome.repro.oracle
        ));
        std::fs::create_dir_all(&spec.out_dir)
            .map_err(|e| CliError::runtime(format!("cannot create {}: {e}", spec.out_dir)))?;
        std::fs::write(&path, outcome.repro.to_json().dump_pretty())
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        repro_paths.push(path.display().to_string());
    }
    if spec.json {
        println!(
            "{}",
            fuzz_report_json(spec, &report, &repro_paths).dump_pretty()
        );
    } else {
        for (outcome, path) in report.outcomes.iter().zip(&repro_paths) {
            println!("seed {}:", outcome.scenario_seed);
            for v in &outcome.violations {
                println!("  {v}");
            }
            println!("  shrunk repro -> {path}");
        }
        for failure in &report.failures {
            println!(
                "seed {}: PANICKED: {}",
                failure.scenario_seed, failure.message
            );
        }
        if let Some(coverage) = &report.coverage {
            println!(
                "coverage [{}]: {} distinct fingerprints over {} runs \
                 ({} mutated, {} fresh, corpus {}, {} new/1k)",
                if coverage.corpus_mode {
                    "corpus"
                } else {
                    "blind"
                },
                coverage.distinct_fingerprints,
                coverage.runs,
                coverage.mutated_runs,
                coverage.fresh_runs,
                coverage.corpus_size,
                coverage.new_per_1k(),
            );
            if coverage.loaded_corpus > 0 {
                println!(
                    "corpus dir: {} entries loaded from a previous search",
                    coverage.loaded_corpus
                );
            }
            let curve: Vec<String> = coverage
                .curve
                .iter()
                .map(|&(runs, distinct)| format!("{runs}:{distinct}"))
                .collect();
            println!("coverage curve: {}", curve.join(" "));
        }
        println!(
            "fuzz: {} scenarios ({} violating, {} panicked), {} events, {:.1} ms",
            report.runs,
            report.outcomes.len(),
            report.failures.len(),
            report.events_processed,
            wall * 1e3,
        );
    }
    if report.clean() {
        Ok(())
    } else {
        Err(CliError::violation(format!(
            "{} of {} scenarios violated an oracle, {} panicked",
            report.outcomes.len(),
            report.runs + report.failures.len() as u64,
            report.failures.len()
        )))
    }
}

/// Replays a repro file and reports whether its oracle still fires.
fn run_repro(path: &str) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::repro(format!("cannot read {path}: {e}")))?;
    let json = Json::parse(&text).map_err(|e| CliError::repro(format!("bad repro {path}: {e}")))?;
    let repro = bft_sim_simcheck::Repro::from_json(&json)
        .map_err(|e| CliError::repro(format!("bad repro {path}: {e}")))?;
    let violation = repro
        .check()
        .map_err(|e| CliError::repro(format!("{path}: {e}")))?;
    println!("reproduced: {violation}");
    Ok(())
}

/// Runs one scenario with full observability and prints its instrumentation.
fn run_trace(spec: &TraceSpec) -> Result<(), CliError> {
    use bft_sim_simcheck::{RunMode, ScenarioSpec};

    let mut scenario = if std::path::Path::new(&spec.scenario).is_file() {
        let text = std::fs::read_to_string(&spec.scenario)
            .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", spec.scenario)))?;
        let json = Json::parse(&text)
            .map_err(|e| CliError::usage(format!("bad scenario {}: {e}", spec.scenario)))?;
        ScenarioSpec::from_json(&json)
            .map_err(|e| CliError::usage(format!("bad scenario {}: {e}", spec.scenario)))?
    } else if let Some(kind) = ProtocolKind::parse(&spec.scenario) {
        ScenarioSpec::baseline(kind)
    } else {
        return Err(CliError::usage(format!(
            "'{}' is neither a protocol name nor a scenario JSON file",
            spec.scenario
        )));
    };
    if let Some(seed) = spec.seed {
        scenario.seed = seed;
    }
    let run = scenario
        .run_observed(
            RunMode::Generate,
            spec.scheduler,
            Some(scenario.obs_config(spec.last_k)),
        )
        .map_err(CliError::runtime)?;
    let obs = run
        .result
        .observability
        .as_ref()
        .expect("trace always runs with observability on");

    if spec.json {
        // Scenario + observability only: both derive purely from simulated
        // quantities, so this document is byte-identical under every
        // scheduler backend and thread count.
        let doc = Json::obj([
            ("scenario", scenario.to_json()),
            ("events_processed", Json::from(run.result.events_processed)),
            (
                "decisions_completed",
                Json::from(run.result.decisions_completed()),
            ),
            ("observability", obs.to_json()),
        ]);
        println!("{}", doc.dump_pretty());
        return Ok(());
    }

    println!(
        "scenario: {} n={} seed={} ({} events, {} decisions{})",
        scenario.protocol.name(),
        scenario.n,
        scenario.seed,
        run.result.events_processed,
        run.result.decisions_completed(),
        if run.violations.is_empty() {
            ", clean".to_string()
        } else {
            format!(", {} violations", run.violations.len())
        },
    );
    println!();
    println!("delivery latency (µs):");
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>10}",
        "node", "count", "mean", "min", "max"
    );
    for (node, h) in obs.delivery_latency.iter().enumerate() {
        if h.is_empty() {
            continue;
        }
        println!(
            "n{:<5} {:>8} {:>10.1} {:>10} {:>10}",
            node,
            h.count(),
            h.mean_micros(),
            h.min_micros(),
            h.max_micros()
        );
    }
    println!();
    println!("decision intervals (µs):");
    println!(
        "{:<6} {:>8} {:>10} {:>10} {:>10}",
        "node", "count", "mean", "min", "max"
    );
    for (node, h) in obs.decision_interval.iter().enumerate() {
        if h.is_empty() {
            continue;
        }
        println!(
            "n{:<5} {:>8} {:>10.1} {:>10} {:>10}",
            node,
            h.count(),
            h.mean_micros(),
            h.min_micros(),
            h.max_micros()
        );
    }
    if !obs.link_queues.is_empty() {
        println!();
        println!("link queueing (µs) — hottest links first:");
        println!(
            "{:<12} {:>8} {:>10} {:>10} {:>10}",
            "link", "waits", "mean wait", "max wait", "peak depth"
        );
        let mut links: Vec<_> = obs.link_queues.iter().collect();
        // Hottest first: total time spent waiting on the link, then the
        // (src, dst) order for a deterministic tie-break.
        links.sort_by(|a, b| {
            b.queued
                .sum_micros()
                .cmp(&a.queued.sum_micros())
                .then((a.src, a.dst).cmp(&(b.src, b.dst)))
        });
        for l in links {
            println!(
                "n{} -> n{:<5} {:>8} {:>10.1} {:>10} {:>10}",
                l.src,
                l.dst,
                l.queued.count(),
                l.queued.mean_micros(),
                l.queued.max_micros(),
                l.peak_depth
            );
        }
        println!(
            "  total: {} waits, mean {:.1} µs",
            obs.link_queue_delay.count(),
            obs.link_queue_delay.mean_micros()
        );
    }
    println!();
    println!("message flows (src rows × dst columns):");
    for flow in &obs.flows {
        println!(
            "  phase {} ({} messages):",
            flow.phase,
            obs.phase_total(&flow.phase)
        );
        for src in 0..obs.nodes {
            let row: Vec<String> = (0..obs.nodes)
                .map(|dst| format!("{:>6}", flow.get(src, dst)))
                .collect();
            println!("    n{src}: {}", row.join(" "));
        }
    }
    if !obs.views.is_empty() {
        println!();
        println!("view timings (µs):");
        println!(
            "{:<6} {:>12} {:>12} {:>8}",
            "view", "first entry", "last entry", "entries"
        );
        for v in &obs.views {
            println!(
                "{:<6} {:>12} {:>12} {:>8}",
                v.view,
                v.first_entry.as_micros(),
                v.last_entry.as_micros(),
                v.entries
            );
        }
    }
    println!();
    println!("last {} events:", obs.recent_events.len());
    for e in &obs.recent_events {
        println!(
            "  t={:<10} n{:<3} {:?}",
            e.time.as_micros(),
            e.node.as_u32(),
            e.kind
        );
    }
    Ok(())
}

fn emit(reports: &[Report], json: bool) {
    if json {
        let arr = Json::Arr(reports.iter().map(Report::to_json).collect());
        println!("{}", arr.dump_pretty());
        return;
    }
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>9} {:>14}",
        "protocol", "lat (s)", "±sd", "msgs/dec", "±sd", "timeouts", "est. dec/s"
    );
    for r in reports {
        let throughput = r
            .est_max_decisions_per_sec
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<14} {:>10.3} {:>10.3} {:>12.1} {:>12.1} {:>8.0}% {:>14}",
            r.protocol,
            r.latency_mean_s,
            r.latency_sd_s,
            r.messages_mean,
            r.messages_sd,
            r.timeout_rate * 100.0,
            throughput
        );
    }
}

fn run_figure(which: u8) {
    // Small interactive defaults; the bench harnesses run the full sweeps.
    let (n, reps, seed) = (16, 10, 0xC11);
    match which {
        2 => {
            for row in figures::fig2(&[4, 8, 16, 32, 64], 1, seed) {
                println!(
                    "n={:<4} ours {:8.2} ms   baseline {}",
                    row.n,
                    row.core_wall_ms.mean,
                    match (&row.baseline_wall_ms, row.baseline_oom) {
                        (Some(s), _) => format!("{:10.2} ms", s.mean),
                        _ => "OUT OF MEMORY".into(),
                    }
                );
            }
        }
        3 => print_points(&figures::fig3(n, reps, seed)),
        4 => print_points(&figures::fig4(n, reps, seed, &[1000.0, 2000.0, 3000.0])),
        5 => print_points(&figures::fig5(n, reps, seed, &[150.0, 500.0, 1000.0])),
        6 => print_points(&figures::fig6(n, reps, seed, 20.0)),
        7 => print_points(&figures::fig7(n, reps, seed, &[0, 2, 4])),
        8 => print_points(&figures::fig8(n, reps, seed)),
        _ => {
            for (node, timeline) in figures::fig9(n, seed) {
                let s: Vec<String> = timeline
                    .iter()
                    .map(|(t, v)| format!("{t:.1}s->v{v}"))
                    .collect();
                println!("{node}: {}", s.join(" "));
            }
        }
    }
}

fn print_points(points: &[figures::Point]) {
    for p in points {
        println!(
            "{:<14} {:<16} lat {:8.3} ± {:7.3} s   msgs {:10.1}   timeouts {:3.0}%",
            p.protocol.name(),
            p.x,
            p.latency.mean,
            p.latency.std_dev,
            p.messages.mean,
            p.timeout_rate * 100.0
        );
    }
}

/// The usage string.
pub fn usage() -> &'static str {
    "bft-sim — discrete-event simulator for BFT protocols

USAGE:
    bft-sim run      --protocol NAME [--nodes N] [--lambda MS] [--delay-mu MS]
                     [--delay-sigma MS] [--reps K] [--seed S] [--attack SPEC]
                     [--cost none|ed25519|rsa2048|mac] [--json] [--config FILE.json]
    bft-sim compare  [same flags; runs all eight protocols]
    bft-sim fig N    regenerate figure N (2..=9) with small defaults
    bft-sim table N  regenerate table N (1 or 2)
    bft-sim bench-baseline [--out FILE.json] [--threads N]
                     [--scheduler heap|wheel|both]
                     run the perf-baseline workloads (PBFT / HotStuff+NS at
                     n = 16, 64, 256, 1024) and write BENCH_baseline.json;
                     --threads
                     (0 = all cores) applies to the fuzz-throughput and
                     thread-scaling entries, while the per-case workloads
                     stay serial so allocation counts remain attributable;
                     --scheduler both (the default) measures every event-
                     queue backend so the heap-vs-wheel comparison lands in
                     one document
    bft-sim fuzz     [--seeds A..B|N] [--protocols all|p1,p2,...]
                     [--intensity PERMILLE] [--max-actions K] [--inject-bug]
                     [--out DIR] [--json] [--obs] [--threads N]
                     [--scheduler heap|wheel] [--n NODES]
                     [--preset calm|moderate|chaos] [--net-preset SPEC]
                     [--coverage [--blind] [--corpus-dir DIR]]
                     sweep deterministic fuzz scenarios across N worker
                     threads (0 = all cores; output is byte-identical at any
                     thread count and under either scheduler backend),
                     oracle-check every run, shrink violations to repro
                     files; exits non-zero when any oracle fires or any run
                     panics; --obs instruments every run: the report gains
                     an observability block and repros/failures carry their
                     last trace events, with everything else byte-identical;
                     --n forces every scenario to NODES nodes (≥ 4) for
                     large-n smoke sweeps; --preset arms the buggify fault
                     catalog (timer skew, duplicates, reorders, targeted
                     drops, torn writes) in every scenario; --coverage runs
                     the corpus-driven coverage search instead of the
                     per-seed sweep (--seeds A..B = master seed A, budget
                     B−A; the report gains a coverage block), --blind
                     keeps its accounting but disables the corpus loop (the
                     comparison baseline), and --corpus-dir persists the
                     corpus in DIR/corpus.json across invocations (loaded
                     before the search, written back after — the CI cache
                     knob); --net-preset pins every scenario's link-level
                     network block to one shape:
                     TOPOLOGY[:bw=BYTES_PER_SEC][:seed=S]
                     [:churn=SEED,CRASHES,MIN_MS,MAX_MS] with topologies
                     full_mesh | ring | ring_gradient | clustered, e.g.
                     ring_gradient:bw=200000:churn=5,2,500,4000
    bft-sim campaign run MANIFEST.json [--checkpoint FILE] [--resume]
                     [--shard I/M] [--threads N] [--scheduler heap|wheel]
                     [--out DIR] [--json] [--report FILE] [--max-units K]
                     run a bft-sim-campaign-v1 parameter grid (protocol ×
                     n × delay × net × attack × seed), checkpointing
                     atomically every checkpoint_every units so a kill at
                     any instant loses at most one batch; --resume
                     continues from the checkpoint (verifying the manifest
                     hash; a missing checkpoint starts fresh); --shard I/M
                     runs every M-th unit starting at I, for fan-out
                     across processes or machines; --max-units pauses
                     after K units (at a batch boundary); the final report
                     is byte-identical whether the campaign ran straight
                     through, was killed and resumed, or was sharded and
                     merged — at any --threads and under either scheduler
    bft-sim campaign merge MANIFEST.json CKPT... [--json] [--report FILE]
                     merge every shard's checkpoint into the final report
    bft-sim repro FILE.json
                     replay a bft-sim-repro-v1 file and confirm its oracle
                     still fires
    bft-sim trace SCENARIO [--seed S] [--last-k K] [--json]
                     [--scheduler heap|wheel]
                     run one scenario (a protocol short name, or a scenario
                     JSON file as embedded in repro files) with full
                     observability and print per-node latency/decision
                     histograms, per-link queueing stats (hottest bottleneck
                     links first, for scenarios with a bandwidth-capped net
                     block), the per-phase message-flow matrix, view timings
                     and the last-K trace events
    bft-sim list     list protocols

ATTACK SPECS:
    none | failstop:K | partition:START_MS:END_MS | add-static:K | add-adaptive

EXIT CODES:
    0 success   1 runtime failure   2 usage/parse error
    3 fuzz/campaign found violations or panicked runs
    4 artifact error (repro, manifest, or checkpoint file)   101 panic"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_commands() {
        assert_eq!(parse_args(&args(&["list"])).unwrap(), Command::List);
        assert_eq!(parse_args(&args(&["fig", "5"])).unwrap(), Command::Fig(5));
        assert_eq!(
            parse_args(&args(&["table", "1"])).unwrap(),
            Command::Table(1)
        );
        assert!(parse_args(&args(&["fig", "12"])).is_err());
        assert!(parse_args(&args(&["bogus"])).is_err());
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parses_run_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--protocol",
            "librabft",
            "--nodes",
            "7",
            "--lambda",
            "500",
            "--reps",
            "3",
            "--attack",
            "failstop:2",
            "--json",
        ]))
        .unwrap();
        let Command::Run(spec) = cmd else {
            panic!("expected run");
        };
        assert_eq!(spec.protocol, "librabft");
        assert_eq!(spec.nodes, 7);
        assert_eq!(spec.lambda_ms, 500.0);
        assert_eq!(spec.reps, 3);
        assert!(spec.json);
        assert_eq!(
            parse_attack(&spec.attack).unwrap(),
            AttackSpec::FailStopLast(2)
        );
    }

    #[test]
    fn parses_attacks() {
        assert_eq!(parse_attack("none").unwrap(), AttackSpec::None);
        assert_eq!(
            parse_attack("partition:100:2000").unwrap(),
            AttackSpec::Partition {
                start_ms: 100,
                end_ms: 2000,
                drop: false
            }
        );
        assert_eq!(
            parse_attack("add-adaptive").unwrap(),
            AttackSpec::AddAdaptive
        );
        assert!(parse_attack("meteor").is_err());
    }

    #[test]
    fn run_one_produces_a_report() {
        let spec = RunSpec {
            nodes: 4,
            reps: 2,
            ..RunSpec::default()
        };
        let report = run_one(ProtocolKind::Pbft, &spec).unwrap();
        assert_eq!(report.protocol, "pbft");
        assert!(report.latency_mean_s > 0.0);
        assert_eq!(report.timeout_rate, 0.0);
    }

    #[test]
    fn unknown_protocol_is_an_error() {
        let spec = RunSpec {
            protocol: "raft".into(),
            ..RunSpec::default()
        };
        assert!(execute(Command::Run(spec)).is_err());
    }

    #[test]
    fn parses_fuzz_flags() {
        let cmd = parse_args(&args(&[
            "fuzz",
            "--seeds",
            "3..9",
            "--protocols",
            "pbft,hotstuff-ns",
            "--intensity",
            "250",
            "--max-actions",
            "12",
            "--inject-bug",
            "--out",
            "repros",
            "--json",
            "--threads",
            "4",
            "--scheduler",
            "wheel",
            "--preset",
            "chaos",
            "--coverage",
            "--blind",
            "--corpus-dir",
            "corpus",
            "--net-preset",
            "ring_gradient:bw=200000:churn=5,2,500,4000",
        ]))
        .unwrap();
        let Command::Fuzz(spec) = cmd else {
            panic!("expected fuzz");
        };
        assert_eq!(spec.seeds, (3, 9));
        assert_eq!(spec.protocols, "pbft,hotstuff-ns");
        assert_eq!(spec.intensity_permille, 250);
        assert_eq!(spec.max_actions, 12);
        assert!(spec.inject_bug);
        assert_eq!(spec.out_dir, "repros");
        assert!(spec.json);
        assert_eq!(spec.threads, 4);
        assert_eq!(spec.scheduler, SchedulerKind::Wheel);
        assert_eq!(spec.fault_preset, FaultPreset::Chaos);
        assert!(spec.coverage);
        assert!(spec.blind);
        assert_eq!(spec.corpus_dir.as_deref(), Some("corpus"));
        assert_eq!(
            spec.net_preset.as_deref(),
            Some("ring_gradient:bw=200000:churn=5,2,500,4000")
        );
        assert!(parse_args(&args(&["fuzz", "--preset", "wild"])).is_err());
        assert!(
            parse_args(&args(&["fuzz", "--blind"])).is_err(),
            "--blind without --coverage must be a usage error"
        );
        assert!(
            parse_args(&args(&["fuzz", "--corpus-dir", "c"])).is_err(),
            "--corpus-dir without --coverage must be a usage error"
        );
        assert!(
            parse_args(&args(&["fuzz", "--net-preset", "torus"])).is_err(),
            "an unknown topology must be rejected at parse time"
        );
        assert_eq!(
            parse_args(&args(&["fuzz"])).unwrap(),
            Command::Fuzz(FuzzSpec::default())
        );
        assert_eq!(FuzzSpec::default().scheduler, SchedulerKind::Heap);
        assert!(!FuzzSpec::default().observability);
        assert!(parse_args(&args(&["fuzz", "--threads", "x"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--scheduler", "both"])).is_err());
        assert!(parse_args(&args(&["fuzz", "--scheduler", "splay"])).is_err());
        let Command::Fuzz(spec) = parse_args(&args(&["fuzz", "--obs"])).unwrap() else {
            panic!("expected fuzz");
        };
        assert!(spec.observability);
    }

    #[test]
    fn parses_net_presets() {
        use bft_sim_simcheck::{ChurnSpec, NetSpec, TopologyKind};

        assert_eq!(
            parse_net_preset("full_mesh").unwrap(),
            NetSpec {
                topology: TopologyKind::FullMesh,
                bandwidth: None,
                topology_seed: 0,
                churn: None,
            }
        );
        assert_eq!(
            parse_net_preset("ring_gradient:bw=200000:seed=7:churn=5,2,500,4000").unwrap(),
            NetSpec {
                topology: TopologyKind::RingGradient,
                bandwidth: Some(200_000),
                topology_seed: 7,
                churn: Some(ChurnSpec {
                    seed: 5,
                    crashes: 2,
                    min_down_ms: 500,
                    max_down_ms: 4_000,
                }),
            }
        );
        for bad in [
            "",
            "torus",
            "ring:bw",
            "ring:bw=fast",
            "ring:churn=5,2",
            "ring:lanes=4",
        ] {
            assert!(parse_net_preset(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn parses_trace_flags() {
        let cmd = parse_args(&args(&[
            "trace",
            "pbft",
            "--seed",
            "11",
            "--last-k",
            "16",
            "--json",
            "--scheduler",
            "wheel",
        ]))
        .unwrap();
        let Command::Trace(spec) = cmd else {
            panic!("expected trace");
        };
        assert_eq!(spec.scenario, "pbft");
        assert_eq!(spec.seed, Some(11));
        assert_eq!(spec.last_k, 16);
        assert!(spec.json);
        assert_eq!(spec.scheduler, SchedulerKind::Wheel);

        let err = parse_args(&args(&["trace"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(parse_args(&args(&["trace", "pbft", "extra"])).is_err());
        assert!(parse_args(&args(&["trace", "pbft", "--last-k", "x"])).is_err());
    }

    #[test]
    fn trace_command_runs_for_pbft_and_hotstuff() {
        for protocol in ["pbft", "hotstuff-ns"] {
            execute(Command::Trace(TraceSpec {
                scenario: protocol.into(),
                json: true,
                ..TraceSpec::default()
            }))
            .unwrap_or_else(|e| panic!("trace {protocol} failed: {e}"));
        }
        let err = execute(Command::Trace(TraceSpec {
            scenario: "raft".into(),
            ..TraceSpec::default()
        }))
        .unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("neither"), "{err}");
    }

    #[test]
    fn error_constructors_carry_the_documented_codes() {
        assert_eq!(CliError::runtime("x").code, 1);
        assert_eq!(CliError::usage("x").code, 2);
        assert_eq!(CliError::violation("x").code, 3);
        assert_eq!(CliError::repro("x").code, 4);
    }

    #[test]
    fn parses_bench_baseline_flags() {
        assert_eq!(
            parse_args(&args(&["bench-baseline"])).unwrap(),
            Command::BenchBaseline {
                out: "BENCH_baseline.json".into(),
                threads: 0,
                scheduler: None
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "bench-baseline",
                "--out",
                "b.json",
                "--threads",
                "2",
                "--scheduler",
                "wheel"
            ]))
            .unwrap(),
            Command::BenchBaseline {
                out: "b.json".into(),
                threads: 2,
                scheduler: Some(SchedulerKind::Wheel)
            }
        );
        assert_eq!(
            parse_args(&args(&["bench-baseline", "--scheduler", "both"])).unwrap(),
            Command::BenchBaseline {
                out: "BENCH_baseline.json".into(),
                threads: 0,
                scheduler: None
            }
        );
        assert!(parse_args(&args(&["bench-baseline", "--threads"])).is_err());
        assert!(parse_args(&args(&["bench-baseline", "--scheduler", "splay"])).is_err());
    }

    #[test]
    fn parses_seed_ranges() {
        assert_eq!(parse_seed_range("0..32").unwrap(), (0, 32));
        assert_eq!(parse_seed_range("8").unwrap(), (0, 8));
        assert!(parse_seed_range("9..9").is_err());
        assert!(parse_seed_range("5..2").is_err());
        assert!(parse_seed_range("x..y").is_err());
    }

    #[test]
    fn parses_repro_command() {
        assert_eq!(
            parse_args(&args(&["repro", "r.json"])).unwrap(),
            Command::Repro {
                path: "r.json".into()
            }
        );
        assert!(parse_args(&args(&["repro"])).is_err());
        assert!(parse_args(&args(&["repro", "a.json", "b.json"])).is_err());
    }

    #[test]
    fn parses_protocol_lists() {
        assert_eq!(
            parse_protocol_list("all").unwrap(),
            ProtocolKind::extended().to_vec()
        );
        assert_eq!(
            parse_protocol_list("pbft, tendermint").unwrap(),
            vec![ProtocolKind::Pbft, ProtocolKind::Tendermint]
        );
        assert!(parse_protocol_list("raft").is_err());
    }

    #[test]
    fn fuzz_sweep_over_honest_protocols_is_clean() {
        let spec = FuzzSpec {
            seeds: (0, 2),
            protocols: "pbft".into(),
            out_dir: std::env::temp_dir()
                .join("bft_sim_cli_fuzz_test")
                .display()
                .to_string(),
            ..FuzzSpec::default()
        };
        execute(Command::Fuzz(spec)).expect("honest pbft sweep must be clean");
    }

    #[test]
    fn repro_command_surfaces_missing_and_stale_files() {
        let err = execute(Command::Repro {
            path: "/nonexistent/repro.json".into(),
        })
        .unwrap_err();
        assert_eq!(err.code, 4, "unreadable repro file must exit 4");
        assert!(err.message.contains("cannot read"), "{err}");
        // A syntactically valid repro whose oracle cannot fire is reported
        // as stale rather than silently succeeding.
        let repro = bft_sim_simcheck::Repro {
            spec: bft_sim_simcheck::ScenarioSpec::baseline(ProtocolKind::Pbft),
            actions: Vec::new(),
            fault_actions: Vec::new(),
            schedule: None,
            oracle: "agreement".into(),
            detail: "synthetic".into(),
            last_events: Vec::new(),
        };
        let path = std::env::temp_dir().join("bft_sim_cli_stale_repro.json");
        std::fs::write(&path, repro.to_json().dump_pretty()).unwrap();
        let err = execute(Command::Repro {
            path: path.display().to_string(),
        })
        .unwrap_err();
        assert_eq!(err.code, 4, "stale repro must exit 4");
        assert!(err.message.contains("no longer reproduces"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn config_file_round_trip() {
        let spec = RunSpec {
            protocol: "algorand".into(),
            nodes: 10,
            ..RunSpec::default()
        };
        let json = spec.to_json().dump_pretty();
        let path = std::env::temp_dir().join("bft_sim_cli_test_config.json");
        std::fs::write(&path, &json).unwrap();
        let cmd = parse_args(&args(&["run", "--config", path.to_str().unwrap()])).unwrap();
        let Command::Run(loaded) = cmd else {
            panic!("expected run");
        };
        assert_eq!(loaded, spec);
        let _ = std::fs::remove_file(&path);
    }
}
