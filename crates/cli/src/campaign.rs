//! The `bft-sim campaign` subcommand: resumable, shardable parameter-grid
//! sweeps driven by a `bft-sim-campaign-v1` manifest.
//!
//! The grid mechanics — manifest expansion, checkpointing, sharding,
//! merging, report derivation — live in [`bft_sim_core::campaign`]. This
//! module owns what only the CLI layer knows: how a grid axis value maps to
//! a concrete [`ScenarioSpec`] (protocol names, delay presets, the
//! `--net-preset` grammar), the batch execution loop over [`run_unit`], the
//! repro files written for violated units, and the progress/report output.
//!
//! [`exec_campaign_run`] and [`exec_campaign_merge`] return the final
//! report as a [`Json`] value instead of printing it, so the byte-identity
//! integration test can drive whole campaigns in-process and compare
//! documents.

use std::path::{Path, PathBuf};

use bft_sim_core::campaign::{
    final_report, merge_checkpoints, mix_seed, shard_units, Checkpoint, Manifest, Unit,
    UnitOutcome, UnitRecord,
};
use bft_sim_core::json::Json;
use bft_sim_core::scheduler::SchedulerKind;
use bft_sim_core::sweep::sweep;
use bft_sim_simcheck::{run_unit, DelaySpec, ScenarioSpec, UnitRun};
use bft_simulator::prelude::ProtocolKind;

use crate::{parse_net_preset, CliError};

/// Per-node delivery-latency and decision-interval histograms harvested from
/// a unit's observability block, ready to merge into the checkpoint
/// aggregates. `None` when the unit panicked before producing them.
type UnitHistograms = Option<(
    Vec<bft_sim_core::obs::Histogram>,
    Vec<bft_sim_core::obs::Histogram>,
)>;

/// Parameters of a `bft-sim campaign run` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRunSpec {
    /// Path of the `bft-sim-campaign-v1` manifest file.
    pub manifest: String,
    /// Checkpoint file path; `None` derives one next to the manifest
    /// (shard-qualified when sharded).
    pub checkpoint: Option<String>,
    /// Continue from an existing checkpoint instead of refusing to
    /// overwrite it. A missing checkpoint file resumes from nothing — a
    /// fresh start — so retry loops need no existence probe.
    pub resume: bool,
    /// Shard assignment `(index, count)`; `(0, 1)` runs the whole grid.
    pub shard: (u32, u32),
    /// Worker threads per batch (0 = available parallelism). The report is
    /// byte-identical at any thread count.
    pub threads: usize,
    /// Event-scheduler backend for every unit. Reports are byte-identical
    /// under either backend.
    pub scheduler: SchedulerKind,
    /// Directory repro files for violated units are written to.
    pub out_dir: String,
    /// Print the final report as JSON instead of a text summary.
    pub json: bool,
    /// Also write the final report to this file.
    pub report: Option<String>,
    /// Stop (at a batch boundary) after completing this many units in this
    /// invocation — the deterministic stand-in for a mid-flight kill, used
    /// by the resume tests and handy for time-boxed CI slices.
    pub max_units: Option<usize>,
}

impl Default for CampaignRunSpec {
    fn default() -> Self {
        CampaignRunSpec {
            manifest: String::new(),
            checkpoint: None,
            resume: false,
            shard: (0, 1),
            threads: 0,
            scheduler: SchedulerKind::default(),
            out_dir: ".".into(),
            json: false,
            report: None,
            max_units: None,
        }
    }
}

/// Parameters of a `bft-sim campaign merge` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignMergeSpec {
    /// Path of the manifest the shard checkpoints were produced from.
    pub manifest: String,
    /// The shard checkpoint files to merge.
    pub checkpoints: Vec<String>,
    /// Print the final report as JSON instead of a text summary.
    pub json: bool,
    /// Also write the final report to this file.
    pub report: Option<String>,
}

/// Loads and validates a campaign manifest: the JSON must parse, the
/// document must round-trip the strict schema, and every grid axis value
/// must be meaningful to this binary (protocol names, delay presets, net
/// presets) — checked up front so a typo fails before any unit runs.
pub fn load_manifest(path: &str) -> Result<Manifest, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::repro(format!("cannot read {path}: {e}")))?;
    let json =
        Json::parse(&text).map_err(|e| CliError::repro(format!("bad manifest {path}: {e}")))?;
    let manifest = Manifest::from_json(&json)
        .map_err(|e| CliError::repro(format!("bad manifest {path}: {e}")))?;
    for protocol in &manifest.protocols {
        if ProtocolKind::parse(protocol).is_none() {
            return Err(CliError::repro(format!(
                "bad manifest {path}: unknown protocol \"{protocol}\""
            )));
        }
    }
    for delay in &manifest.delays {
        if !matches!(delay.as_str(), "constant" | "uniform" | "normal") {
            return Err(CliError::repro(format!(
                "bad manifest {path}: unknown delay \"{delay}\" \
                 (use constant, uniform or normal)"
            )));
        }
    }
    for net in &manifest.nets {
        if net != "none" {
            parse_net_preset(net)
                .map_err(|e| CliError::repro(format!("bad manifest {path}: net \"{net}\": {e}")))?;
        }
    }
    Ok(manifest)
}

/// Maps one expanded work unit to the scenario it runs. Every derived seed
/// comes from [`mix_seed`] over the unit's manifest seed, so the mapping is
/// a pure function of the manifest — the determinism the resume/shard
/// byte-identity guarantee rests on.
fn unit_scenario(manifest: &Manifest, unit: &Unit<'_>) -> Result<ScenarioSpec, CliError> {
    let kind = ProtocolKind::parse(unit.protocol)
        .ok_or_else(|| CliError::repro(format!("unknown protocol \"{}\"", unit.protocol)))?;
    let mut spec = ScenarioSpec::baseline(kind);
    spec.n = unit.n;
    spec.seed = mix_seed(unit.seed, 0);
    spec.genesis_seed = mix_seed(unit.seed, 1);
    spec.adversary_seed = mix_seed(unit.seed, 2);
    spec.delay = match unit.delay {
        "constant" => DelaySpec::Constant { micros: 100_000 },
        "uniform" => DelaySpec::Uniform {
            lo_micros: 50_000,
            hi_micros: 300_000,
        },
        "normal" => DelaySpec::Normal {
            mean_micros: 250_000,
            std_micros: 50_000,
        },
        other => {
            return Err(CliError::repro(format!("unknown delay \"{other}\"")));
        }
    };
    if unit.net != "none" {
        spec.net = Some(parse_net_preset(unit.net)?);
    }
    if unit.attack > 0 {
        spec.intensity_permille = unit.attack;
        spec.max_actions = manifest.max_actions;
    }
    Ok(spec)
}

/// The default checkpoint path for a manifest: the manifest path with its
/// `.json` suffix swapped for `.checkpoint.json`, shard-qualified when the
/// run is sharded so concurrent shards never race on one file.
pub fn default_checkpoint_path(manifest_path: &str, shard: (u32, u32)) -> String {
    let base = manifest_path.strip_suffix(".json").unwrap_or(manifest_path);
    if shard.1 > 1 {
        format!("{base}.shard{}of{}.checkpoint.json", shard.0, shard.1)
    } else {
        format!("{base}.checkpoint.json")
    }
}

/// Turns one completed unit into its durable record, writing a repro file
/// when the unit violated an oracle.
fn record_of(
    unit_index: usize,
    run: UnitRun,
    out_dir: &str,
) -> Result<(UnitRecord, UnitHistograms), CliError> {
    if let Some(message) = run.panic {
        return Ok((
            UnitRecord {
                index: unit_index,
                outcome: UnitOutcome::Panicked { message },
                events: 0,
                decisions: 0,
                honest_messages: 0,
                latency_micros: None,
            },
            None,
        ));
    }
    let outcome = if run.violations.is_empty() {
        UnitOutcome::Clean
    } else {
        let repro_path = run.repro.as_ref().map(|repro| {
            let path =
                Path::new(out_dir).join(format!("repro-unit{unit_index}-{}.json", repro.oracle));
            path.display().to_string()
        });
        if let (Some(repro), Some(path)) = (&run.repro, &repro_path) {
            std::fs::create_dir_all(out_dir)
                .map_err(|e| CliError::runtime(format!("cannot create {out_dir}: {e}")))?;
            std::fs::write(path, repro.to_json().dump_pretty())
                .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        }
        UnitOutcome::Violated {
            violations: run.violations,
            repro: repro_path,
        }
    };
    let histograms = run
        .observability
        .map(|obs| (obs.delivery_latency, obs.decision_interval));
    Ok((
        UnitRecord {
            index: unit_index,
            outcome,
            events: run.events_processed,
            decisions: run.decisions,
            honest_messages: run.honest_messages,
            latency_micros: run.latency_micros,
        },
        histograms,
    ))
}

/// Runs (or resumes) a campaign. Returns the final report when this
/// invocation completed an unsharded grid, `None` when it stopped early
/// (`--max-units`) or finished one shard of a sharded run (whose report
/// comes from `campaign merge`).
///
/// # Errors
///
/// Artifact errors (malformed manifest/checkpoint, a checkpoint from an
/// edited grid) exit 4; refusing to clobber a checkpoint without
/// `--resume` and I/O failures exit 1.
pub fn exec_campaign_run(spec: &CampaignRunSpec) -> Result<Option<Json>, CliError> {
    let manifest = load_manifest(&spec.manifest)?;
    let hash = manifest.hash();
    let assigned = shard_units(&manifest, spec.shard).map_err(CliError::usage)?;
    let checkpoint_path = PathBuf::from(
        spec.checkpoint
            .clone()
            .unwrap_or_else(|| default_checkpoint_path(&spec.manifest, spec.shard)),
    );

    let mut checkpoint = if checkpoint_path.exists() {
        if !spec.resume {
            return Err(CliError::runtime(format!(
                "checkpoint {} already exists; pass --resume to continue it \
                 or delete it to start over",
                checkpoint_path.display()
            )));
        }
        let ck = Checkpoint::load(&checkpoint_path).map_err(CliError::repro)?;
        if ck.manifest_hash != hash {
            return Err(CliError::repro(format!(
                "checkpoint {} was produced from manifest {} but this manifest \
                 hashes to {hash}; was the grid edited mid-campaign?",
                checkpoint_path.display(),
                ck.manifest_hash
            )));
        }
        if ck.shard != spec.shard {
            return Err(CliError::repro(format!(
                "checkpoint {} belongs to shard {}/{}, not {}/{}",
                checkpoint_path.display(),
                ck.shard.0,
                ck.shard.1,
                spec.shard.0,
                spec.shard.1
            )));
        }
        for (position, record) in ck.records.iter().enumerate() {
            if assigned.get(position) != Some(&record.index) {
                return Err(CliError::repro(format!(
                    "checkpoint {} records unit {} at position {position}, but this \
                     shard's unit there is {:?}",
                    checkpoint_path.display(),
                    record.index,
                    assigned.get(position)
                )));
            }
        }
        ck
    } else {
        Checkpoint::new(hash.clone(), spec.shard)
    };

    let already_done = checkpoint.records.len();
    let mut completed_now = 0usize;
    let mut cursor = already_done;
    while cursor < assigned.len() {
        if spec.max_units.is_some_and(|cap| completed_now >= cap) {
            eprintln!(
                "campaign: pausing after {completed_now} units this invocation \
                 ({}/{} total); resume with --resume",
                checkpoint.records.len(),
                assigned.len()
            );
            return Ok(None);
        }
        let batch_end = (cursor + manifest.checkpoint_every).min(assigned.len());
        let batch = &assigned[cursor..batch_end];
        let runs = sweep(batch.len(), spec.threads, |j| {
            let unit = manifest.unit(batch[j]);
            let scenario = unit_scenario(&manifest, &unit)?;
            run_unit(&scenario, spec.scheduler).map_err(CliError::runtime)
        });
        for (j, outcome) in runs.into_iter().enumerate() {
            let run = match outcome {
                Ok(run) => run?,
                // run_unit already isolates engine panics; a panic at the
                // sweep layer (spec construction) is still recorded rather
                // than torn out of the campaign.
                Err(panic) => UnitRun {
                    events_processed: 0,
                    decisions: 0,
                    latency_micros: None,
                    honest_messages: 0,
                    violations: Vec::new(),
                    repro: None,
                    observability: None,
                    panic: Some(panic.message),
                },
            };
            let (record, histograms) = record_of(batch[j], run, &spec.out_dir)?;
            if let Some((delivery, interval)) = histograms {
                for h in &delivery {
                    checkpoint.delivery_latency.merge(h);
                }
                for h in &interval {
                    checkpoint.decision_interval.merge(h);
                }
            }
            checkpoint.records.push(record);
        }
        checkpoint
            .save_atomic(&checkpoint_path)
            .map_err(CliError::runtime)?;
        completed_now += batch_end - cursor;
        cursor = batch_end;
        eprintln!(
            "campaign: {}/{} units checkpointed to {}",
            checkpoint.records.len(),
            assigned.len(),
            checkpoint_path.display()
        );
    }

    if spec.shard.1 > 1 {
        eprintln!(
            "campaign: shard {}/{} complete ({} units); merge every shard's \
             checkpoint with `bft-sim campaign merge`",
            spec.shard.0,
            spec.shard.1,
            assigned.len()
        );
        return Ok(None);
    }
    let report = final_report(&manifest, &checkpoint).map_err(CliError::runtime)?;
    Ok(Some(report))
}

/// Merges shard checkpoints into the campaign's final report.
///
/// # Errors
///
/// Every merge failure — hash mismatch, duplicate or missing units,
/// malformed files — is an artifact error (exit 4).
pub fn exec_campaign_merge(spec: &CampaignMergeSpec) -> Result<Json, CliError> {
    let manifest = load_manifest(&spec.manifest)?;
    let parts = spec
        .checkpoints
        .iter()
        .map(|path| Checkpoint::load(Path::new(path)).map_err(CliError::repro))
        .collect::<Result<Vec<_>, _>>()?;
    let merged = merge_checkpoints(&manifest, &parts).map_err(CliError::repro)?;
    final_report(&manifest, &merged).map_err(CliError::repro)
}

/// Prints a final report (JSON or text summary), optionally writes it to a
/// file, and maps violated/panicked units to the violation exit code.
pub fn emit_report(report: &Json, json: bool, report_path: Option<&str>) -> Result<(), CliError> {
    let text = report.dump_pretty();
    if let Some(path) = report_path {
        std::fs::write(path, &text)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
    }
    let count = |key: &str| report.get(key).and_then(Json::as_u64).unwrap_or_default();
    let (units, clean, violated, panicked) = (
        count("units"),
        count("clean"),
        count("violated"),
        count("panicked"),
    );
    if json {
        println!("{text}");
    } else {
        println!(
            "campaign: {units} units — {clean} clean, {violated} violated, {panicked} panicked"
        );
        if let Some(tally) = report.get("violations").and_then(|v| match v {
            Json::Obj(pairs) if !pairs.is_empty() => Some(pairs),
            _ => None,
        }) {
            for (oracle, n) in tally {
                println!("  {oracle}: {} units", n.as_u64().unwrap_or_default());
            }
        }
        if let Some(first) = report.get("first_panic") {
            println!(
                "  first panic: unit {}: {}",
                first.get("unit").and_then(Json::as_u64).unwrap_or_default(),
                first
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
            );
        }
        if let Some(path) = report_path {
            println!("report -> {path}");
        }
    }
    if violated + panicked > 0 {
        Err(CliError::violation(format!(
            "{violated} of {units} units violated an oracle, {panicked} panicked"
        )))
    } else {
        Ok(())
    }
}
