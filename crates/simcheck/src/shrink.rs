//! Failing-case minimisation.
//!
//! Given a scenario whose run violated an oracle, [`shrink`] searches for a
//! smaller scenario that still violates the *same* oracle, probing with
//! scripted re-runs (every probe is a full deterministic simulation):
//!
//! 1. drop the decision target to 1 (shorter runs);
//! 2. drop the partition window;
//! 3. delta-debug the adversary action list (remove chunks, then singles);
//! 4. shrink `n` down through the generator's scales;
//! 5. when the residual failure is pure drop/delay (no injected payloads, no
//!    seeded bug), record the final failing run's [`DeliverySchedule`] and
//!    bisect it to the shortest violating prefix — the repro then replays
//!    through the engine's validator path with no adversary at all.

use bft_sim_attacks::{FuzzAction, FuzzActionKind};
use bft_sim_core::validator::DeliverySchedule;

use crate::repro::Repro;
use crate::scenario::{CheckedRun, RunMode, ScenarioSpec};

/// The scales [`shrink`] tries, smallest first.
const SCALES_ASCENDING: [usize; 3] = [4, 7, 10];

/// Probes whether `spec` + `actions` still violate `oracle`; returns the run
/// when it does.
fn still_fails(spec: &ScenarioSpec, actions: &[FuzzAction], oracle: &str) -> Option<CheckedRun> {
    spec.run(RunMode::Scripted(actions))
        .ok()
        .filter(|run| run.violates(oracle))
}

/// Minimises a failing scenario to a [`Repro`]. `failing` must be the
/// outcome of `spec.run(RunMode::Generate)`; the first violation's oracle is
/// what every probe must preserve.
pub fn shrink(spec: &ScenarioSpec, failing: &CheckedRun) -> Repro {
    let oracle = failing
        .violations
        .first()
        .expect("shrink needs a violating run")
        .oracle;
    let mut spec = spec.clone();
    let mut actions = failing.actions.clone();

    // The generated run and its scripted replay must agree before any
    // minimisation is meaningful; if they somehow don't, ship the original
    // scenario un-shrunk rather than a broken reproducer.
    if still_fails(&spec, &actions, oracle).is_none() {
        let v = &failing.violations[0];
        return Repro {
            spec,
            actions,
            schedule: None,
            oracle: v.oracle.to_string(),
            detail: v.detail.clone(),
            last_events: Vec::new(),
        };
    }

    // 1. A single decision is enough for any safety violation on slot 0 and
    //    most others; vastly shortens every later probe.
    if spec.target_decisions > 1 {
        let candidate = ScenarioSpec {
            target_decisions: 1,
            ..spec.clone()
        };
        if still_fails(&candidate, &actions, oracle).is_some() {
            spec = candidate;
        }
    }

    // 2. Partitions rarely cause the violation they accompany.
    if spec.partition.is_some() {
        let candidate = ScenarioSpec {
            partition: None,
            ..spec.clone()
        };
        if still_fails(&candidate, &actions, oracle).is_some() {
            spec = candidate;
        }
    }

    // 3. Delta-debug the action list.
    actions = ddmin(&spec, actions, oracle);

    // 4. Fewer nodes, smallest first.
    for n in SCALES_ASCENDING {
        if n >= spec.n {
            break;
        }
        let candidate = ScenarioSpec { n, ..spec.clone() };
        if still_fails(&candidate, &actions, oracle).is_some() {
            spec = candidate;
            break;
        }
    }

    // 5. Re-run the minimised scenario once more for the final schedule and
    //    violation detail, then try to turn it into a pure schedule replay.
    let fin = still_fails(&spec, &actions, oracle)
        .expect("minimised scenario must still fail: every kept step was re-verified");
    let schedule = replay_eligible(&spec, &actions)
        .then(|| {
            bisect_prefix(&fin.schedule, |prefix| {
                spec.run(RunMode::Replay(prefix))
                    .map(|run| run.violates(oracle))
                    .unwrap_or(false)
            })
        })
        .flatten();
    let v = fin
        .violations
        .iter()
        .find(|v| v.oracle == oracle)
        .expect("still_fails guarantees the oracle fired");
    Repro {
        spec,
        actions,
        schedule,
        oracle: v.oracle.to_string(),
        detail: v.detail.clone(),
        last_events: Vec::new(),
    }
}

/// Whether a recorded schedule can reproduce the failure on its own: replay
/// mode skips the adversary, so injected payloads (replays, the seeded bug)
/// are not captured and must stay scripted.
fn replay_eligible(spec: &ScenarioSpec, actions: &[FuzzAction]) -> bool {
    !spec.inject_bug
        && !actions
            .iter()
            .any(|a| matches!(a.kind, FuzzActionKind::Replay { .. }))
}

/// One pass of ddmin-style chunk removal: repeatedly try deleting chunks of
/// halving size, keeping any deletion that preserves the violation.
fn ddmin(spec: &ScenarioSpec, mut actions: Vec<FuzzAction>, oracle: &str) -> Vec<FuzzAction> {
    let mut chunk = actions.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < actions.len() {
            let end = (i + chunk).min(actions.len());
            let mut candidate = actions.clone();
            candidate.drain(i..end);
            if still_fails(spec, &candidate, oracle).is_some() {
                actions = candidate;
                removed_any = true;
                // Re-test at the same index: the next chunk slid into place.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                return actions;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
        if actions.is_empty() {
            return actions;
        }
    }
}

/// Binary-searches the shortest schedule prefix for which `fails` holds,
/// assuming (as ddmin does) rough monotonicity: if no prefix — including the
/// full schedule — fails, returns `None`. The returned prefix is re-verified
/// by construction (the search only narrows onto probed-failing lengths).
pub fn bisect_prefix(
    schedule: &DeliverySchedule,
    mut fails: impl FnMut(&DeliverySchedule) -> bool,
) -> Option<DeliverySchedule> {
    if !fails(schedule) {
        return None;
    }
    // Invariant: a prefix of length `hi` fails; prefixes of length `lo - 1`
    // (and below the last probed failure) are not known to fail.
    let mut lo = 0usize;
    let mut hi = schedule.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(&schedule.truncated(mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(schedule.truncated(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::json::Json;

    /// Builds a schedule of `n` Deliver fates via the JSON door (the only
    /// public constructor).
    fn schedule_of(n: usize) -> DeliverySchedule {
        let fates: Vec<String> = (0..n)
            .map(|i| format!("{{\"Deliver\": {{\"delay_micros\": {i}}}}}"))
            .collect();
        let text = format!("{{\"fates\": [{}]}}", fates.join(", "));
        DeliverySchedule::from_json(&Json::parse(&text).unwrap()).unwrap()
    }

    #[test]
    fn bisect_finds_the_shortest_failing_prefix() {
        let schedule = schedule_of(100);
        let mut probes = 0;
        let prefix = bisect_prefix(&schedule, |p| {
            probes += 1;
            p.len() >= 37
        })
        .unwrap();
        assert_eq!(prefix.len(), 37);
        assert!(probes <= 9, "binary search, not a scan: {probes} probes");
    }

    #[test]
    fn bisect_handles_edge_cases() {
        let schedule = schedule_of(10);
        assert!(bisect_prefix(&schedule, |_| false).is_none(), "never fails");
        assert_eq!(
            bisect_prefix(&schedule, |_| true).unwrap().len(),
            0,
            "always fails shrinks to the empty schedule"
        );
        assert_eq!(
            bisect_prefix(&schedule, |p| p.len() >= 10).unwrap().len(),
            10,
            "only the full schedule fails"
        );
    }
}

#[cfg(all(test, feature = "testbug"))]
mod testbug_tests {
    use super::*;
    use crate::scenario::{PartitionSpec, RunMode, ScenarioSpec};
    use bft_sim_protocols::registry::ProtocolKind;

    #[test]
    fn shrink_minimises_a_seeded_violation() {
        // Start deliberately oversized: 16 nodes, a partition, and a busy
        // fuzzer, on top of the seeded bug that actually causes the
        // violation.
        let spec = ScenarioSpec {
            n: 16,
            intensity_permille: 300,
            max_actions: 24,
            partition: Some(PartitionSpec {
                start_ms: 500,
                end_ms: 3_000,
                drop: false,
            }),
            inject_bug: true,
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let failing = spec.run(RunMode::Generate).unwrap();
        assert!(failing.violates("agreement"), "{:?}", failing.violations);

        let repro = shrink(&spec, &failing);
        assert_eq!(repro.oracle, "agreement");
        assert_eq!(repro.spec.n, 4, "scale must shrink to the minimum");
        assert!(repro.spec.partition.is_none(), "partition must be dropped");
        assert!(
            repro.actions.is_empty(),
            "fuzz actions are irrelevant to the seeded bug: {:?}",
            repro.actions
        );
        assert!(
            repro.schedule.is_none(),
            "injected payloads cannot replay through a schedule"
        );
        assert!(repro.spec.inject_bug);

        // The shrunk repro still reproduces the exact oracle.
        let v = repro.check().unwrap();
        assert_eq!(v.oracle, "agreement");
    }
}
