//! Failing-case minimisation.
//!
//! Given a scenario whose run violated an oracle, [`shrink`] searches for a
//! smaller scenario that still violates the *same* oracle, probing with
//! scripted re-runs (every probe is a full deterministic simulation):
//!
//! 1. drop the decision target to 1 (shorter runs);
//! 2. drop the partition window;
//! 3. delta-debug the adversary action list (remove chunks, then singles);
//! 4. delta-debug the fault-catalog action list the same way;
//! 5. shrink `n` down through the generator's scales;
//! 6. when the residual failure is pure drop/delay (no injected payloads, no
//!    seeded bug, no fault kinds outside the recorded fate stream), record
//!    the final failing run's [`DeliverySchedule`] and bisect it to the
//!    shortest violating prefix — the repro then replays through the
//!    engine's validator path with no adversary at all.

use bft_sim_attacks::{FuzzAction, FuzzActionKind};
use bft_sim_core::buggify::{FaultAction, FaultKind, FaultPreset};
use bft_sim_core::validator::DeliverySchedule;

use crate::repro::Repro;
use crate::scenario::{CheckedRun, RunMode, ScenarioSpec};

/// The scales [`shrink`] tries, smallest first.
const SCALES_ASCENDING: [usize; 3] = [4, 7, 10];

/// Probes whether `spec` + `actions` + `faults` still violate `oracle`;
/// returns the run when it does.
fn still_fails(
    spec: &ScenarioSpec,
    actions: &[FuzzAction],
    faults: &[FaultAction],
    oracle: &str,
) -> Option<CheckedRun> {
    spec.run(RunMode::Scripted { actions, faults })
        .ok()
        .filter(|run| run.violates(oracle))
}

/// Minimises a failing scenario to a [`Repro`]. `failing` must be the
/// outcome of `spec.run(RunMode::Generate)`; the first violation's oracle is
/// what every probe must preserve.
pub fn shrink(spec: &ScenarioSpec, failing: &CheckedRun) -> Repro {
    let oracle = failing
        .violations
        .first()
        .expect("shrink needs a violating run")
        .oracle;
    let mut spec = spec.clone();
    let mut actions = failing.actions.clone();
    let mut faults = failing.fault_actions.clone();

    // Every probe replays the fault log as a *script*, so the generated
    // preset/seed pair is no longer what reproduces the faults — the
    // explicit action list is. Normalise the spec accordingly: the minted
    // repro carries `fault_actions`, not a generator preset.
    spec.fault_preset = FaultPreset::Calm;
    spec.fault_seed = 0;

    // The generated run and its scripted replay must agree before any
    // minimisation is meaningful; if they somehow don't, ship the original
    // scenario un-shrunk rather than a broken reproducer.
    if still_fails(&spec, &actions, &faults, oracle).is_none() {
        let v = &failing.violations[0];
        return Repro {
            spec,
            actions,
            fault_actions: faults,
            schedule: None,
            oracle: v.oracle.to_string(),
            detail: v.detail.clone(),
            last_events: Vec::new(),
        };
    }

    // 1. A single decision is enough for any safety violation on slot 0 and
    //    most others; vastly shortens every later probe.
    if spec.target_decisions > 1 {
        let candidate = ScenarioSpec {
            target_decisions: 1,
            ..spec.clone()
        };
        if still_fails(&candidate, &actions, &faults, oracle).is_some() {
            spec = candidate;
        }
    }

    // 2. Partitions rarely cause the violation they accompany.
    if spec.partition.is_some() {
        let candidate = ScenarioSpec {
            partition: None,
            ..spec.clone()
        };
        if still_fails(&candidate, &actions, &faults, oracle).is_some() {
            spec = candidate;
        }
    }

    // 2b. The net block likewise: first try dropping the whole block (back
    //     to the legacy delay-only network), then just its churn schedule —
    //     a repro without topology noise is far easier to read.
    if spec.net.is_some() {
        let candidate = ScenarioSpec {
            net: None,
            ..spec.clone()
        };
        if still_fails(&candidate, &actions, &faults, oracle).is_some() {
            spec = candidate;
        }
    }
    if let Some(net) = spec.net.filter(|net| net.churn.is_some()) {
        let candidate = ScenarioSpec {
            net: Some(crate::scenario::NetSpec { churn: None, ..net }),
            ..spec.clone()
        };
        if still_fails(&candidate, &actions, &faults, oracle).is_some() {
            spec = candidate;
        }
    }

    // 3. Delta-debug the adversary action list.
    actions = ddmin(actions, |candidate| {
        still_fails(&spec, candidate, &faults, oracle).is_some()
    });

    // 4. Delta-debug the fault-catalog action list the same way: faults that
    //    do not contribute to the violation are dropped, the rest kept
    //    verbatim so the repro stays replayable.
    faults = ddmin(faults, |candidate| {
        still_fails(&spec, &actions, candidate, oracle).is_some()
    });

    // 5. Fewer nodes, smallest first.
    for n in SCALES_ASCENDING {
        if n >= spec.n {
            break;
        }
        let candidate = ScenarioSpec { n, ..spec.clone() };
        if still_fails(&candidate, &actions, &faults, oracle).is_some() {
            spec = candidate;
            break;
        }
    }

    // 6. Re-run the minimised scenario once more for the final schedule and
    //    violation detail, then try to turn it into a pure schedule replay.
    let fin = still_fails(&spec, &actions, &faults, oracle)
        .expect("minimised scenario must still fail: every kept step was re-verified");
    let schedule = replay_eligible(&spec, &actions, &faults)
        .then(|| {
            bisect_prefix(&fin.schedule, |prefix| {
                spec.run(RunMode::Replay(prefix))
                    .map(|run| run.violates(oracle))
                    .unwrap_or(false)
            })
        })
        .flatten();
    let v = fin
        .violations
        .iter()
        .find(|v| v.oracle == oracle)
        .expect("still_fails guarantees the oracle fired");
    Repro {
        spec,
        actions,
        fault_actions: faults,
        schedule,
        oracle: v.oracle.to_string(),
        detail: v.detail.clone(),
        last_events: Vec::new(),
    }
}

/// Whether a recorded schedule can reproduce the failure on its own: replay
/// mode skips the adversary and the fault injector, so injected payloads
/// (replays, the seeded bug) are not captured and must stay scripted. Fault
/// actions are fine only when their effect lands in the recorded fate
/// stream — targeted drops and reorder delays do; timer skew, duplicate
/// deliveries and torn writes act outside it.
fn replay_eligible(spec: &ScenarioSpec, actions: &[FuzzAction], faults: &[FaultAction]) -> bool {
    !spec.inject_bug
        && !actions
            .iter()
            .any(|a| matches!(a.kind, FuzzActionKind::Replay { .. }))
        && faults.iter().all(|f| {
            matches!(
                f.kind,
                FaultKind::TargetedDrop { .. } | FaultKind::ReorderDelay { .. }
            )
        })
}

/// One pass of ddmin-style chunk removal: repeatedly try deleting chunks of
/// halving size, keeping any deletion that preserves the violation (as
/// reported by `keeps_failing` on the candidate list).
fn ddmin<T: Clone>(mut items: Vec<T>, mut keeps_failing: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut chunk = items.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < items.len() {
            let end = (i + chunk).min(items.len());
            let mut candidate = items.clone();
            candidate.drain(i..end);
            if keeps_failing(&candidate) {
                items = candidate;
                removed_any = true;
                // Re-test at the same index: the next chunk slid into place.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                return items;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
        if items.is_empty() {
            return items;
        }
    }
}

/// Binary-searches the shortest schedule prefix for which `fails` holds,
/// assuming (as ddmin does) rough monotonicity: if no prefix — including the
/// full schedule — fails, returns `None`. The returned prefix is re-verified
/// by construction (the search only narrows onto probed-failing lengths).
pub fn bisect_prefix(
    schedule: &DeliverySchedule,
    mut fails: impl FnMut(&DeliverySchedule) -> bool,
) -> Option<DeliverySchedule> {
    if !fails(schedule) {
        return None;
    }
    // Invariant: a prefix of length `hi` fails; prefixes of length `lo - 1`
    // (and below the last probed failure) are not known to fail.
    let mut lo = 0usize;
    let mut hi = schedule.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(&schedule.truncated(mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(schedule.truncated(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::json::Json;

    /// Builds a schedule of `n` Deliver fates via the JSON door (the only
    /// public constructor).
    fn schedule_of(n: usize) -> DeliverySchedule {
        let fates: Vec<String> = (0..n)
            .map(|i| format!("{{\"Deliver\": {{\"delay_micros\": {i}}}}}"))
            .collect();
        let text = format!("{{\"fates\": [{}]}}", fates.join(", "));
        DeliverySchedule::from_json(&Json::parse(&text).unwrap()).unwrap()
    }

    #[test]
    fn bisect_finds_the_shortest_failing_prefix() {
        let schedule = schedule_of(100);
        let mut probes = 0;
        let prefix = bisect_prefix(&schedule, |p| {
            probes += 1;
            p.len() >= 37
        })
        .unwrap();
        assert_eq!(prefix.len(), 37);
        assert!(probes <= 9, "binary search, not a scan: {probes} probes");
    }

    #[test]
    fn bisect_handles_edge_cases() {
        let schedule = schedule_of(10);
        assert!(bisect_prefix(&schedule, |_| false).is_none(), "never fails");
        assert_eq!(
            bisect_prefix(&schedule, |_| true).unwrap().len(),
            0,
            "always fails shrinks to the empty schedule"
        );
        assert_eq!(
            bisect_prefix(&schedule, |p| p.len() >= 10).unwrap().len(),
            10,
            "only the full schedule fails"
        );
    }
}

#[cfg(all(test, feature = "testbug"))]
mod testbug_tests {
    use super::*;
    use crate::scenario::{PartitionSpec, RunMode, ScenarioSpec};
    use bft_sim_core::scheduler::SchedulerKind;
    use bft_sim_protocols::registry::ProtocolKind;

    #[test]
    fn shrink_preserves_fault_actions_the_violation_depends_on() {
        // A *late* forged certificate (600 ms, long after the honest ~300 ms
        // decision) is harmless on its own: PBFT's slot guard discards
        // commits for an already-decided slot. It becomes a violation only
        // when targeted fault-catalog drops stall the victim past the forge
        // — so the shrinker must keep (a minimised subset of) those drops.
        let spec = ScenarioSpec {
            inject_bug: true,
            bug_delay_micros: 600_000,
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let victim = crate::testbug::QuorumForgeAdversary::victim(spec.n);

        // Without faults the late forge must be inert.
        let clean = spec.run(RunMode::scripted(&[])).unwrap();
        assert!(
            !clean.violates("agreement"),
            "late forge fired without faults: {:?}",
            clean.violations
        );

        // Blanket-drop every victim-bound wire transmission early in the
        // run; only the ones that actually hit the victim are applied (and
        // logged), which is the fault script the shrinker starts from.
        let blanket: Vec<FaultAction> = (0..2_000)
            .map(|index| FaultAction {
                index,
                kind: FaultKind::TargetedDrop { dst: victim },
            })
            .collect();
        let failing = spec
            .run(RunMode::Scripted {
                actions: &[],
                faults: &blanket,
            })
            .unwrap();
        assert!(
            failing.violates("agreement"),
            "stalled victim must decide the forged digest: {:?}",
            failing.violations
        );
        assert!(!failing.fault_actions.is_empty());

        let repro = shrink(&spec, &failing);
        assert_eq!(repro.oracle, "agreement");
        assert!(
            !repro.fault_actions.is_empty(),
            "the violation depends on the drops; ddmin must not discard them all"
        );
        assert!(
            repro.fault_actions.len() < failing.fault_actions.len(),
            "ddmin must remove at least the post-forge drops: kept {:?}",
            repro.fault_actions
        );
        assert!(repro
            .fault_actions
            .iter()
            .all(|f| matches!(f.kind, FaultKind::TargetedDrop { dst } if dst == victim)));
        assert!(
            repro.schedule.is_none(),
            "injected payloads cannot replay through a schedule"
        );

        // The minimised repro reproduces under both scheduler backends.
        let v = repro.check().unwrap();
        assert_eq!(v.oracle, "agreement");
        for scheduler in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let run = repro
                .spec
                .run_with(
                    RunMode::Scripted {
                        actions: &repro.actions,
                        faults: &repro.fault_actions,
                    },
                    scheduler,
                )
                .unwrap();
            assert!(run.violates("agreement"), "{scheduler:?}");
        }

        // And it survives the disk round trip with its fault script intact.
        let text = repro.to_json().dump_pretty();
        assert!(text.contains("fault_actions"), "{text}");
        let back = Repro::from_json(&bft_sim_core::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, repro);
    }

    #[test]
    fn shrink_minimises_a_seeded_violation() {
        // Start deliberately oversized: 16 nodes, a partition, and a busy
        // fuzzer, on top of the seeded bug that actually causes the
        // violation.
        let spec = ScenarioSpec {
            n: 16,
            intensity_permille: 300,
            max_actions: 24,
            partition: Some(PartitionSpec {
                start_ms: 500,
                end_ms: 3_000,
                drop: false,
            }),
            inject_bug: true,
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let failing = spec.run(RunMode::Generate).unwrap();
        assert!(failing.violates("agreement"), "{:?}", failing.violations);

        let repro = shrink(&spec, &failing);
        assert_eq!(repro.oracle, "agreement");
        assert_eq!(repro.spec.n, 4, "scale must shrink to the minimum");
        assert!(repro.spec.partition.is_none(), "partition must be dropped");
        assert!(
            repro.actions.is_empty(),
            "fuzz actions are irrelevant to the seeded bug: {:?}",
            repro.actions
        );
        assert!(
            repro.schedule.is_none(),
            "injected payloads cannot replay through a schedule"
        );
        assert!(repro.spec.inject_bug);

        // The shrunk repro still reproduces the exact oracle.
        let v = repro.check().unwrap();
        assert_eq!(v.oracle, "agreement");
    }
}
