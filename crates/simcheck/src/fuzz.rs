//! The fuzzing driver: sweep scenario seeds, check every run against the
//! oracle suite, shrink every violation to a [`Repro`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use bft_sim_core::buggify::FaultPreset;
use bft_sim_core::json::Json;
use bft_sim_core::obs::{Histogram, Observability, DEFAULT_LAST_K};
use bft_sim_core::scheduler::SchedulerKind;
use bft_sim_core::sweep::{panic_message, sweep};
use bft_sim_core::trace::TraceEvent;
use bft_sim_protocols::registry::ProtocolKind;

use crate::repro::Repro;
use crate::scenario::{NetSpec, RunMode, ScenarioSpec};
use crate::shrink::shrink;

/// Knobs for a fuzzing sweep.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// The protocols scenarios may draw from.
    pub protocols: Vec<ProtocolKind>,
    /// Adversary intensity in permille (0 = all-benign sweep).
    pub intensity_permille: u64,
    /// Per-run cap on adversary actions.
    pub max_actions: u64,
    /// Arms the feature-gated seeded safety bug in every scenario.
    pub inject_bug: bool,
    /// Worker threads for the sweep; `0` means available parallelism. The
    /// report is byte-identical for every value (results are reassembled in
    /// seed order).
    pub threads: usize,
    /// Event-scheduler backend for every run of the sweep. The scheduler
    /// determinism contract makes the report byte-identical under every
    /// backend too; only throughput differs.
    pub scheduler: SchedulerKind,
    /// Instrument every run (see [`bft_sim_core::obs`]). Everything recorded
    /// derives from simulated quantities, so switching this on changes
    /// *nothing* outside the report's `observability` block and the
    /// last-event dumps attached to failures: runs, schedules, violations
    /// and repros stay bit-identical. A run that panics with observability
    /// on additionally salvages its event ring into
    /// [`FuzzFailure::last_events`].
    pub observability: bool,
    /// Forces every generated scenario to this node count instead of the
    /// generator's small-biased scales — the large-n smoke knob (`--n`).
    /// Everything else about the scenario (delays, partition, adversary
    /// budget) still derives from the seed as usual.
    pub n_override: Option<usize>,
    /// Forces every scenario's link-level network block (topology, bandwidth,
    /// churn) to this spec, overriding whatever the generator drew — the
    /// `--net-preset` knob. `None` leaves the generator's draw (usually no
    /// net block) in place. Applied after generation and after corpus
    /// mutation, so a preset pins the whole search onto one network shape.
    pub net_override: Option<NetSpec>,
    /// Fault-catalog preset for generated scenarios ([`FaultPreset::Calm`]
    /// disables injection entirely). Non-calm presets arm the buggify
    /// injector with a per-scenario fault seed drawn from the scenario seed,
    /// so the sweep stays deterministic.
    pub fault_preset: FaultPreset,
    /// Coverage-search benchmark knob (needs the `testbug` feature): instead
    /// of arming the seeded bug everywhere (`inject_bug`), arm it only in
    /// scenarios whose drawn knobs hit a narrow conjunction window — see
    /// [`fuzz_coverage`](crate::corpus::fuzz_coverage). Measures how fast a
    /// search strategy *discovers* a rare bug rather than whether it can
    /// shrink an omnipresent one. Ignored by [`fuzz_many`].
    pub latent_bug: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            protocols: ProtocolKind::extended().to_vec(),
            intensity_permille: 500,
            max_actions: 48,
            inject_bug: false,
            threads: 0,
            scheduler: SchedulerKind::default(),
            observability: false,
            n_override: None,
            net_override: None,
            fault_preset: FaultPreset::Calm,
            latent_bug: false,
        }
    }
}

/// One violating scenario, with its shrunk reproducer.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// The scenario seed that produced the violation.
    pub scenario_seed: u64,
    /// The original (un-shrunk) scenario.
    pub spec: ScenarioSpec,
    /// Human-readable `[oracle] detail` lines, as found on the original run.
    pub violations: Vec<String>,
    /// The minimised reproducer.
    pub repro: Repro,
}

/// One scenario that panicked mid-run (a poisoned scenario), isolated by the
/// sweep engine instead of aborting the whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// The scenario seed whose run panicked.
    pub scenario_seed: u64,
    /// The panic message.
    pub message: String,
    /// The last trace events before the panic, salvaged from the
    /// observability ring. Empty unless [`FuzzOptions::observability`] was
    /// on for the sweep.
    pub last_events: Vec<TraceEvent>,
}

/// Observability aggregated across every completed run of a sweep: merged
/// histograms, per-phase message totals, and the total number of view
/// entries. Like everything else in the report, byte-identical at any
/// thread count and under every scheduler backend.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzObservability {
    /// Wire-message delivery latencies, merged across all nodes and runs.
    pub delivery_latency: Histogram,
    /// Per-node decision intervals, merged across all nodes and runs.
    pub decision_interval: Histogram,
    /// Total wire messages per protocol phase, across the sweep.
    pub phase_totals: BTreeMap<String, u64>,
    /// Total `EnterView` reports across the sweep.
    pub view_entries: u64,
}

impl FuzzObservability {
    /// Folds one run's snapshot into the sweep-wide aggregate.
    pub(crate) fn absorb(&mut self, obs: &Observability) {
        for h in &obs.delivery_latency {
            self.delivery_latency.merge(h);
        }
        for h in &obs.decision_interval {
            self.decision_interval.merge(h);
        }
        for flow in &obs.flows {
            *self.phase_totals.entry(flow.phase.clone()).or_insert(0) += flow.total();
        }
        self.view_entries += obs.views.iter().map(|v| v.entries).sum::<u64>();
    }

    /// The aggregate as a JSON object (the report's `observability` block).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("delivery_latency", self.delivery_latency.to_json()),
            ("decision_interval", self.decision_interval.to_json()),
            (
                "phase_totals",
                Json::Obj(
                    self.phase_totals
                        .iter()
                        .map(|(phase, total)| (phase.clone(), Json::from(*total)))
                        .collect(),
                ),
            ),
            ("view_entries", Json::from(self.view_entries)),
        ])
    }
}

/// The result of a fuzzing sweep.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Scenarios that ran to completion.
    pub runs: u64,
    /// Total engine events dispatched across the sweep (the throughput
    /// numerator).
    pub events_processed: u64,
    /// Total timers cancelled while pending across the sweep. Counted at
    /// cancel time in the engine, so the total is identical under every
    /// scheduler backend.
    pub skipped_cancelled_timers: u64,
    /// Total events popped but skipped because the destination node was
    /// crashed or corrupted, across the sweep.
    pub skipped_excluded_nodes: u64,
    /// Every violating scenario, in seed order.
    pub outcomes: Vec<FuzzOutcome>,
    /// Number of panicked scenarios. Always equals `failures.len()` for
    /// reports built by [`fuzz_many`]; kept as an explicit counter so
    /// aggregation layers (bench baselines, campaign checkpoints) can carry
    /// the tally without carrying the failures themselves.
    pub panicked: u64,
    /// Every panicked scenario, in seed order.
    pub failures: Vec<FuzzFailure>,
    /// Sweep-wide observability aggregate; `Some` exactly when
    /// [`FuzzOptions::observability`] was on.
    pub observability: Option<FuzzObservability>,
    /// Coverage accounting; `Some` exactly when the report came from
    /// [`fuzz_coverage`](crate::corpus::fuzz_coverage). Blind seed sweeps
    /// ([`fuzz_many`]) leave it `None`.
    pub coverage: Option<crate::corpus::CoverageStats>,
}

impl FuzzReport {
    /// Whether the sweep found no violations and no panicked runs.
    pub fn clean(&self) -> bool {
        self.outcomes.is_empty() && self.failures.is_empty()
    }
}

/// What one seed's job produces; reassembled in seed order by the sweep.
enum SeedResult {
    /// The run completed (cleanly or with violations).
    Ran {
        events_processed: u64,
        skipped_cancelled_timers: u64,
        skipped_excluded_nodes: u64,
        // Both boxed: `FuzzOutcome` and `Observability` are large and
        // the variant is short-lived.
        outcome: Option<Box<FuzzOutcome>>,
        observability: Option<Box<Observability>>,
    },
    /// The run panicked with observability on; the job caught the panic
    /// itself so it could salvage the event ring.
    Panicked {
        message: String,
        last_events: Vec<TraceEvent>,
    },
}

/// Runs one scenario per seed, oracle-checks it, and shrinks every failure.
/// Seeds are sharded across `opts.threads` workers (0 = available
/// parallelism) and the report is reassembled in seed order, so it is fully
/// deterministic: the same seeds and options always produce the same report,
/// byte for byte, at any thread count. A panicking run is isolated
/// (`catch_unwind` inside the sweep engine) and reported as a
/// [`FuzzFailure`] instead of aborting the sweep.
///
/// # Errors
///
/// Returns a message when a scenario cannot be built — which, for generated
/// scenarios, only happens when `inject_bug` is set without the `testbug`
/// feature compiled in.
pub fn fuzz_many(
    seeds: impl IntoIterator<Item = u64>,
    opts: &FuzzOptions,
) -> Result<FuzzReport, String> {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let per_seed = sweep(
        seeds.len(),
        opts.threads,
        |i| -> Result<SeedResult, String> {
            let seed = seeds[i];
            let mut spec = ScenarioSpec::generate(
                seed,
                &opts.protocols,
                opts.intensity_permille,
                opts.max_actions,
                opts.inject_bug,
                opts.fault_preset,
            );
            if let Some(n) = opts.n_override {
                spec.n = n;
            }
            if opts.net_override.is_some() {
                spec.net = opts.net_override;
            }
            let run = if opts.observability {
                // Catch the panic here (inside the sweep's own isolation)
                // so the pre-cloned ring handle can salvage the last events
                // of the crashing run.
                let cfg = spec.obs_config(DEFAULT_LAST_K);
                let ring = cfg.ring();
                match catch_unwind(AssertUnwindSafe(|| {
                    spec.run_observed(RunMode::Generate, opts.scheduler, Some(cfg))
                })) {
                    Ok(run) => run.map_err(|e| format!("seed {seed}: {e}"))?,
                    Err(payload) => {
                        return Ok(SeedResult::Panicked {
                            message: panic_message(payload.as_ref()),
                            last_events: ring.snapshot(),
                        })
                    }
                }
            } else {
                spec.run_with(RunMode::Generate, opts.scheduler)
                    .map_err(|e| format!("seed {seed}: {e}"))?
            };
            let observability = run.result.observability.clone().map(Box::new);
            let outcome = if run.violations.is_empty() {
                None
            } else {
                let mut repro = shrink(&spec, &run);
                if let Some(obs) = &observability {
                    repro.last_events = obs.recent_events.clone();
                }
                Some(Box::new(FuzzOutcome {
                    scenario_seed: seed,
                    spec,
                    violations: run.violations.iter().map(|v| v.to_string()).collect(),
                    repro,
                }))
            };
            Ok(SeedResult::Ran {
                events_processed: run.result.events_processed,
                skipped_cancelled_timers: run.result.skipped_cancelled_timers,
                skipped_excluded_nodes: run.result.skipped_excluded_nodes,
                outcome,
                observability,
            })
        },
    );

    let mut report = FuzzReport {
        observability: opts.observability.then(FuzzObservability::default),
        ..FuzzReport::default()
    };
    for (i, slot) in per_seed.into_iter().enumerate() {
        match slot {
            Ok(Ok(SeedResult::Ran {
                events_processed,
                skipped_cancelled_timers,
                skipped_excluded_nodes,
                outcome,
                observability,
            })) => {
                report.runs += 1;
                report.events_processed += events_processed;
                report.skipped_cancelled_timers += skipped_cancelled_timers;
                report.skipped_excluded_nodes += skipped_excluded_nodes;
                if let Some(outcome) = outcome {
                    report.outcomes.push(*outcome);
                }
                if let (Some(total), Some(obs)) = (&mut report.observability, &observability) {
                    total.absorb(obs);
                }
            }
            Ok(Ok(SeedResult::Panicked {
                message,
                last_events,
            })) => {
                report.panicked += 1;
                report.failures.push(FuzzFailure {
                    scenario_seed: seeds[i],
                    message,
                    last_events,
                });
            }
            Ok(Err(build_error)) => return Err(build_error),
            Err(panic) => {
                report.panicked += 1;
                report.failures.push(FuzzFailure {
                    scenario_seed: seeds[i],
                    message: panic.message,
                    last_events: Vec::new(),
                });
            }
        }
    }
    Ok(report)
}

/// The outcome of one campaign work unit: a single scenario executed with
/// observability on, oracle-checked, panic-isolated and — on violation —
/// shrunk to a [`Repro`]. This is the per-unit execution path behind
/// `bft-sim campaign`; everything in it derives from simulated quantities,
/// so a unit's outcome is byte-identical under every scheduler backend.
#[derive(Debug)]
pub struct UnitRun {
    /// Engine events dispatched (0 when the run panicked).
    pub events_processed: u64,
    /// Consensus slots completed by every live honest node.
    pub decisions: u64,
    /// Time to the first completed decision, in microseconds.
    pub latency_micros: Option<u64>,
    /// Honest wire messages sent.
    pub honest_messages: u64,
    /// Human-readable `[oracle] detail` lines; empty for a clean run.
    pub violations: Vec<String>,
    /// The minimised reproducer, when the run violated an oracle.
    pub repro: Option<Repro>,
    /// The run's observability snapshot (`None` when the run panicked).
    pub observability: Option<Box<Observability>>,
    /// The panic message, when the run panicked instead of completing.
    pub panic: Option<String>,
}

/// Executes one campaign work unit: runs `spec` in [`RunMode::Generate`]
/// with observability on, checks the oracle suite, catches panics (a
/// panicked unit is an *outcome*, not an abort) and shrinks any violation.
///
/// # Errors
///
/// Returns a message only when the scenario cannot be *built* — a malformed
/// spec is a campaign-level configuration error, not a unit outcome.
pub fn run_unit(spec: &ScenarioSpec, scheduler: SchedulerKind) -> Result<UnitRun, String> {
    let cfg = spec.obs_config(DEFAULT_LAST_K);
    let run = match catch_unwind(AssertUnwindSafe(|| {
        spec.run_observed(RunMode::Generate, scheduler, Some(cfg))
    })) {
        Ok(run) => run?,
        Err(payload) => {
            return Ok(UnitRun {
                events_processed: 0,
                decisions: 0,
                latency_micros: None,
                honest_messages: 0,
                violations: Vec::new(),
                repro: None,
                observability: None,
                panic: Some(panic_message(payload.as_ref())),
            })
        }
    };
    let observability = run.result.observability.clone().map(Box::new);
    let (violations, repro) = if run.violations.is_empty() {
        (Vec::new(), None)
    } else {
        let mut repro = shrink(spec, &run);
        if let Some(obs) = &observability {
            repro.last_events = obs.recent_events.clone();
        }
        (
            run.violations.iter().map(|v| v.to_string()).collect(),
            Some(repro),
        )
    };
    Ok(UnitRun {
        events_processed: run.result.events_processed,
        decisions: run.result.decisions_completed(),
        latency_micros: run.result.latency().map(|d| d.as_micros()),
        honest_messages: run.result.honest_messages,
        violations,
        repro,
        observability,
        panic: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_unit_reports_metrics_and_stays_deterministic() {
        let spec = ScenarioSpec::baseline(ProtocolKind::Pbft);
        let a = run_unit(&spec, SchedulerKind::Heap).unwrap();
        assert!(a.panic.is_none());
        assert!(a.violations.is_empty());
        assert!(a.repro.is_none());
        assert!(a.events_processed > 0);
        assert_eq!(a.decisions, spec.target_decisions);
        assert!(a.latency_micros.is_some());
        assert!(a.observability.is_some());
        let b = run_unit(&spec, SchedulerKind::Wheel).unwrap();
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.latency_micros, b.latency_micros);
        assert_eq!(a.honest_messages, b.honest_messages);
    }

    #[test]
    fn honest_protocols_survive_a_sweep() {
        let opts = FuzzOptions {
            protocols: vec![ProtocolKind::Pbft, ProtocolKind::HotStuffNs],
            ..FuzzOptions::default()
        };
        let report = fuzz_many(0..6, &opts).unwrap();
        assert_eq!(report.runs, 6);
        assert!(report.events_processed > 0);
        assert!(
            report.clean(),
            "honest protocols must survive fuzzing: {:?}",
            report
                .outcomes
                .iter()
                .map(|o| (o.scenario_seed, &o.violations))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn net_override_pins_every_scenario_to_one_network_shape() {
        use crate::scenario::{ChurnSpec, TopologyKind};
        let net = NetSpec {
            topology: TopologyKind::RingGradient,
            bandwidth: Some(200_000),
            topology_seed: 0xBEEF,
            churn: Some(ChurnSpec {
                seed: 5,
                crashes: 2,
                min_down_ms: 500,
                max_down_ms: 4_000,
            }),
        };
        let opts = FuzzOptions {
            protocols: vec![ProtocolKind::Pbft, ProtocolKind::HotStuffNs],
            net_override: Some(net),
            ..FuzzOptions::default()
        };
        let report = fuzz_many(0..6, &opts).unwrap();
        assert_eq!(report.runs, 6);
        // A net block suspends the termination debt, and drops/queueing
        // never threaten safety — so honest protocols must stay clean even
        // on a contended, churning ring.
        assert!(
            report.clean(),
            "net-pinned fuzzing found: {:?} / {:?}",
            report
                .outcomes
                .iter()
                .map(|o| (o.scenario_seed, &o.violations))
                .collect::<Vec<_>>(),
            report.failures
        );
        // And the pin is real: re-generating any swept seed with the same
        // options yields a spec carrying exactly the override.
        let mut spec = ScenarioSpec::generate(
            3,
            &opts.protocols,
            opts.intensity_permille,
            opts.max_actions,
            opts.inject_bug,
            opts.fault_preset,
        );
        spec.net = opts.net_override;
        assert_eq!(spec.net, Some(net));
    }

    #[test]
    fn sweeps_are_deterministic() {
        let opts = FuzzOptions {
            protocols: vec![ProtocolKind::Pbft],
            ..FuzzOptions::default()
        };
        let a = fuzz_many(0..4, &opts).unwrap();
        let b = fuzz_many(0..4, &opts).unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.skipped_cancelled_timers, b.skipped_cancelled_timers);
        assert_eq!(a.skipped_excluded_nodes, b.skipped_excluded_nodes);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        assert!(a.failures.is_empty() && b.failures.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let serial = FuzzOptions {
            protocols: vec![ProtocolKind::Pbft, ProtocolKind::Tendermint],
            threads: 1,
            ..FuzzOptions::default()
        };
        let parallel = FuzzOptions {
            threads: 4,
            ..serial.clone()
        };
        let a = fuzz_many(0..8, &serial).unwrap();
        let b = fuzz_many(0..8, &parallel).unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.skipped_cancelled_timers, b.skipped_cancelled_timers);
        assert_eq!(a.skipped_excluded_nodes, b.skipped_excluded_nodes);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.scenario_seed, y.scenario_seed);
            assert_eq!(x.violations, y.violations);
            assert_eq!(
                x.repro.to_json().dump_pretty(),
                y.repro.to_json().dump_pretty()
            );
        }
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn observability_changes_nothing_but_the_observability_block() {
        let plain = FuzzOptions {
            protocols: vec![ProtocolKind::Pbft, ProtocolKind::HotStuffNs],
            ..FuzzOptions::default()
        };
        let observed = FuzzOptions {
            observability: true,
            ..plain.clone()
        };
        let a = fuzz_many(0..6, &plain).unwrap();
        let b = fuzz_many(0..6, &observed).unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.skipped_cancelled_timers, b.skipped_cancelled_timers);
        assert_eq!(a.skipped_excluded_nodes, b.skipped_excluded_nodes);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        assert_eq!(a.failures, b.failures);
        assert!(a.observability.is_none());

        let obs = b.observability.expect("requested observability");
        assert!(obs.delivery_latency.count() > 0, "no deliveries recorded");
        assert!(obs.decision_interval.count() > 0, "no decisions recorded");
        assert!(!obs.phase_totals.contains_key("unclassified"));
        assert!(
            obs.phase_totals.values().sum::<u64>() >= obs.delivery_latency.count(),
            "flow matrix must cover at least every delivered wire message"
        );
        // The aggregate block is itself deterministic.
        let c = fuzz_many(0..6, &observed).unwrap();
        assert_eq!(
            obs.to_json().dump_pretty(),
            c.observability.unwrap().to_json().dump_pretty()
        );
    }

    #[test]
    fn scheduler_backend_does_not_change_the_report() {
        let heap = FuzzOptions {
            protocols: vec![ProtocolKind::Pbft, ProtocolKind::Tendermint],
            scheduler: SchedulerKind::Heap,
            ..FuzzOptions::default()
        };
        let wheel = FuzzOptions {
            scheduler: SchedulerKind::Wheel,
            ..heap.clone()
        };
        let a = fuzz_many(0..8, &heap).unwrap();
        let b = fuzz_many(0..8, &wheel).unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.skipped_cancelled_timers, b.skipped_cancelled_timers);
        assert_eq!(a.skipped_excluded_nodes, b.skipped_excluded_nodes);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.scenario_seed, y.scenario_seed);
            assert_eq!(x.violations, y.violations);
            assert_eq!(
                x.repro.to_json().dump_pretty(),
                y.repro.to_json().dump_pretty()
            );
        }
        assert_eq!(a.failures, b.failures);
    }
}

#[cfg(all(test, feature = "testbug"))]
mod testbug_tests {
    use super::*;

    #[test]
    fn seeded_bug_is_caught_shrunk_and_replayable() {
        let opts = FuzzOptions {
            inject_bug: true,
            ..FuzzOptions::default()
        };
        let report = fuzz_many(0..3, &opts).unwrap();
        assert_eq!(report.runs, 3);
        assert_eq!(
            report.outcomes.len(),
            3,
            "every seeded-bug scenario must violate agreement"
        );
        for outcome in &report.outcomes {
            assert_eq!(outcome.repro.oracle, "agreement");
            assert!(
                outcome.violations.iter().any(|v| v.contains("[agreement]")),
                "{:?}",
                outcome.violations
            );
            let v = outcome.repro.check().expect("shrunk repro must replay");
            assert_eq!(v.oracle, "agreement");
        }
        // Determinism end to end: re-fuzzing yields byte-identical repros.
        let again = fuzz_many(0..3, &opts).unwrap();
        for (a, b) in report.outcomes.iter().zip(&again.outcomes) {
            assert_eq!(
                a.repro.to_json().dump_pretty(),
                b.repro.to_json().dump_pretty()
            );
        }
    }

    #[test]
    fn observability_embeds_the_event_dump_in_the_repro() {
        let opts = FuzzOptions {
            inject_bug: true,
            observability: true,
            ..FuzzOptions::default()
        };
        let report = fuzz_many(0..1, &opts).unwrap();
        assert_eq!(report.outcomes.len(), 1, "the seeded bug must fire");
        let repro = &report.outcomes[0].repro;
        assert!(
            !repro.last_events.is_empty(),
            "a failing observed run must carry its last events"
        );
        let text = repro.to_json().dump_pretty();
        assert!(text.contains("\"last_events\""), "{text}");
        let back = Repro::from_json(&bft_sim_core::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, repro);
        // The dump is diagnostic context only: the repro still replays.
        back.check()
            .expect("repro with event dump must still replay");
    }
}
