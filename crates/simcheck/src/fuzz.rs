//! The fuzzing driver: sweep scenario seeds, check every run against the
//! oracle suite, shrink every violation to a [`Repro`].

use bft_sim_protocols::registry::ProtocolKind;

use crate::repro::Repro;
use crate::scenario::{RunMode, ScenarioSpec};
use crate::shrink::shrink;

/// Knobs for a fuzzing sweep.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// The protocols scenarios may draw from.
    pub protocols: Vec<ProtocolKind>,
    /// Adversary intensity in permille (0 = all-benign sweep).
    pub intensity_permille: u64,
    /// Per-run cap on adversary actions.
    pub max_actions: u64,
    /// Arms the feature-gated seeded safety bug in every scenario.
    pub inject_bug: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            protocols: ProtocolKind::extended().to_vec(),
            intensity_permille: 500,
            max_actions: 48,
            inject_bug: false,
        }
    }
}

/// One violating scenario, with its shrunk reproducer.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// The scenario seed that produced the violation.
    pub scenario_seed: u64,
    /// The original (un-shrunk) scenario.
    pub spec: ScenarioSpec,
    /// Human-readable `[oracle] detail` lines, as found on the original run.
    pub violations: Vec<String>,
    /// The minimised reproducer.
    pub repro: Repro,
}

/// The result of a fuzzing sweep.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Scenarios run.
    pub runs: u64,
    /// Total engine events across the sweep (the throughput numerator).
    pub events_processed: u64,
    /// Every violating scenario, in seed order.
    pub outcomes: Vec<FuzzOutcome>,
}

impl FuzzReport {
    /// Whether the sweep found no violations.
    pub fn clean(&self) -> bool {
        self.outcomes.is_empty()
    }
}

/// Runs one scenario per seed, oracle-checks it, and shrinks every failure.
/// Fully deterministic: the same seeds and options always produce the same
/// report, byte for byte.
///
/// # Errors
///
/// Returns a message when a scenario cannot be built — which, for generated
/// scenarios, only happens when `inject_bug` is set without the `testbug`
/// feature compiled in.
pub fn fuzz_many(
    seeds: impl IntoIterator<Item = u64>,
    opts: &FuzzOptions,
) -> Result<FuzzReport, String> {
    let mut report = FuzzReport::default();
    for seed in seeds {
        let spec = ScenarioSpec::generate(
            seed,
            &opts.protocols,
            opts.intensity_permille,
            opts.max_actions,
            opts.inject_bug,
        );
        let run = spec
            .run(RunMode::Generate)
            .map_err(|e| format!("seed {seed}: {e}"))?;
        report.runs += 1;
        report.events_processed += run.result.events_processed;
        if !run.violations.is_empty() {
            let repro = shrink(&spec, &run);
            report.outcomes.push(FuzzOutcome {
                scenario_seed: seed,
                spec,
                violations: run.violations.iter().map(|v| v.to_string()).collect(),
                repro,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_protocols_survive_a_sweep() {
        let opts = FuzzOptions {
            protocols: vec![ProtocolKind::Pbft, ProtocolKind::HotStuffNs],
            ..FuzzOptions::default()
        };
        let report = fuzz_many(0..6, &opts).unwrap();
        assert_eq!(report.runs, 6);
        assert!(report.events_processed > 0);
        assert!(
            report.clean(),
            "honest protocols must survive fuzzing: {:?}",
            report
                .outcomes
                .iter()
                .map(|o| (o.scenario_seed, &o.violations))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sweeps_are_deterministic() {
        let opts = FuzzOptions {
            protocols: vec![ProtocolKind::Pbft],
            ..FuzzOptions::default()
        };
        let a = fuzz_many(0..4, &opts).unwrap();
        let b = fuzz_many(0..4, &opts).unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
    }
}

#[cfg(all(test, feature = "testbug"))]
mod testbug_tests {
    use super::*;

    #[test]
    fn seeded_bug_is_caught_shrunk_and_replayable() {
        let opts = FuzzOptions {
            inject_bug: true,
            ..FuzzOptions::default()
        };
        let report = fuzz_many(0..3, &opts).unwrap();
        assert_eq!(report.runs, 3);
        assert_eq!(
            report.outcomes.len(),
            3,
            "every seeded-bug scenario must violate agreement"
        );
        for outcome in &report.outcomes {
            assert_eq!(outcome.repro.oracle, "agreement");
            assert!(
                outcome.violations.iter().any(|v| v.contains("[agreement]")),
                "{:?}",
                outcome.violations
            );
            let v = outcome.repro.check().expect("shrunk repro must replay");
            assert_eq!(v.oracle, "agreement");
        }
        // Determinism end to end: re-fuzzing yields byte-identical repros.
        let again = fuzz_many(0..3, &opts).unwrap();
        for (a, b) in report.outcomes.iter().zip(&again.outcomes) {
            assert_eq!(
                a.repro.to_json().dump_pretty(),
                b.repro.to_json().dump_pretty()
            );
        }
    }
}
