//! # bft-sim-simcheck
//!
//! A deterministic schedule-exploration fuzzer for the BFT simulator, with
//! first-class correctness oracles and failing-case shrinking:
//!
//! - [`scenario`] — seeded scenario generation ([`ScenarioSpec::generate`])
//!   and oracle-checked execution ([`ScenarioSpec::run`]) in generate /
//!   scripted / schedule-replay modes;
//! - [`fuzz`] — the sweep driver ([`fuzz_many`]): one scenario per seed,
//!   every violation shrunk to a reproducer;
//! - [`corpus`] — coverage-guided search ([`fuzz_coverage`]): behavior
//!   fingerprints ([`run_fingerprint`]) feed a seen-set and a corpus of
//!   novelty-producing scenarios, which the loop mutates in preference to
//!   fresh draws;
//! - [`shrink`] — minimisation: decision target, partition, ddmin over the
//!   adversary action list, node count, then delivery-schedule bisection;
//! - [`repro`] — the `bft-sim-repro-v1` JSON format written by
//!   `bft-sim fuzz` and replayed by `bft-sim repro`;
//! - [`testbug`] (feature `testbug`) — an intentionally buggy adversary that
//!   forges a PBFT commit quorum, proving the oracles catch real safety
//!   violations.
//!
//! Everything is deterministic by construction: a scenario seed pins the
//! spec, the spec pins the run, and the run pins the violations and the
//! shrunk repro — the property the whole subsystem exists to exploit.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod fuzz;
pub mod repro;
pub mod scenario;
pub mod shrink;
#[cfg(feature = "testbug")]
pub mod testbug;

pub use corpus::{
    fuzz_coverage, fuzz_coverage_in_dir, load_corpus, run_fingerprint, save_corpus, CoverageStats,
    CORPUS_FILE,
};
pub use fuzz::{
    fuzz_many, run_unit, FuzzFailure, FuzzObservability, FuzzOptions, FuzzOutcome, FuzzReport,
    UnitRun,
};
pub use repro::{Repro, FORMAT};
pub use scenario::{
    CheckedRun, ChurnSpec, DelaySpec, NetSpec, PartitionSpec, RunMode, ScenarioSpec, TopologyKind,
};
pub use shrink::{bisect_prefix, shrink};
