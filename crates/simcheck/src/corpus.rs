//! Coverage-guided schedule fuzzing: behavior fingerprints and the
//! corpus-driven search loop.
//!
//! Blind seed sweeps ([`fuzz_many`](crate::fuzz::fuzz_many)) treat every
//! scenario draw as equally interesting. This module adds the
//! coverage-feedback half of the FoundationDB/TigerBeetle recipe:
//!
//! 1. every instrumented run is reduced to a **behavior fingerprint**
//!    ([`run_fingerprint`]) — a deliberately coarse structural signature
//!    (per-phase flow shapes, view-timeline size, log₂-bucketed timing and
//!    delivery aggregates) combined with the sorted per-node decision
//!    counts, the timeout flag, and the violated oracles;
//! 2. fingerprints feed a **seen set**; a run whose fingerprint is novel
//!    promotes its scenario into a bounded **corpus**;
//! 3. the search loop ([`fuzz_coverage`]) prefers **mutating** corpus
//!    entries over fresh draws — re-seeding knobs, but also walking
//!    dimensions the generator's prior pins constant (timeout λ, delay
//!    magnitudes, decision targets, wider partition windows) — steering
//!    the budget toward behaviors blind sampling has zero density on.
//!
//! The loop is deterministic at any `--threads` and under both scheduler
//! backends: scenario construction consumes a single master RNG
//! sequentially between batches, the batch itself runs through
//! [`bft_sim_core::sweep::sweep`] (which reassembles results in submission
//! order), and all corpus/statistics folding happens sequentially.

use std::collections::VecDeque;
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use bft_sim_core::fasthash::{FastHasher, FastSet};
use bft_sim_core::json::Json;
use bft_sim_core::obs::DEFAULT_LAST_K;
use bft_sim_core::sweep::{panic_message, sweep};
use bft_sim_core::trace::TraceEvent;

use crate::fuzz::{FuzzFailure, FuzzObservability, FuzzOptions, FuzzOutcome, FuzzReport};
use crate::scenario::{CheckedRun, DelaySpec, PartitionSpec, RunMode, ScenarioSpec};
use crate::shrink::shrink;

/// Scenario scales the mutator may re-draw (the generator's set).
const SCALES: [usize; 4] = [4, 7, 10, 16];

/// Scenarios per batch. Fixed (never derived from the thread count) so the
/// master RNG consumption — and therefore every scenario of the search —
/// is identical at any `--threads`.
const BATCH: usize = 32;

/// Upper bound on retained corpus entries; oldest are evicted first.
const CORPUS_CAP: usize = 256;

/// File name the persisted corpus lives under inside a `--corpus-dir`.
pub const CORPUS_FILE: &str = "corpus.json";

/// Loads a persisted corpus from `dir/`[`CORPUS_FILE`].
///
/// A missing file (or directory) is an empty corpus, not an error — the
/// first run of a cached CI job starts cold. Entries come back in file
/// order, oldest first, matching the eviction order they were saved in.
///
/// # Errors
///
/// Returns a message when the file exists but cannot be read, is not
/// valid JSON, is not an array, or holds a malformed scenario.
pub fn load_corpus(dir: &Path) -> Result<Vec<ScenarioSpec>, String> {
    let path = dir.join(CORPUS_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("corpus: cannot read {}: {e}", path.display())),
    };
    let json = Json::parse(&text).map_err(|e| format!("corpus: {}: {e}", path.display()))?;
    let Json::Arr(items) = json else {
        return Err(format!(
            "corpus: {} must hold a JSON array of scenarios",
            path.display()
        ));
    };
    items
        .iter()
        .map(ScenarioSpec::from_json)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("corpus: {}: {e}", path.display()))
}

/// Persists a corpus to `dir/`[`CORPUS_FILE`] (creating `dir` if needed),
/// oldest entry first so a later [`load_corpus`] restores eviction order.
///
/// # Errors
///
/// Returns a message when the directory cannot be created or the file
/// cannot be written.
pub fn save_corpus<'a>(
    dir: &Path,
    corpus: impl IntoIterator<Item = &'a ScenarioSpec>,
) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("corpus: cannot create {}: {e}", dir.display()))?;
    let path = dir.join(CORPUS_FILE);
    let json = Json::Arr(corpus.into_iter().map(ScenarioSpec::to_json).collect());
    let mut text = json.dump_pretty();
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| format!("corpus: cannot write {}: {e}", path.display()))
}

/// Ceiling on the permille chance that a corpus-mode run mutates a corpus
/// entry instead of drawing a fresh scenario. The live rate is adaptive —
/// see [`mutate_permille`].
const MUTATE_MAX_PERMILLE: u32 = 850;

/// Floor on the mutation rate once the corpus is non-empty. High enough
/// that exploitation engages within small budgets (a few hundred runs)
/// where the duplicate signal is still weak — which is exactly where
/// rare-bug discovery benchmarks live — while fresh draws keep a majority
/// until saturation actually ramps the rate past it.
const MUTATE_MIN_PERMILLE: u32 = 400;

/// The adaptive mutation rate: exploitation ramps with observed saturation.
///
/// While fresh draws are still mostly novel, mutating is wasted budget —
/// the generator's prior is itself the frontier. As duplicates accumulate
/// (`runs - distinct` grows), the prior is exhausted and the budget shifts
/// toward mutating known-novel corpus entries, up to
/// [`MUTATE_MAX_PERMILLE`]. Both inputs come from the sequentially folded
/// stats, so the rate — and therefore the whole search — is identical at
/// any thread count.
fn mutate_permille(runs: u64, distinct: u64) -> u32 {
    if runs == 0 {
        return MUTATE_MIN_PERMILLE;
    }
    let dup_permille = (runs.saturating_sub(distinct) * 1000 / runs) as u32;
    (2 * dup_permille).clamp(MUTATE_MIN_PERMILLE, MUTATE_MAX_PERMILLE)
}

/// Reduces one oracle-checked, *instrumented* run to its behavior
/// fingerprint.
///
/// The fingerprint deliberately quantizes everything continuous (floor-log₂
/// buckets), aggregates per-node quantities across the whole run, and
/// ignores the concrete decided *values* (which vary with every seed), so
/// that runs differing only in jitter, per-node noise, or in which random
/// value won collide, while structural novelty separates: the sorted
/// decision-count multiset, per-phase flow magnitude and density, how many
/// views the run visited, the overall delivery volume and latency octave,
/// the decision cadence octave, timeouts, and violated oracles.
///
/// Coarseness is the point: the generator's prior must *saturate* this
/// space under blind random search, so that corpus-driven mutation — which
/// can walk λ, delay magnitudes, decision targets and partition windows
/// beyond the prior — has a measurable frontier to push
/// (`distinct_fingerprints` is the coverage metric the whole search
/// optimizes). A finer signature would make every chaos run look novel and
/// reduce the search to blind sampling with extra bookkeeping.
pub fn run_fingerprint(run: &CheckedRun) -> u64 {
    /// Floor-log₂ bucket (0 for 0, else `floor(log2(v)) + 1`).
    fn bucket(v: u64) -> u64 {
        64 - v.leading_zeros() as u64
    }
    let mut h = FastHasher::default();
    h.write_u64(run.result.timed_out as u64);
    // The decision-count multiset: which progress profile the run reached,
    // not which node reached it.
    h.write_u64(run.result.decided.len() as u64);
    let mut counts: Vec<u64> = run.result.decided.iter().map(|d| d.len() as u64).collect();
    counts.sort_unstable();
    for c in counts {
        h.write_u64(c);
    }
    if let Some(obs) = &run.result.observability {
        // Per-phase flow shape: magnitude and edge-density octaves.
        h.write_u64(obs.flows.len() as u64);
        for f in &obs.flows {
            h.write(f.phase.as_bytes());
            h.write_u64(bucket(f.total()));
            h.write_u64(bucket(f.nonzero_cells() as u64));
        }
        // View-timeline size: how far view synchronisation wandered.
        h.write_u64(obs.views.len() as u64);
        h.write_u64(bucket(obs.views.iter().map(|v| v.entries).sum()));
        // Run-wide delivery volume and latency octave (count-weighted grand
        // mean over the per-node histograms — per-node means are noise).
        let deliveries: u64 = obs.delivery_latency.iter().map(|n| n.count()).sum();
        let latency_sum: f64 = obs
            .delivery_latency
            .iter()
            .map(|n| n.mean_micros() * n.count() as f64)
            .sum();
        h.write_u64(bucket(deliveries));
        h.write_u64(bucket(grand_mean(latency_sum, deliveries)));
        // Decision cadence octave.
        let decisions: u64 = obs.decision_interval.iter().map(|n| n.count()).sum();
        let interval_sum: f64 = obs
            .decision_interval
            .iter()
            .map(|n| n.mean_micros() * n.count() as f64)
            .sum();
        h.write_u64(bucket(grand_mean(interval_sum, decisions)));
    }
    h.write_u64(run.violations.len() as u64);
    for v in &run.violations {
        h.write(v.oracle.as_bytes());
    }
    h.finish()
}

/// Count-weighted grand mean, truncated to micros (0 when nothing was
/// counted). All inputs are simulated quantities, so the result — like
/// every fingerprint component — is identical across threads and backends.
fn grand_mean(weighted_sum: f64, count: u64) -> u64 {
    if count == 0 {
        0
    } else {
        (weighted_sum / count as f64) as u64
    }
}

/// Coverage accounting for one [`fuzz_coverage`] search, reported in the
/// fuzz report JSON (`"coverage"` block) and by `bft-sim fuzz --coverage`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageStats {
    /// `true` when the corpus loop was active; `false` for a blind search
    /// under the same accounting (the comparison baseline).
    pub corpus_mode: bool,
    /// The run budget the search was given.
    pub budget: u64,
    /// Runs actually executed (equals `budget` unless it was zero).
    pub runs: u64,
    /// Distinct behavior fingerprints observed.
    pub distinct_fingerprints: u64,
    /// Corpus entries retained at the end (≤ the cap).
    pub corpus_size: u64,
    /// Corpus entries seeded from a persisted `--corpus-dir` before the
    /// search started (0 when none was given or the directory was cold).
    pub loaded_corpus: u64,
    /// Runs whose scenario was a mutation of a corpus entry.
    pub mutated_runs: u64,
    /// Runs whose scenario was a fresh generator draw.
    pub fresh_runs: u64,
    /// 1-based index of the first violating run, when any violated.
    pub first_violation_run: Option<u64>,
    /// Coverage growth checkpoints: `(runs_so_far, distinct_fingerprints)`,
    /// roughly ten per search, always ending at the final totals.
    pub curve: Vec<(u64, u64)>,
}

impl CoverageStats {
    /// Distinct fingerprints per thousand runs (integer arithmetic, so the
    /// report stays byte-identical everywhere).
    pub fn new_per_1k(&self) -> u64 {
        (self.distinct_fingerprints * 1_000)
            .checked_div(self.runs)
            .unwrap_or(0)
    }

    /// The stats as a JSON object (the report's `coverage` block).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            (
                "mode".to_string(),
                Json::from(if self.corpus_mode { "corpus" } else { "blind" }),
            ),
            ("budget".to_string(), Json::from(self.budget)),
            ("runs".to_string(), Json::from(self.runs)),
            (
                "distinct_fingerprints".to_string(),
                Json::from(self.distinct_fingerprints),
            ),
            ("corpus_size".to_string(), Json::from(self.corpus_size)),
        ];
        // Omitted when zero so pre-persistence reports stay byte-identical.
        if self.loaded_corpus > 0 {
            pairs.push(("loaded_corpus".to_string(), Json::from(self.loaded_corpus)));
        }
        pairs.extend([
            ("mutated_runs".to_string(), Json::from(self.mutated_runs)),
            ("fresh_runs".to_string(), Json::from(self.fresh_runs)),
            ("new_per_1k".to_string(), Json::from(self.new_per_1k())),
        ]);
        if let Some(first) = self.first_violation_run {
            pairs.push(("first_violation_run".to_string(), Json::from(first)));
        }
        pairs.push((
            "curve".to_string(),
            Json::Arr(
                self.curve
                    .iter()
                    .map(|&(runs, distinct)| {
                        Json::Arr(vec![Json::from(runs), Json::from(distinct)])
                    })
                    .collect(),
            ),
        ));
        Json::Obj(pairs)
    }
}

/// Whether a scenario's drawn knobs land in the narrow window that arms the
/// latent seeded bug under [`FuzzOptions::latent_bug`]: PBFT at a realistic
/// scale, normally distributed delays, and a drop partition — a conjunction
/// blind random search hits about once per hundred draws.
fn latent_window(spec: &ScenarioSpec) -> bool {
    spec.protocol == bft_sim_protocols::registry::ProtocolKind::Pbft
        && spec.n >= 10
        && matches!(spec.delay, DelaySpec::Normal { .. })
        && spec.partition.is_some_and(|p| p.drop)
}

/// Mutates one corpus entry: one or two knobs are re-drawn, the rest kept.
/// Pure function of the parent and the RNG state.
///
/// Structural knobs are weighted over seed reshuffles: the fingerprint
/// quantizes away most seed-level jitter, so structure is where novelty
/// lives. Crucially, several arms step *outside*
/// [`ScenarioSpec::generate`]'s prior — partitions draw from a wider window
/// (later starts, longer outages), and λ, delay magnitudes and decision
/// targets walk octave by octave from values the generator pins constant —
/// so successive mutations carry the corpus into regions blind sampling has
/// zero probability of reaching. That asymmetry is the whole reason the
/// corpus search beats a blind one on `distinct_fingerprints`.
fn mutate(parent: &ScenarioSpec, rng: &mut SmallRng, opts: &FuzzOptions) -> ScenarioSpec {
    let mut spec = parent.clone();
    // Mutants always fuzz at the search's intensity: a benign parent is in
    // the corpus for its behavior, not its idleness.
    spec.intensity_permille = opts.intensity_permille;
    spec.max_actions = opts.max_actions;
    spec.fault_preset = opts.fault_preset;
    // Timing walks (λ, delay magnitude) are only safe for protocols whose
    // safety does not lean on a synchrony bound: a partially-synchronous or
    // asynchronous protocol must tolerate any delay, but stretching delays
    // past a synchronous protocol's Δ assumption manufactures violations
    // the protocol never promised to prevent.
    let timing_walk_safe = spec.protocol.network_assumption()
        != bft_sim_protocols::registry::NetworkAssumption::Synchronous;
    let tweaks = 1 + rng.gen_range(0..2u32);
    for _ in 0..tweaks {
        match rng.gen_range(0..14u32) {
            0 => spec.seed = rng.gen_range(0..u64::MAX),
            1 => spec.adversary_seed = rng.gen_range(0..u64::MAX),
            2 => spec.fault_seed = rng.gen_range(0..u64::MAX),
            3 => spec.genesis_seed = rng.gen_range(1..u64::MAX),
            4 => {
                if opts.n_override.is_none() {
                    spec.n = SCALES[rng.gen_range(0..SCALES.len() as u64) as usize];
                }
            }
            5 => {
                // Class switches reset to the prior's parameters — kept
                // rare relative to the octave walks below, because a
                // switch discards structure (a walked magnitude, a
                // delay-class-dependent behavior) the corpus was keeping.
                spec.delay = match rng.gen_range(0..3u64) {
                    0 => DelaySpec::Constant { micros: 100_000 },
                    1 => DelaySpec::Uniform {
                        lo_micros: 50_000,
                        hi_micros: 300_000,
                    },
                    _ => DelaySpec::Normal {
                        mean_micros: 250_000,
                        std_micros: 50_000,
                    },
                };
            }
            6..=8 => {
                // Walk the delay magnitude one octave — the generator pins
                // delay parameters, so successive halvings/doublings reach
                // latency regimes blind sampling never draws.
                let up = rng.gen_bool(0.5);
                if timing_walk_safe {
                    spec.delay = scale_delay(spec.delay, up);
                } else {
                    spec.seed = rng.gen_range(0..u64::MAX);
                }
            }
            9 | 10 => {
                // Walk the timeout λ one octave: the λ-vs-delay ratio is
                // the under/over-estimated-timeout axis of the paper's
                // Fig. 4/5, and the generator pins λ at 1 s.
                let up = rng.gen_bool(0.5);
                if timing_walk_safe {
                    spec.lambda_micros = scale_octave(spec.lambda_micros, up, LAMBDA_RANGE);
                } else {
                    spec.seed = rng.gen_range(0..u64::MAX);
                }
            }
            11 => {
                // Walk the decision target — a different progress horizon
                // is a different run shape. One-shot protocols stay at one
                // decision: their runs do not extend.
                let measured = spec.protocol.measured_decisions();
                let up = rng.gen_bool(0.5);
                if measured > 1 {
                    spec.target_decisions =
                        scale_octave(spec.target_decisions, up, (1, 4 * measured));
                } else {
                    spec.seed = rng.gen_range(0..u64::MAX);
                }
            }
            _ => {
                // Partitions mostly *perturb* rather than toggle: corpus
                // entries are partition-rich (outages breed novel
                // behavior), and preserving that structure while re-drawing
                // the window and drop/hold mode is what lets the search
                // close in on partition-dependent bugs — removal stays as
                // the rare escape hatch.
                spec.partition = match spec.partition {
                    Some(_) if rng.gen_bool(0.25) => None,
                    _ => {
                        let start_ms = rng.gen_range(0..4_000u64);
                        let dur_ms = rng.gen_range(1_000..16_000u64);
                        Some(PartitionSpec {
                            start_ms,
                            end_ms: start_ms + dur_ms,
                            drop: rng.gen_bool(0.5),
                        })
                    }
                };
            }
        }
    }
    spec
}

/// λ bounds the mutator may walk within (µs): an octave below the delay
/// prior's floor to two octaves above the generator's pinned 1 s.
const LAMBDA_RANGE: (u64, u64) = (250_000, 4_000_000);

/// Mean-delay bounds for [`scale_delay`] (µs): an eighth of the prior's
/// constant delay down, one order of magnitude up. Every protocol in the
/// walk's gate backs off its timeout exponentially, so even a 1.6 s wire
/// against a 250 ms λ terminates well inside the scenario time cap.
const DELAY_RANGE: (u64, u64) = (12_500, 1_600_000);

/// One-octave walk (double or halve, clamped), the mutator's step for
/// every pinned continuous knob.
fn scale_octave(v: u64, up: bool, (lo, hi): (u64, u64)) -> u64 {
    let scaled = if up { v.saturating_mul(2) } else { v / 2 };
    scaled.clamp(lo, hi)
}

/// Scales a delay spec's parameters one octave, preserving its class.
fn scale_delay(delay: DelaySpec, up: bool) -> DelaySpec {
    let s = |v: u64| scale_octave(v, up, DELAY_RANGE);
    match delay {
        DelaySpec::Constant { micros } => DelaySpec::Constant { micros: s(micros) },
        DelaySpec::Uniform {
            lo_micros,
            hi_micros,
        } => {
            let lo = s(lo_micros);
            DelaySpec::Uniform {
                lo_micros: lo,
                hi_micros: s(hi_micros).max(lo + 1),
            }
        }
        DelaySpec::Normal {
            mean_micros,
            std_micros,
        } => DelaySpec::Normal {
            mean_micros: s(mean_micros),
            std_micros: s(std_micros),
        },
    }
}

/// What one coverage run's job produces; reassembled in submission order.
enum CovResult {
    Ran {
        events_processed: u64,
        skipped_cancelled_timers: u64,
        skipped_excluded_nodes: u64,
        fingerprint: u64,
        outcome: Option<Box<FuzzOutcome>>,
        observability: Box<bft_sim_core::obs::Observability>,
    },
    Panicked {
        message: String,
        last_events: Vec<TraceEvent>,
    },
}

/// Runs a coverage-guided (or, with `corpus_mode` off, blind-but-accounted)
/// fuzz search of `budget` scenarios and returns the usual [`FuzzReport`]
/// with its `coverage` block filled in.
///
/// Every run is instrumented internally — fingerprints need the
/// observability signature — but the report's `observability` aggregate is
/// only populated when [`FuzzOptions::observability`] asks for it, matching
/// [`fuzz_many`](crate::fuzz::fuzz_many)'s contract. Violating runs shrink
/// to repros exactly as in a blind sweep. [`FuzzOutcome::scenario_seed`]
/// holds the 1-based run index (scenarios here come from the master RNG and
/// the corpus, not from a user-supplied seed list).
///
/// Deterministic: same `master_seed`, `budget`, `corpus_mode`, and options
/// ⇒ byte-identical report at any thread count, under both scheduler
/// backends.
///
/// # Errors
///
/// Returns a message when a scenario cannot be built (e.g. a bug-armed
/// scenario without the `testbug` feature compiled in).
pub fn fuzz_coverage(
    master_seed: u64,
    budget: u64,
    corpus_mode: bool,
    opts: &FuzzOptions,
) -> Result<FuzzReport, String> {
    fuzz_coverage_in_dir(master_seed, budget, corpus_mode, opts, None)
}

/// [`fuzz_coverage`] with corpus persistence: when `corpus_dir` is given,
/// the corpus is seeded from `dir/`[`CORPUS_FILE`] before the search (a
/// cold directory starts empty) and written back after it, so successive
/// invocations — e.g. CI jobs restoring the directory from a cache —
/// resume the search from the previous frontier instead of re-deriving it
/// from scratch. Loaded entries act as mutation parents from run one;
/// their count is reported in [`CoverageStats::loaded_corpus`].
///
/// Determinism is unchanged: the search is a pure function of
/// (`master_seed`, `budget`, `corpus_mode`, `opts`, the loaded file
/// bytes), still byte-identical at any thread count and under both
/// scheduler backends.
///
/// # Errors
///
/// Returns a message when a scenario cannot be built, or when the corpus
/// file exists but cannot be read/parsed or written back.
pub fn fuzz_coverage_in_dir(
    master_seed: u64,
    budget: u64,
    corpus_mode: bool,
    opts: &FuzzOptions,
    corpus_dir: Option<&Path>,
) -> Result<FuzzReport, String> {
    let mut master = SmallRng::seed_from_u64(master_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut seen: FastSet<u64> = FastSet::default();
    let mut corpus: VecDeque<ScenarioSpec> = VecDeque::new();
    let mut loaded = 0u64;
    if let Some(dir) = corpus_dir {
        for spec in load_corpus(dir)? {
            corpus.push_back(spec);
            if corpus.len() > CORPUS_CAP {
                corpus.pop_front();
            } else {
                loaded += 1;
            }
        }
    }
    let mut stats = CoverageStats {
        corpus_mode,
        budget,
        runs: 0,
        distinct_fingerprints: 0,
        corpus_size: 0,
        loaded_corpus: loaded,
        mutated_runs: 0,
        fresh_runs: 0,
        first_violation_run: None,
        curve: Vec::new(),
    };
    let mut report = FuzzReport {
        observability: opts.observability.then(FuzzObservability::default),
        ..FuzzReport::default()
    };
    let mark_every = budget.div_ceil(10).max(1);
    let mut next_mark = mark_every;

    while stats.runs < budget {
        let batch_len = BATCH.min((budget - stats.runs) as usize);
        // Scenario construction consumes `master` strictly sequentially —
        // the only ordering that is identical at every thread count.
        let mut batch: Vec<(ScenarioSpec, bool)> = Vec::with_capacity(batch_len);
        let permille = mutate_permille(stats.runs, seen.len() as u64);
        for _ in 0..batch_len {
            let mutated =
                corpus_mode && !corpus.is_empty() && master.gen_range(0..1000u32) < permille;
            let mut spec = if mutated {
                // Sample parents from the *recent* half of the corpus: an
                // entry admitted late is novel against everything before
                // it, so recency is a free proxy for rarity — mutating the
                // frontier extends octave walks and keeps rare structure
                // (partitions, skewed timing) in the mutant population
                // instead of re-diluting it with the prior's bulk.
                let half = corpus.len().div_ceil(2);
                let parent = (corpus.len() - half) + master.gen_range(0..half as u64) as usize;
                mutate(&corpus[parent], &mut master, opts)
            } else {
                let fresh_seed = master.gen_range(0..u64::MAX);
                let mut spec = ScenarioSpec::generate(
                    fresh_seed,
                    &opts.protocols,
                    opts.intensity_permille,
                    opts.max_actions,
                    opts.inject_bug,
                    opts.fault_preset,
                );
                if let Some(n) = opts.n_override {
                    spec.n = n;
                }
                spec
            };
            if opts.net_override.is_some() {
                spec.net = opts.net_override;
            }
            if opts.latent_bug {
                spec.inject_bug = latent_window(&spec);
            }
            batch.push((spec, mutated));
        }

        let results = sweep(
            batch.len(),
            opts.threads,
            |i| -> Result<CovResult, String> {
                let spec = &batch[i].0;
                let run_index = stats.runs + 1 + i as u64;
                let cfg = spec.obs_config(DEFAULT_LAST_K);
                let ring = cfg.ring();
                let run = match catch_unwind(AssertUnwindSafe(|| {
                    spec.run_observed(RunMode::Generate, opts.scheduler, Some(cfg))
                })) {
                    Ok(run) => run.map_err(|e| format!("run {run_index}: {e}"))?,
                    Err(payload) => {
                        return Ok(CovResult::Panicked {
                            message: panic_message(payload.as_ref()),
                            last_events: ring.snapshot(),
                        })
                    }
                };
                let fingerprint = run_fingerprint(&run);
                let observability = Box::new(
                    run.result
                        .observability
                        .clone()
                        .expect("coverage runs are always instrumented"),
                );
                let outcome = if run.violations.is_empty() {
                    None
                } else {
                    let mut repro = shrink(spec, &run);
                    repro.last_events = observability.recent_events.clone();
                    Some(Box::new(FuzzOutcome {
                        scenario_seed: run_index,
                        spec: spec.clone(),
                        violations: run.violations.iter().map(|v| v.to_string()).collect(),
                        repro,
                    }))
                };
                Ok(CovResult::Ran {
                    events_processed: run.result.events_processed,
                    skipped_cancelled_timers: run.result.skipped_cancelled_timers,
                    skipped_excluded_nodes: run.result.skipped_excluded_nodes,
                    fingerprint,
                    outcome,
                    observability,
                })
            },
        );

        for (i, slot) in results.into_iter().enumerate() {
            let (spec, mutated) = &batch[i];
            let run_index = stats.runs + 1;
            stats.runs += 1;
            if *mutated {
                stats.mutated_runs += 1;
            } else {
                stats.fresh_runs += 1;
            }
            match slot {
                Ok(Ok(CovResult::Ran {
                    events_processed,
                    skipped_cancelled_timers,
                    skipped_excluded_nodes,
                    fingerprint,
                    outcome,
                    observability,
                })) => {
                    report.runs += 1;
                    report.events_processed += events_processed;
                    report.skipped_cancelled_timers += skipped_cancelled_timers;
                    report.skipped_excluded_nodes += skipped_excluded_nodes;
                    if seen.insert(fingerprint) {
                        corpus.push_back(spec.clone());
                        if corpus.len() > CORPUS_CAP {
                            corpus.pop_front();
                        }
                    }
                    if let Some(outcome) = outcome {
                        stats.first_violation_run.get_or_insert(run_index);
                        report.outcomes.push(*outcome);
                    }
                    if let Some(total) = &mut report.observability {
                        total.absorb(&observability);
                    }
                }
                Ok(Ok(CovResult::Panicked {
                    message,
                    last_events,
                })) => {
                    // A panic is novel behavior too, but a crashing scenario
                    // never enters the corpus: mutating it would spend the
                    // budget re-crashing.
                    let mut h = FastHasher::default();
                    h.write(message.as_bytes());
                    seen.insert(h.finish());
                    stats.first_violation_run.get_or_insert(run_index);
                    report.failures.push(FuzzFailure {
                        scenario_seed: run_index,
                        message,
                        last_events,
                    });
                }
                Ok(Err(build_error)) => return Err(build_error),
                Err(panic) => {
                    let mut h = FastHasher::default();
                    h.write(panic.message.as_bytes());
                    seen.insert(h.finish());
                    stats.first_violation_run.get_or_insert(run_index);
                    report.failures.push(FuzzFailure {
                        scenario_seed: run_index,
                        message: panic.message,
                        last_events: Vec::new(),
                    });
                }
            }
        }

        stats.distinct_fingerprints = seen.len() as u64;
        while stats.runs >= next_mark {
            stats
                .curve
                .push((next_mark.min(stats.runs), stats.distinct_fingerprints));
            next_mark += mark_every;
        }
    }

    stats.distinct_fingerprints = seen.len() as u64;
    stats.corpus_size = corpus.len() as u64;
    if stats.curve.last().map(|&(r, _)| r) != Some(stats.runs) && stats.runs > 0 {
        stats.curve.push((stats.runs, stats.distinct_fingerprints));
    }
    if let Some(dir) = corpus_dir {
        save_corpus(dir, &corpus)?;
    }
    report.coverage = Some(stats);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_core::buggify::FaultPreset;
    use bft_sim_core::scheduler::SchedulerKind;
    use bft_sim_protocols::registry::ProtocolKind;

    fn chaos_opts() -> FuzzOptions {
        FuzzOptions {
            protocols: vec![ProtocolKind::Pbft, ProtocolKind::HotStuffNs],
            fault_preset: FaultPreset::Chaos,
            ..FuzzOptions::default()
        }
    }

    #[test]
    fn fingerprints_separate_structure_not_noise() {
        let base = ScenarioSpec::baseline(ProtocolKind::Pbft);
        let a = base
            .run_observed(
                RunMode::Generate,
                SchedulerKind::default(),
                Some(base.obs_config(DEFAULT_LAST_K)),
            )
            .unwrap();
        let b = base
            .run_observed(
                RunMode::Generate,
                SchedulerKind::default(),
                Some(base.obs_config(DEFAULT_LAST_K)),
            )
            .unwrap();
        assert_eq!(
            run_fingerprint(&a),
            run_fingerprint(&b),
            "identical runs must collide"
        );
        let other = ScenarioSpec {
            target_decisions: 3,
            ..base.clone()
        };
        let c = other
            .run_observed(
                RunMode::Generate,
                SchedulerKind::default(),
                Some(other.obs_config(DEFAULT_LAST_K)),
            )
            .unwrap();
        assert_ne!(
            run_fingerprint(&a),
            run_fingerprint(&c),
            "structurally different runs must separate"
        );
    }

    #[test]
    fn coverage_search_is_deterministic_across_threads_and_backends() {
        let serial = FuzzOptions {
            threads: 1,
            scheduler: SchedulerKind::Heap,
            ..chaos_opts()
        };
        let parallel = FuzzOptions {
            threads: 4,
            scheduler: SchedulerKind::Wheel,
            ..serial.clone()
        };
        let a = fuzz_coverage(11, 96, true, &serial).unwrap();
        let b = fuzz_coverage(11, 96, true, &parallel).unwrap();
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        assert_eq!(a.failures, b.failures);
        let (ca, cb) = (a.coverage.unwrap(), b.coverage.unwrap());
        assert_eq!(ca, cb);
        assert_eq!(ca.to_json().dump_pretty(), cb.to_json().dump_pretty());
        assert_eq!(ca.runs, 96);
        assert_eq!(ca.mutated_runs + ca.fresh_runs, 96);
        assert!(ca.distinct_fingerprints > 1, "{ca:?}");
        assert!(ca.corpus_size > 0);
        assert!(ca.mutated_runs > 0, "the corpus loop must engage: {ca:?}");
        assert_eq!(ca.curve.last(), Some(&(96, ca.distinct_fingerprints)));
    }

    #[test]
    fn chaos_coverage_run_stays_clean_on_honest_protocols() {
        // The catalog's faults all stay inside (or adjacent to) the
        // protocols' fault model, and non-calm presets suspend the liveness
        // debt — so honest protocols must survive a chaos search with no
        // violations. (This is also what keeps the CI smoke job at exit 0.)
        let report = fuzz_coverage(3, 48, true, &chaos_opts()).unwrap();
        assert_eq!(report.runs, 48);
        assert!(
            report.outcomes.is_empty() && report.failures.is_empty(),
            "chaos fuzzing found: {:?} / {:?}",
            report
                .outcomes
                .iter()
                .map(|o| (o.scenario_seed, &o.violations))
                .collect::<Vec<_>>(),
            report.failures
        );
    }

    #[test]
    fn corpus_dir_round_trips_and_warm_starts_the_search() {
        let dir = std::env::temp_dir().join(format!("bft-sim-corpus-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = chaos_opts();
        // Cold start: no file yet — loads empty, saves the corpus it built.
        let first = fuzz_coverage_in_dir(29, 48, true, &opts, Some(&dir)).unwrap();
        let cold = first.coverage.unwrap();
        assert_eq!(cold.loaded_corpus, 0);
        assert!(cold.corpus_size > 0);
        assert!(
            !cold.to_json().dump_pretty().contains("loaded_corpus"),
            "a cold search must not sprout the loaded_corpus key"
        );
        let saved = load_corpus(&dir).unwrap();
        assert_eq!(saved.len() as u64, cold.corpus_size);
        // Warm start: the saved file seeds the next search's corpus.
        let second = fuzz_coverage_in_dir(31, 48, true, &opts, Some(&dir)).unwrap();
        let warm = second.coverage.unwrap();
        assert_eq!(warm.loaded_corpus, cold.corpus_size);
        assert!(warm.to_json().dump_pretty().contains("loaded_corpus"));
        // The warm run wrote its own corpus back over the file.
        assert_eq!(load_corpus(&dir).unwrap().len() as u64, warm.corpus_size);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_corpus_files_are_rejected() {
        let dir =
            std::env::temp_dir().join(format!("bft-sim-corpus-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(load_corpus(&dir).unwrap(), Vec::new(), "cold dir is empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CORPUS_FILE);
        std::fs::write(&path, "not json").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert!(err.starts_with("corpus:"), "{err}");
        std::fs::write(&path, "{}").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        assert!(err.contains("array"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_mode_outgrows_blind_on_a_small_budget() {
        // The full 5k-run comparison lives in the experiments suite; this
        // is the cheap monotonicity smoke — corpus mode must at least match
        // blind search on distinct fingerprints with the same budget.
        let opts = chaos_opts();
        let corpus = fuzz_coverage(17, 96, true, &opts).unwrap();
        let blind = fuzz_coverage(17, 96, false, &opts).unwrap();
        let (c, b) = (corpus.coverage.unwrap(), blind.coverage.unwrap());
        assert_eq!(b.mutated_runs, 0, "blind mode must never mutate");
        assert!(
            c.distinct_fingerprints >= b.distinct_fingerprints,
            "corpus {} < blind {}",
            c.distinct_fingerprints,
            b.distinct_fingerprints
        );
    }
}
