//! The intentionally seeded safety bug (`--features testbug`).
//!
//! [`QuorumForgeAdversary`] exploits the simulator's *trust-model* signature
//! scheme — [`bft_sim_crypto::sign`] will happily sign on behalf of any
//! node — to forge a full commit certificate for a bogus digest and feed it
//! to one victim at simulation start. The victim decides the bogus value
//! within ~1 ms, long before any honest commit quorum can form, so every
//! run produces an agreement violation on slot 0. Its only purpose is to
//! prove, end to end, that the fuzzer's agreement oracle catches a real
//! safety violation and that the shrinker and repro runner preserve it.

use bft_sim_core::adversary::{Adversary, AdversaryApi};
use bft_sim_core::ids::NodeId;
use bft_sim_core::time::SimDuration;
use bft_sim_crypto::{sign, Digest};
use bft_sim_protocols::common::vote_digest;
use bft_sim_protocols::pbft::{PbftMsg, PHASE_COMMIT};

/// The digest the forged certificate commits. Any constant works as long as
/// it is non-zero (so the validity oracle isn't the one to fire first) and
/// never collides with a genesis-derived proposal digest.
pub const BOGUS_WORD: u64 = 0xBAD_C0DE;

/// Forges a 2f+1-strong PBFT commit certificate for a bogus digest and
/// injects it into node `n - 1` at a configurable delay (~1 ms by default).
/// See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct QuorumForgeAdversary {
    delay_micros: u64,
}

impl Default for QuorumForgeAdversary {
    fn default() -> Self {
        Self::new()
    }
}

impl QuorumForgeAdversary {
    /// Creates the adversary with the classic ~1 ms rush.
    pub fn new() -> Self {
        Self::with_delay_micros(1_000)
    }

    /// Creates the adversary with the forged certificate landing at
    /// `delay_micros`. A late forge is only dangerous while the victim has
    /// not yet decided slot 0 legitimately — PBFT's `slot` guard discards
    /// stale commits — which makes the violation dependent on whatever
    /// stalls the victim (e.g. targeted fault-catalog drops).
    pub fn with_delay_micros(delay_micros: u64) -> Self {
        QuorumForgeAdversary { delay_micros }
    }

    /// The digest the victim is tricked into deciding.
    pub fn bogus_digest() -> Digest {
        Digest::of_words(&[BOGUS_WORD])
    }

    /// The node that receives the forged certificate.
    pub fn victim(n: usize) -> NodeId {
        NodeId::new(n as u32 - 1)
    }
}

impl Adversary for QuorumForgeAdversary {
    fn init(&mut self, api: &mut AdversaryApi<'_>) {
        let n = api.n();
        let quorum = 2 * api.f() + 1;
        let victim = Self::victim(n);
        let bogus = Self::bogus_digest();
        for i in 0..quorum {
            let signer = NodeId::new(i as u32);
            let sig = sign(signer, vote_digest(PHASE_COMMIT, 0, 0, bogus));
            api.inject(
                signer,
                victim,
                SimDuration::from_micros(self.delay_micros + i as u64),
                PbftMsg::Commit {
                    view: 0,
                    slot: 0,
                    digest: bogus,
                    sig,
                },
            );
        }
    }

    fn name(&self) -> &'static str {
        "quorum-forge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{RunMode, ScenarioSpec};
    use bft_sim_protocols::registry::ProtocolKind;

    #[test]
    fn forged_quorum_trips_the_agreement_oracle() {
        let spec = ScenarioSpec {
            inject_bug: true,
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let run = spec.run(RunMode::Generate).unwrap();
        assert!(
            run.violates("agreement"),
            "violations: {:?}",
            run.violations
        );
        let v = run
            .violations
            .iter()
            .find(|v| v.oracle == "agreement")
            .unwrap();
        assert!(
            v.detail.contains("n3"),
            "detail must name the victim: {}",
            v.detail
        );
        // The victim decided the forged digest, rushed in at ~1 ms.
        let bogus = QuorumForgeAdversary::bogus_digest().as_u64();
        let victim = &run.result.decided[3];
        assert_eq!(victim.first().map(|(_, v)| v.as_u64()), Some(bogus));
    }

    #[test]
    fn the_bug_reproduces_at_every_scale() {
        for n in [4, 7, 16] {
            let spec = ScenarioSpec {
                n,
                inject_bug: true,
                ..ScenarioSpec::baseline(ProtocolKind::Pbft)
            };
            let run = spec.run(RunMode::Generate).unwrap();
            assert!(run.violates("agreement"), "n = {n}: {:?}", run.violations);
        }
    }
}
