//! Self-contained failure reproducers.
//!
//! A [`Repro`] is what the fuzzer hands back for every violation it finds
//! (after shrinking): the minimal scenario, the residual adversary script,
//! optionally a delivery-schedule prefix, and the oracle it trips. Its JSON
//! form is what `bft-sim fuzz` writes and `bft-sim repro` replays; checking
//! a committed repro file into `tests/` turns a fuzzer catch into a
//! permanent regression test.

use bft_sim_attacks::{actions_from_json, actions_to_json, FuzzAction};
use bft_sim_core::buggify::{fault_actions_from_json, fault_actions_to_json, FaultAction};
use bft_sim_core::json::Json;
use bft_sim_core::oracle::OracleViolation;
use bft_sim_core::trace::TraceEvent;
use bft_sim_core::validator::DeliverySchedule;

use crate::scenario::{RunMode, ScenarioSpec};

/// The format tag every repro file carries.
pub const FORMAT: &str = "bft-sim-repro-v1";

/// A minimal, replayable description of one oracle violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The (shrunk) scenario.
    pub spec: ScenarioSpec,
    /// The residual adversary script, applied in [`RunMode::Scripted`].
    pub actions: Vec<FuzzAction>,
    /// The residual fault-catalog script (buggify actions), replayed by a
    /// scripted [`bft_sim_core::buggify::FaultInjector`]. Empty for repros
    /// minted before the fault catalog existed, or when the violation does
    /// not depend on injected faults; omitted from the JSON form then, so
    /// older `bft-sim-repro-v1` files parse unchanged.
    pub fault_actions: Vec<FaultAction>,
    /// When present, the violation reproduces through a pure schedule
    /// replay ([`RunMode::Replay`]) — no adversary involved at all.
    pub schedule: Option<DeliverySchedule>,
    /// The oracle that must fire ([`OracleViolation::oracle`]).
    pub oracle: String,
    /// The violation detail observed when the repro was minted.
    pub detail: String,
    /// The last trace events of the original failing run, as captured by
    /// the observability ring when the fuzzer ran with instrumentation on.
    /// Diagnostic context only — replaying the repro does not need it.
    /// Empty when the sweep ran without observability, and omitted from the
    /// JSON form then (older repro files parse unchanged).
    pub last_events: Vec<TraceEvent>,
}

impl Repro {
    /// Re-runs the repro and confirms the recorded oracle still fires.
    ///
    /// # Errors
    ///
    /// Returns a message when the run cannot be built (e.g. the spec needs
    /// the `testbug` feature) or when the oracle no longer fires — meaning
    /// either the bug is fixed or the repro went stale.
    pub fn check(&self) -> Result<OracleViolation, String> {
        let run = match &self.schedule {
            Some(schedule) => self.spec.run(RunMode::Replay(schedule))?,
            None => self.spec.run(RunMode::Scripted {
                actions: &self.actions,
                faults: &self.fault_actions,
            })?,
        };
        run.violations
            .into_iter()
            .find(|v| v.oracle == self.oracle)
            .ok_or_else(|| {
                format!(
                    "oracle \"{}\" did not fire — the repro no longer reproduces",
                    self.oracle
                )
            })
    }

    /// The repro as a JSON document (`"format": "bft-sim-repro-v1"`).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("format".to_string(), Json::from(FORMAT)),
            ("oracle".to_string(), Json::from(self.oracle.as_str())),
            ("detail".to_string(), Json::from(self.detail.as_str())),
            ("scenario".to_string(), self.spec.to_json()),
        ];
        if !self.actions.is_empty() {
            pairs.push(("actions".to_string(), actions_to_json(&self.actions)));
        }
        if !self.fault_actions.is_empty() {
            pairs.push((
                "fault_actions".to_string(),
                fault_actions_to_json(&self.fault_actions),
            ));
        }
        if let Some(schedule) = &self.schedule {
            pairs.push(("schedule".to_string(), schedule.to_json()));
        }
        if !self.last_events.is_empty() {
            pairs.push((
                "last_events".to_string(),
                Json::Arr(self.last_events.iter().map(TraceEvent::to_json).collect()),
            ));
        }
        Json::Obj(pairs)
    }

    /// Parses the format produced by [`Repro::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field; a missing or
    /// mismatched `"format"` tag is rejected up front.
    pub fn from_json(json: &Json) -> Result<Repro, String> {
        let format = json
            .get("format")
            .and_then(Json::as_str)
            .ok_or("repro: missing \"format\" tag")?;
        if format != FORMAT {
            return Err(format!("repro: format \"{format}\" is not \"{FORMAT}\""));
        }
        let oracle = json
            .get("oracle")
            .and_then(Json::as_str)
            .ok_or("repro: missing \"oracle\"")?
            .to_string();
        let detail = json
            .get("detail")
            .and_then(Json::as_str)
            .ok_or("repro: missing \"detail\"")?
            .to_string();
        let spec =
            ScenarioSpec::from_json(json.get("scenario").ok_or("repro: missing \"scenario\"")?)?;
        let actions = match json.get("actions") {
            Some(a) => actions_from_json(a)?,
            None => Vec::new(),
        };
        let fault_actions = match json.get("fault_actions") {
            Some(a) => fault_actions_from_json(a)?,
            None => Vec::new(),
        };
        let schedule = match json.get("schedule") {
            Some(s) => Some(DeliverySchedule::from_json(s)?),
            None => None,
        };
        let last_events = match json.get("last_events") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(TraceEvent::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("repro: \"last_events\" must be an array".into()),
            None => Vec::new(),
        };
        Ok(Repro {
            spec,
            actions,
            fault_actions,
            schedule,
            oracle,
            detail,
            last_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_sim_attacks::FuzzActionKind;
    use bft_sim_core::ids::NodeId;
    use bft_sim_protocols::registry::ProtocolKind;

    fn sample() -> Repro {
        Repro {
            spec: ScenarioSpec::baseline(ProtocolKind::HotStuffNs),
            actions: vec![
                FuzzAction {
                    msg_index: 3,
                    kind: FuzzActionKind::Drop,
                },
                FuzzAction {
                    msg_index: 9,
                    kind: FuzzActionKind::Replay {
                        dst: NodeId::new(2),
                        delay_micros: 500,
                    },
                },
            ],
            fault_actions: Vec::new(),
            schedule: None,
            oracle: "agreement".to_string(),
            detail: "slot 0: n1 decided v0x1 but n2 decided v0x2".to_string(),
            last_events: Vec::new(),
        }
    }

    #[test]
    fn json_round_trips() {
        let repro = sample();
        let text = repro.to_json().dump_pretty();
        assert!(
            !text.contains("last_events"),
            "an empty event dump must stay out of the JSON"
        );
        assert!(
            !text.contains("fault_actions"),
            "an empty fault script must stay out of the JSON"
        );
        let back = Repro::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, repro);
        assert_eq!(back.to_json().dump_pretty(), text);
    }

    #[test]
    fn json_round_trips_with_fault_actions() {
        use bft_sim_core::buggify::{FaultAction, FaultKind};

        let repro = Repro {
            fault_actions: vec![
                FaultAction {
                    index: 4,
                    kind: FaultKind::TargetedDrop {
                        dst: NodeId::new(3),
                    },
                },
                FaultAction {
                    index: 9,
                    kind: FaultKind::TimerSkew {
                        factor_permille: 2_500,
                    },
                },
            ],
            ..sample()
        };
        let text = repro.to_json().dump_pretty();
        assert!(text.contains("fault_actions"), "{text}");
        let back = Repro::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, repro);
        assert_eq!(back.to_json().dump_pretty(), text);
    }

    #[test]
    fn json_round_trips_with_an_event_dump() {
        use bft_sim_core::time::SimTime;
        use bft_sim_core::trace::{TraceEvent, TraceKind};

        let repro = Repro {
            last_events: vec![
                TraceEvent {
                    time: SimTime::from_micros(10),
                    node: NodeId::new(0),
                    kind: TraceKind::Sent {
                        dst: NodeId::new(1),
                        payload_type: "PbftMsg".into(),
                    },
                },
                TraceEvent {
                    time: SimTime::from_micros(20),
                    node: NodeId::new(1),
                    kind: TraceKind::Decided {
                        slot: 0,
                        value: bft_sim_core::value::Value::new(1),
                    },
                },
            ],
            ..sample()
        };
        let text = repro.to_json().dump_pretty();
        assert!(text.contains("last_events"), "{text}");
        let back = Repro::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, repro);
        assert_eq!(back.to_json().dump_pretty(), text);
    }

    #[test]
    fn golden_pre_net_repro_parses_and_replays_unchanged() {
        // Byte-for-byte what an older binary wrote, before the scenario
        // gained its net (topology/bandwidth/churn) block. Forward compat:
        // the file must parse with the legacy delay-only network, replay to
        // the same run as an identically-parameterised in-code spec, and
        // re-serialise without sprouting any of the new keys.
        let golden = r#"{
            "format": "bft-sim-repro-v1",
            "oracle": "termination",
            "detail": "n0 never decided",
            "scenario": {
                "protocol": "pbft",
                "n": 4,
                "seed": 0,
                "genesis_seed": 7,
                "lambda_micros": 1000000,
                "delay": {"Constant": {"micros": 100000}},
                "adversary_seed": 0,
                "intensity_permille": 0,
                "max_actions": 0,
                "target_decisions": 2,
                "time_cap_secs": 900,
                "inject_bug": false
            }
        }"#;
        let repro = Repro::from_json(&Json::parse(golden).unwrap()).unwrap();
        assert!(
            repro.spec.net.is_none(),
            "an absent net block means the legacy delay-only network"
        );
        let twin = ScenarioSpec {
            target_decisions: 2,
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        assert_eq!(repro.spec, twin);

        let text = repro.to_json().dump_pretty();
        for new_key in ["\"net\"", "topology", "bandwidth", "churn"] {
            assert!(!text.contains(new_key), "{new_key} leaked into {text}");
        }

        let replayed = repro.spec.run(RunMode::Generate).unwrap();
        let expected = twin.run(RunMode::Generate).unwrap();
        assert_eq!(replayed.result, expected.result);
        assert_eq!(replayed.schedule, expected.schedule);
    }

    #[test]
    fn format_tag_is_enforced() {
        let err =
            Repro::from_json(&Json::parse("{\"oracle\": \"agreement\"}").unwrap()).unwrap_err();
        assert!(err.contains("format"), "{err}");
        let mut doc = sample().to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::from("bft-sim-repro-v999");
        }
        let err = Repro::from_json(&doc).unwrap_err();
        assert!(err.contains("v999"), "{err}");
    }

    #[test]
    fn stale_repro_is_detected() {
        // A clean baseline run cannot fire the agreement oracle, so checking
        // a repro that claims it must fire has to fail loudly.
        let repro = Repro {
            actions: Vec::new(),
            ..sample()
        };
        let err = repro.check().unwrap_err();
        assert!(err.contains("no longer reproduces"), "{err}");
    }
}
