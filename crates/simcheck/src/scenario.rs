//! Randomized-but-deterministic fuzz scenarios.
//!
//! A [`ScenarioSpec`] pins *everything* a run depends on — protocol, scale,
//! seeds, delay distribution, partition window, adversary budget — as plain
//! integers, so the spec itself is the reproducer: serialising it to JSON and
//! running it again yields the bit-identical run. Scenarios are drawn from a
//! seeded RNG by [`ScenarioSpec::generate`] and executed (and oracle-checked)
//! by [`ScenarioSpec::run`] in one of three modes:
//!
//! - [`RunMode::Generate`] — the adversary rolls fresh actions within its
//!   budget and logs them;
//! - [`RunMode::Scripted`] — a previously logged action list is re-applied
//!   verbatim (the shrinker's probe mode);
//! - [`RunMode::Replay`] — a recorded [`DeliverySchedule`] is replayed with
//!   the adversary bypassed entirely (the engine's validator path).

use bft_sim_attacks::{FuzzAction, FuzzBudget, PartitionAttack, RandomizedAdversary};
use bft_sim_core::adversary::{Adversary, AdversaryApi, Fate};
use bft_sim_core::buggify::{FaultAction, FaultInjector, FaultLog, FaultPreset, FaultStats};
use bft_sim_core::config::RunConfig;
use bft_sim_core::dist::Dist;
use bft_sim_core::engine::SimulationBuilder;
use bft_sim_core::json::Json;
use bft_sim_core::message::Message;
use bft_sim_core::metrics::RunResult;
use bft_sim_core::network::{NetworkModel, SampledNetwork};
use bft_sim_core::obs::ObsConfig;
use bft_sim_core::oracle::{
    OracleInput, OracleObserver, OracleSuite, OracleViolation, OutageWindow,
};
use bft_sim_core::scheduler::SchedulerKind;
use bft_sim_core::time::{SimDuration, SimTime};
use bft_sim_core::validator::DeliverySchedule;
use bft_sim_net::churn::{ChurnPlan, ChurnedNetwork};
use bft_sim_net::partition::{CrossTraffic, PartitionPlan};
use bft_sim_net::topology::{BandwidthNetwork, LinkTopology};
use bft_sim_protocols::registry::ProtocolKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A network delay distribution with integer-microsecond parameters, so the
/// spec JSON round-trips exactly (no float formatting involved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelaySpec {
    /// Every message takes exactly `micros`.
    Constant {
        /// The fixed delay.
        micros: u64,
    },
    /// Uniform in `[lo_micros, hi_micros)`.
    Uniform {
        /// Lower bound (inclusive).
        lo_micros: u64,
        /// Upper bound (exclusive).
        hi_micros: u64,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean delay.
        mean_micros: u64,
        /// Standard deviation.
        std_micros: u64,
    },
}

impl DelaySpec {
    /// The engine-facing distribution (milliseconds, as [`Dist`] expects).
    pub fn to_dist(self) -> Dist {
        let ms = |micros: u64| micros as f64 / 1000.0;
        match self {
            DelaySpec::Constant { micros } => Dist::constant(ms(micros)),
            DelaySpec::Uniform {
                lo_micros,
                hi_micros,
            } => Dist::uniform(ms(lo_micros), ms(hi_micros)),
            DelaySpec::Normal {
                mean_micros,
                std_micros,
            } => Dist::normal(ms(mean_micros), ms(std_micros)),
        }
    }

    /// The distribution mean in microseconds; ring topologies use it as the
    /// per-hop latency and the clustered shape scales its WAN links from it.
    pub fn mean_micros(self) -> u64 {
        match self {
            DelaySpec::Constant { micros } => micros,
            DelaySpec::Uniform {
                lo_micros,
                hi_micros,
            } => lo_micros / 2 + hi_micros / 2,
            DelaySpec::Normal { mean_micros, .. } => mean_micros,
        }
    }

    /// Externally tagged JSON, mirroring the schedule-fate format.
    pub fn to_json(self) -> Json {
        match self {
            DelaySpec::Constant { micros } => {
                Json::obj([("Constant", Json::obj([("micros", Json::from(micros))]))])
            }
            DelaySpec::Uniform {
                lo_micros,
                hi_micros,
            } => Json::obj([(
                "Uniform",
                Json::obj([
                    ("lo_micros", Json::from(lo_micros)),
                    ("hi_micros", Json::from(hi_micros)),
                ]),
            )]),
            DelaySpec::Normal {
                mean_micros,
                std_micros,
            } => Json::obj([(
                "Normal",
                Json::obj([
                    ("mean_micros", Json::from(mean_micros)),
                    ("std_micros", Json::from(std_micros)),
                ]),
            )]),
        }
    }

    /// Parses the format produced by [`DelaySpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<DelaySpec, String> {
        let field = |body: &Json, name: &str| -> Result<u64, String> {
            body.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("delay: bad \"{name}\""))
        };
        if let Some(body) = json.get("Constant") {
            Ok(DelaySpec::Constant {
                micros: field(body, "micros")?,
            })
        } else if let Some(body) = json.get("Uniform") {
            Ok(DelaySpec::Uniform {
                lo_micros: field(body, "lo_micros")?,
                hi_micros: field(body, "hi_micros")?,
            })
        } else if let Some(body) = json.get("Normal") {
            Ok(DelaySpec::Normal {
                mean_micros: field(body, "mean_micros")?,
                std_micros: field(body, "std_micros")?,
            })
        } else {
            Err(format!("delay: unknown variant {json}"))
        }
    }
}

/// A half/half network split over a time window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Partition start (ms).
    pub start_ms: u64,
    /// Partition end (ms).
    pub end_ms: u64,
    /// `true` drops cross traffic; `false` holds it until resolution.
    pub drop: bool,
}

impl PartitionSpec {
    /// The spec as a JSON object.
    pub fn to_json(self) -> Json {
        Json::obj([
            ("start_ms", Json::from(self.start_ms)),
            ("end_ms", Json::from(self.end_ms)),
            ("drop", Json::from(self.drop)),
        ])
    }

    /// Parses the format produced by [`PartitionSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<PartitionSpec, String> {
        Ok(PartitionSpec {
            start_ms: json
                .get("start_ms")
                .and_then(Json::as_u64)
                .ok_or("partition: bad \"start_ms\"")?,
            end_ms: json
                .get("end_ms")
                .and_then(Json::as_u64)
                .ok_or("partition: bad \"end_ms\"")?,
            drop: json
                .get("drop")
                .and_then(Json::as_bool)
                .ok_or("partition: bad \"drop\"")?,
        })
    }
}

/// The topology shape of a scenario's link-level network block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Every ordered pair connected; latency is the scenario's delay
    /// distribution on every link.
    FullMesh,
    /// Fully connected ring embedding: per-link latency grows with ring
    /// distance (the delay mean per hop).
    Ring,
    /// Partially connected ring: long-range links are pruned by the
    /// topology seed; immediate neighbours always stay connected.
    RingGradient,
    /// Two fast LAN clusters joined by slower WAN links; the bandwidth cap
    /// applies to the WAN links only.
    Clustered,
}

impl TopologyKind {
    /// The spec-facing name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::FullMesh => "full_mesh",
            TopologyKind::Ring => "ring",
            TopologyKind::RingGradient => "ring_gradient",
            TopologyKind::Clustered => "clustered",
        }
    }

    /// Parses [`name`](TopologyKind::name).
    pub fn parse(name: &str) -> Option<TopologyKind> {
        match name {
            "full_mesh" => Some(TopologyKind::FullMesh),
            "ring" => Some(TopologyKind::Ring),
            "ring_gradient" => Some(TopologyKind::RingGradient),
            "clustered" => Some(TopologyKind::Clustered),
            _ => None,
        }
    }
}

/// A seeded node-churn schedule: `crashes` staggered down-windows drawn
/// from `seed`, each lasting `[min_down_ms, max_down_ms)`, spread over the
/// scenario's time cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Seed of the schedule's own RNG (independent of every other seed).
    pub seed: u64,
    /// Number of down-windows to draw.
    pub crashes: u64,
    /// Minimum down time (ms, inclusive).
    pub min_down_ms: u64,
    /// Maximum down time (ms, exclusive).
    pub max_down_ms: u64,
}

impl ChurnSpec {
    /// The spec as a JSON object.
    pub fn to_json(self) -> Json {
        Json::obj([
            ("seed", Json::from(self.seed)),
            ("crashes", Json::from(self.crashes)),
            ("min_down_ms", Json::from(self.min_down_ms)),
            ("max_down_ms", Json::from(self.max_down_ms)),
        ])
    }

    /// Parses the format produced by [`ChurnSpec::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(json: &Json) -> Result<ChurnSpec, String> {
        let field = |name: &str| -> Result<u64, String> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("churn: bad \"{name}\""))
        };
        Ok(ChurnSpec {
            seed: field("seed")?,
            crashes: field("crashes")?,
            min_down_ms: field("min_down_ms")?,
            max_down_ms: field("max_down_ms")?,
        })
    }
}

/// Link-level network realism: topology shape, per-link bandwidth and node
/// churn. A spec without this block runs the legacy delay-only sampled
/// network; a `full_mesh` block with unlimited bandwidth and no churn is
/// bit-identical to that legacy path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetSpec {
    /// The topology shape.
    pub topology: TopologyKind,
    /// Per-link capacity in bytes per second; `None` = unlimited.
    pub bandwidth: Option<u64>,
    /// Shape seed for [`TopologyKind::RingGradient`]; 0 (and omitted from
    /// JSON) for the deterministic shapes.
    pub topology_seed: u64,
    /// Optional node-churn schedule layered over the topology.
    pub churn: Option<ChurnSpec>,
}

impl NetSpec {
    /// A full-mesh block with the given bandwidth cap and no churn — the
    /// bandwidth-contention building block.
    pub fn full_mesh(bandwidth: Option<u64>) -> NetSpec {
        NetSpec {
            topology: TopologyKind::FullMesh,
            bandwidth,
            topology_seed: 0,
            churn: None,
        }
    }

    /// The spec as a JSON object; unset options are omitted so the block
    /// stays minimal.
    pub fn to_json(self) -> Json {
        let mut pairs = vec![("topology".to_string(), Json::from(self.topology.name()))];
        if let Some(bw) = self.bandwidth {
            pairs.push(("bandwidth".to_string(), Json::from(bw)));
        }
        if self.topology_seed != 0 {
            pairs.push(("topology_seed".to_string(), Json::from(self.topology_seed)));
        }
        if let Some(churn) = self.churn {
            pairs.push(("churn".to_string(), churn.to_json()));
        }
        Json::Obj(pairs)
    }

    /// Parses the format produced by [`NetSpec::to_json`]. Unknown fields
    /// are rejected; `"topology"` is required.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown field.
    pub fn from_json(json: &Json) -> Result<NetSpec, String> {
        let Json::Obj(pairs) = json else {
            return Err("net: expected a JSON object".into());
        };
        let mut spec = NetSpec::full_mesh(None);
        let mut saw_topology = false;
        for (key, value) in pairs {
            match key.as_str() {
                "topology" => {
                    let name = value.as_str().ok_or("net: bad value for \"topology\"")?;
                    spec.topology = TopologyKind::parse(name)
                        .ok_or_else(|| format!("net: unknown topology \"{name}\""))?;
                    saw_topology = true;
                }
                "bandwidth" => {
                    spec.bandwidth =
                        Some(value.as_u64().ok_or("net: bad value for \"bandwidth\"")?);
                }
                "topology_seed" => {
                    spec.topology_seed = value
                        .as_u64()
                        .ok_or("net: bad value for \"topology_seed\"")?;
                }
                "churn" => spec.churn = Some(ChurnSpec::from_json(value)?),
                other => return Err(format!("net: unknown field \"{other}\"")),
            }
        }
        if !saw_topology {
            return Err("net: missing \"topology\"".into());
        }
        Ok(spec)
    }
}

/// One fully pinned fuzz scenario. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The protocol under test.
    pub protocol: ProtocolKind,
    /// Number of nodes.
    pub n: usize,
    /// The run seed (network sampling, protocol randomness).
    pub seed: u64,
    /// Genesis seed for proposal digests.
    pub genesis_seed: u64,
    /// The protocols' timeout parameter λ, in microseconds.
    pub lambda_micros: u64,
    /// Network delay distribution.
    pub delay: DelaySpec,
    /// Optional link-level network block (topology, bandwidth, churn);
    /// absent = the legacy delay-only network.
    pub net: Option<NetSpec>,
    /// Optional half/half partition window.
    pub partition: Option<PartitionSpec>,
    /// Seed for the randomized adversary's own RNG (independent of `seed`).
    pub adversary_seed: u64,
    /// Adversary intensity in permille (0 = benign, 1000 = full budget).
    pub intensity_permille: u64,
    /// Hard cap on adversary actions; `0` disables the adversary.
    pub max_actions: u64,
    /// Decisions every correct node must reach.
    pub target_decisions: u64,
    /// Simulated-time cap in seconds.
    pub time_cap_secs: u64,
    /// Arms the feature-gated seeded safety bug (`testbug`).
    pub inject_bug: bool,
    /// Injection delay of the seeded bug's forged certificate, microseconds.
    /// Only meaningful with `inject_bug`; the default (1 ms) rushes the
    /// forgery in long before any honest quorum can form.
    pub bug_delay_micros: u64,
    /// Buggify fault-catalog intensity (see [`bft_sim_core::buggify`]).
    pub fault_preset: FaultPreset,
    /// Seed for the fault injector's own RNG (independent of `seed` and
    /// `adversary_seed`); irrelevant under [`FaultPreset::Calm`].
    pub fault_seed: u64,
}

/// How [`ScenarioSpec::run`] drives the adversary.
#[derive(Debug, Clone, Copy)]
pub enum RunMode<'a> {
    /// Roll fresh adversary actions and fault-catalog faults from the
    /// scenario's budget and preset, logging both.
    Generate,
    /// Re-apply exactly these previously logged adversary actions and fault
    /// actions.
    Scripted {
        /// The adversary actions to re-apply, by message index.
        actions: &'a [FuzzAction],
        /// The fault-catalog actions to re-apply, by site index.
        faults: &'a [FaultAction],
    },
    /// Replay a recorded delivery schedule; the adversary and the fault
    /// injector are bypassed (the recorded fates already embody wire faults).
    Replay(&'a DeliverySchedule),
}

impl<'a> RunMode<'a> {
    /// Scripted mode with adversary actions only (no fault-catalog faults).
    pub fn scripted(actions: &'a [FuzzAction]) -> RunMode<'a> {
        RunMode::Scripted {
            actions,
            faults: &[],
        }
    }
}

/// A finished, oracle-checked run.
#[derive(Debug)]
pub struct CheckedRun {
    /// The engine's metrics and trace.
    pub result: RunResult,
    /// The per-message fates of the run, in send order.
    pub schedule: DeliverySchedule,
    /// The adversary actions that were applied (empty in replay mode).
    pub actions: Vec<FuzzAction>,
    /// The fault-catalog actions that were applied (empty in replay mode and
    /// under [`FaultPreset::Calm`]).
    pub fault_actions: Vec<FaultAction>,
    /// Per-kind counters of the applied fault-catalog actions.
    pub fault_stats: FaultStats,
    /// Every oracle violation the suite found (empty = clean).
    pub violations: Vec<OracleViolation>,
}

impl CheckedRun {
    /// Whether the named oracle fired on this run.
    pub fn violates(&self, oracle: &str) -> bool {
        self.violations.iter().any(|v| v.oracle == oracle)
    }
}

/// The scales the generator draws from, weighted toward small (fast) runs.
const SCALES: [usize; 6] = [4, 4, 7, 7, 10, 16];

impl ScenarioSpec {
    /// A quiet single-run scenario: constant 100 ms delays, no partition, no
    /// adversary. The starting point for hand-built specs and `from_json`.
    pub fn baseline(protocol: ProtocolKind) -> ScenarioSpec {
        ScenarioSpec {
            protocol,
            n: 4,
            seed: 0,
            genesis_seed: 7,
            lambda_micros: 1_000_000,
            delay: DelaySpec::Constant { micros: 100_000 },
            net: None,
            partition: None,
            adversary_seed: 0,
            intensity_permille: 0,
            max_actions: 0,
            target_decisions: protocol.measured_decisions(),
            time_cap_secs: 900,
            inject_bug: false,
            bug_delay_micros: 1_000,
            fault_preset: FaultPreset::Calm,
            fault_seed: 0,
        }
    }

    /// Draws a scenario from `scenario_seed`: protocol from `protocols`,
    /// scale from {4, 7, 10, 16} (small-biased), one of three delay
    /// distributions bounded well under λ = 1 s, ~30% fully benign runs,
    /// ~25% of the rest partitioned. `inject_bug` forces PBFT (the seeded
    /// bug forges PBFT commit certificates). `fault_preset` selects the
    /// buggify catalog intensity; benign draws stay [`FaultPreset::Calm`]
    /// (a benign run with injected faults would not be benign). The fault
    /// seed is drawn last, so every earlier field is unchanged from what the
    /// same `scenario_seed` drew before the catalog existed.
    pub fn generate(
        scenario_seed: u64,
        protocols: &[ProtocolKind],
        intensity_permille: u64,
        max_actions: u64,
        inject_bug: bool,
        fault_preset: FaultPreset,
    ) -> ScenarioSpec {
        assert!(
            !protocols.is_empty(),
            "generate needs at least one protocol"
        );
        let mut rng = SmallRng::seed_from_u64(scenario_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let protocol = if inject_bug {
            ProtocolKind::Pbft
        } else {
            protocols[rng.gen_range(0..protocols.len() as u64) as usize]
        };
        let n = SCALES[rng.gen_range(0..SCALES.len() as u64) as usize];
        let seed = rng.gen_range(0..u64::MAX);
        let adversary_seed = rng.gen_range(0..u64::MAX);
        let genesis_seed = rng.gen_range(1..u64::MAX);
        let delay = match rng.gen_range(0..3u64) {
            0 => DelaySpec::Constant { micros: 100_000 },
            1 => DelaySpec::Uniform {
                lo_micros: 50_000,
                hi_micros: 300_000,
            },
            _ => DelaySpec::Normal {
                mean_micros: 250_000,
                std_micros: 50_000,
            },
        };
        let benign = rng.gen_bool(0.3) && !inject_bug;
        let partitioned = rng.gen_bool(0.25) && !benign;
        let partition = partitioned.then(|| {
            let start_ms = rng.gen_range(0..2_000u64);
            let dur_ms = rng.gen_range(1_000..8_000u64);
            PartitionSpec {
                start_ms,
                end_ms: start_ms + dur_ms,
                drop: rng.gen_bool(0.5),
            }
        });
        let fault_seed = rng.gen_range(0..u64::MAX);
        let fault_preset = if benign {
            FaultPreset::Calm
        } else {
            fault_preset
        };
        // The link-level network block is drawn after every legacy field, so
        // a given scenario_seed draws the same protocol/scale/seeds/delay it
        // always has. Benign draws stay on the legacy delay-only network (a
        // pruned topology or churn window could legitimately stall liveness);
        // bug-injection runs do too, so the forged certificate always lands.
        let with_net = rng.gen_bool(0.25) && !benign && !inject_bug;
        let net = with_net.then(|| {
            let topology = match rng.gen_range(0..4u64) {
                0 => TopologyKind::FullMesh,
                1 => TopologyKind::Ring,
                2 => TopologyKind::RingGradient,
                _ => TopologyKind::Clustered,
            };
            let bandwidth = rng
                .gen_bool(0.5)
                .then(|| rng.gen_range(10_000..1_000_000u64));
            let topology_seed = if topology == TopologyKind::RingGradient {
                rng.gen_range(1..u64::MAX)
            } else {
                0
            };
            let churn = rng.gen_bool(0.3).then(|| ChurnSpec {
                seed: rng.gen_range(0..u64::MAX),
                crashes: rng.gen_range(1..4u64),
                min_down_ms: 500,
                max_down_ms: 4_000,
            });
            NetSpec {
                topology,
                bandwidth,
                topology_seed,
                churn,
            }
        });
        ScenarioSpec {
            protocol,
            n,
            seed,
            genesis_seed,
            lambda_micros: 1_000_000,
            delay,
            net,
            partition,
            adversary_seed,
            intensity_permille,
            max_actions: if benign { 0 } else { max_actions },
            target_decisions: protocol.measured_decisions(),
            time_cap_secs: 900,
            inject_bug,
            bug_delay_micros: 1_000,
            fault_preset,
            // A calm spec never builds an injector, and its JSON form omits
            // the faults block entirely — zero the seed so the omission
            // round-trips exactly.
            fault_seed: if fault_preset == FaultPreset::Calm {
                0
            } else {
                fault_seed
            },
        }
    }

    /// Whether a [`RunMode::Generate`] run of this spec stays entirely
    /// inside the protocol's fault and network model, so the termination
    /// oracle is owed a decision.
    pub fn is_benign(&self) -> bool {
        self.net.is_none()
            && self.partition.is_none()
            && self.max_actions == 0
            && !self.inject_bug
            && self.fault_preset == FaultPreset::Calm
    }

    /// Whether the *only* thing taking a [`RunMode::Generate`] run of this
    /// spec outside the protocol's model is scheduled churn on an otherwise
    /// unrestricted network: full-mesh topology, no bandwidth cap, no
    /// partition, no adversary budget, no seeded bug, calm faults. Such runs
    /// still owe termination, but with per-node decision debt suspended
    /// across the scheduled down-windows (the termination oracle's
    /// churn-aware reading). Restricted topologies and bandwidth caps stay
    /// exempt — multi-hop latency and queueing can stall progress without
    /// any protocol bug.
    pub fn churn_only(&self) -> bool {
        matches!(
            self.net,
            Some(net) if net.churn.is_some()
                && net.topology == TopologyKind::FullMesh
                && net.bandwidth.is_none()
        ) && self.partition.is_none()
            && self.max_actions == 0
            && !self.inject_bug
            && self.fault_preset == FaultPreset::Calm
    }

    /// The scheduled churn windows of this spec as oracle-facing
    /// [`OutageWindow`]s (empty without a churn block). Rebuilt
    /// deterministically from the same seed and horizon the network stack
    /// uses, so the oracle sees exactly the schedule the run executed.
    ///
    /// # Errors
    ///
    /// Returns a message when the churn block is degenerate (same conditions
    /// as [`ChurnPlan::staggered`]).
    pub fn outage_windows(&self) -> Result<Vec<OutageWindow>, String> {
        let Some(c) = self.net.and_then(|n| n.churn) else {
            return Ok(Vec::new());
        };
        let plan = ChurnPlan::staggered(
            self.n,
            c.seed,
            c.crashes as usize,
            c.min_down_ms,
            c.max_down_ms,
            self.time_cap_secs.saturating_mul(1_000),
        )
        .map_err(|e| format!("scenario churn: {e}"))?;
        Ok(plan
            .windows()
            .iter()
            .map(|w| OutageWindow {
                node: w.node,
                start: w.start,
                end: w.end,
            })
            .collect())
    }

    fn config(&self) -> RunConfig {
        self.protocol
            .configure(
                RunConfig::new(self.n)
                    .with_seed(self.seed)
                    .with_lambda_ms(self.lambda_micros as f64 / 1000.0)
                    .with_time_cap(SimDuration::from_secs(self.time_cap_secs as f64)),
            )
            .with_target_decisions(self.target_decisions)
    }

    /// The engine-facing network stack: the legacy delay-only sampled
    /// network when no [`NetSpec`] block is present, otherwise a
    /// bandwidth/topology stack with optional churn layered on top. Ring
    /// shapes use the delay mean as the per-hop latency; the clustered shape
    /// uses the delay distribution on LAN links and 4× the mean (with the
    /// bandwidth cap) on WAN links.
    ///
    /// # Errors
    ///
    /// Returns a message when the block describes a degenerate topology or
    /// churn schedule ([`bft_sim_core::error::SimError::InvalidConfig`]).
    fn network(&self) -> Result<Box<dyn NetworkModel>, String> {
        let Some(net) = self.net else {
            return Ok(Box::new(SampledNetwork::new(self.delay.to_dist())));
        };
        let hop_ms = self.delay.mean_micros() as f64 / 1000.0;
        let topo = match net.topology {
            TopologyKind::FullMesh => {
                LinkTopology::full_mesh(self.n, self.delay.to_dist(), net.bandwidth)
            }
            TopologyKind::Ring => LinkTopology::ring(self.n, hop_ms, net.bandwidth),
            TopologyKind::RingGradient => {
                LinkTopology::ring_gradient(self.n, hop_ms, net.bandwidth, net.topology_seed)
            }
            TopologyKind::Clustered => LinkTopology::clustered(
                self.n,
                self.delay.to_dist(),
                None,
                Dist::constant(hop_ms * 4.0),
                net.bandwidth,
            ),
        }
        .map_err(|e| format!("scenario net: {e}"))?;
        let base = BandwidthNetwork::new(topo);
        match net.churn {
            None => Ok(Box::new(base)),
            Some(c) => {
                let plan = ChurnPlan::staggered(
                    self.n,
                    c.seed,
                    c.crashes as usize,
                    c.min_down_ms,
                    c.max_down_ms,
                    self.time_cap_secs.saturating_mul(1_000),
                )
                .map_err(|e| format!("scenario churn: {e}"))?;
                Ok(Box::new(ChurnedNetwork::new(base, plan)))
            }
        }
    }

    fn partition_attack(&self) -> Option<PartitionAttack> {
        self.partition.map(|p| {
            PartitionAttack::new(PartitionPlan::halves(
                self.n,
                SimTime::from_millis(p.start_ms),
                SimTime::from_millis(p.end_ms),
                if p.drop {
                    CrossTraffic::Drop
                } else {
                    CrossTraffic::HoldUntilResolve
                },
            ))
        })
    }

    #[cfg(feature = "testbug")]
    fn extra_adversary(&self) -> Result<Option<Box<dyn Adversary>>, String> {
        Ok(self.inject_bug.then(|| {
            Box::new(crate::testbug::QuorumForgeAdversary::with_delay_micros(
                self.bug_delay_micros,
            )) as Box<dyn Adversary>
        }))
    }

    #[cfg(not(feature = "testbug"))]
    fn extra_adversary(&self) -> Result<Option<Box<dyn Adversary>>, String> {
        if self.inject_bug {
            return Err(
                "scenario arms the seeded bug: rebuild with --features testbug to run it".into(),
            );
        }
        Ok(None)
    }

    /// Runs the scenario in `mode` under the default scheduler backend and
    /// checks it against the standard oracle suite. Same spec + same mode ⇒
    /// bit-identical [`CheckedRun`].
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration is rejected by the engine or
    /// the spec needs the `testbug` feature and it is not compiled in.
    pub fn run(&self, mode: RunMode<'_>) -> Result<CheckedRun, String> {
        self.run_with(mode, SchedulerKind::default())
    }

    /// [`run`](ScenarioSpec::run) with an explicit scheduler backend. The
    /// backend is an *execution* option, not part of the scenario (it is
    /// deliberately absent from the spec JSON): the scheduler determinism
    /// contract guarantees a bit-identical [`CheckedRun`] — results,
    /// schedule, actions and violations — under every backend, which is why
    /// reproducers stay valid no matter which backend found them.
    ///
    /// # Errors
    ///
    /// Same as [`run`](ScenarioSpec::run).
    pub fn run_with(
        &self,
        mode: RunMode<'_>,
        scheduler: SchedulerKind,
    ) -> Result<CheckedRun, String> {
        self.run_observed(mode, scheduler, None)
    }

    /// The observability configuration matching this scenario: a ring of
    /// `last_k` recent events and the protocol's own phase classifier, so
    /// the flow matrix is labelled with this protocol's phases.
    pub fn obs_config(&self, last_k: usize) -> ObsConfig {
        ObsConfig::new(last_k).with_classifier(self.protocol.phase_classifier())
    }

    /// [`run_with`](ScenarioSpec::run_with) with optional observability.
    /// Like the scheduler backend, instrumentation is an *execution* option,
    /// not part of the scenario: everything it records derives from
    /// simulated quantities, so the run itself — and the `observability`
    /// block — is bit-identical with it on or off, under every backend.
    ///
    /// # Errors
    ///
    /// Same as [`run`](ScenarioSpec::run).
    pub fn run_observed(
        &self,
        mode: RunMode<'_>,
        scheduler: SchedulerKind,
        obs: Option<ObsConfig>,
    ) -> Result<CheckedRun, String> {
        let kind = self.protocol;
        let cfg = self.config();
        let benign = match mode {
            RunMode::Generate => self.is_benign(),
            RunMode::Scripted { actions, faults } => {
                actions.is_empty()
                    && faults.is_empty()
                    && self.net.is_none()
                    && self.partition.is_none()
                    && !self.inject_bug
            }
            // A replayed schedule may embody drops; liveness is never owed.
            RunMode::Replay(_) => false,
        };
        // Churn-only specs owe termination too, with decision debt suspended
        // across the scheduled down-windows.
        let churn_owed = match mode {
            RunMode::Generate => self.churn_only(),
            RunMode::Scripted { actions, faults } => {
                actions.is_empty() && faults.is_empty() && self.churn_only()
            }
            RunMode::Replay(_) => false,
        };
        let mut expect = kind.expectations(&cfg, benign || churn_owed);
        if churn_owed {
            expect.outages = self.outage_windows()?;
        }
        let factory = kind.factory(&cfg, self.genesis_seed);
        let observer = OracleObserver::new();
        let probe = observer.clone();
        let network = self.network()?;

        let (result, schedule, actions, fault_log) = match mode {
            RunMode::Replay(schedule) => {
                let mut replay = schedule.clone();
                replay.rewind();
                let mut builder = SimulationBuilder::new(cfg)
                    .network(network)
                    .observer(observer)
                    .scheduler(scheduler)
                    .replay_schedule(replay)
                    .protocols(factory);
                if let Some(obs) = obs {
                    builder = builder.observability(obs);
                }
                let sim = builder
                    .build()
                    .map_err(|e| format!("replay build failed: {e}"))?;
                (sim.run(), schedule.clone(), Vec::new(), None)
            }
            RunMode::Generate | RunMode::Scripted { .. } => {
                let fuzz = match mode {
                    RunMode::Generate => RandomizedAdversary::generate(
                        self.adversary_seed,
                        FuzzBudget::with_intensity(
                            self.intensity_permille as f64 / 1000.0,
                            self.max_actions,
                        ),
                    ),
                    RunMode::Scripted { actions, .. } => RandomizedAdversary::scripted(actions),
                    RunMode::Replay(_) => unreachable!("handled above"),
                };
                let injector = match mode {
                    RunMode::Generate => (self.fault_preset != FaultPreset::Calm).then(|| {
                        FaultInjector::generate(self.fault_seed, self.fault_preset.config(), self.n)
                    }),
                    RunMode::Scripted { faults, .. } => {
                        (!faults.is_empty()).then(|| FaultInjector::scripted(faults))
                    }
                    RunMode::Replay(_) => unreachable!("handled above"),
                };
                let log = fuzz.log_handle();
                let fault_log: Option<FaultLog> = injector.as_ref().map(FaultInjector::log_handle);
                let stack = Stack {
                    partition: self.partition_attack(),
                    fuzz,
                    extra: self.extra_adversary()?,
                };
                let mut builder = SimulationBuilder::new(cfg)
                    .network(network)
                    .observer(observer)
                    .scheduler(scheduler)
                    .adversary(stack)
                    .protocols(factory);
                if let Some(obs) = obs {
                    builder = builder.observability(obs);
                }
                if let Some(injector) = injector {
                    builder = builder.faults(injector);
                }
                let sim = builder.build().map_err(|e| format!("build failed: {e}"))?;
                let (result, schedule) = sim.run_recorded();
                (result, schedule, log.snapshot(), fault_log)
            }
        };

        let violations = OracleSuite::standard().check(&OracleInput::from_result(
            &result,
            Some(probe.snapshot()),
            expect,
        ));
        let (fault_actions, fault_stats) = match fault_log {
            Some(log) => (log.snapshot(), log.stats()),
            None => (Vec::new(), FaultStats::default()),
        };
        Ok(CheckedRun {
            result,
            schedule,
            actions,
            fault_actions,
            fault_stats,
            violations,
        })
    }

    /// The spec as a JSON object (the reproducer's `"scenario"` field).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("protocol".to_string(), Json::from(self.protocol.name())),
            ("n".to_string(), Json::from(self.n)),
            ("seed".to_string(), Json::from(self.seed)),
            ("genesis_seed".to_string(), Json::from(self.genesis_seed)),
            ("lambda_micros".to_string(), Json::from(self.lambda_micros)),
            ("delay".to_string(), self.delay.to_json()),
        ];
        // Like the faults block, the net block is omitted when absent, so
        // legacy specs serialise byte-identically to the old format.
        if let Some(net) = self.net {
            pairs.push(("net".to_string(), net.to_json()));
        }
        if let Some(p) = self.partition {
            pairs.push(("partition".to_string(), p.to_json()));
        }
        pairs.extend([
            (
                "adversary_seed".to_string(),
                Json::from(self.adversary_seed),
            ),
            (
                "intensity_permille".to_string(),
                Json::from(self.intensity_permille),
            ),
            ("max_actions".to_string(), Json::from(self.max_actions)),
            (
                "target_decisions".to_string(),
                Json::from(self.target_decisions),
            ),
            ("time_cap_secs".to_string(), Json::from(self.time_cap_secs)),
            ("inject_bug".to_string(), Json::from(self.inject_bug)),
        ]);
        if self.bug_delay_micros != 1_000 {
            pairs.push((
                "bug_delay_micros".to_string(),
                Json::from(self.bug_delay_micros),
            ));
        }
        // The faults block is omitted for calm specs, so pre-catalog repro
        // files and calm specs serialise byte-identically to the old format.
        if self.fault_preset != FaultPreset::Calm {
            pairs.push((
                "faults".to_string(),
                Json::obj([
                    ("preset", Json::from(self.fault_preset.name())),
                    ("seed", Json::from(self.fault_seed)),
                ]),
            ));
        }
        Json::Obj(pairs)
    }

    /// Parses the format produced by [`ScenarioSpec::to_json`]. Unknown
    /// fields are rejected; absent fields keep [`ScenarioSpec::baseline`]
    /// defaults; `"protocol"` is required.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown field.
    pub fn from_json(json: &Json) -> Result<ScenarioSpec, String> {
        let Json::Obj(pairs) = json else {
            return Err("scenario: expected a JSON object".into());
        };
        let mut spec = ScenarioSpec::baseline(ProtocolKind::Pbft);
        let mut saw_protocol = false;
        let mut saw_target = false;
        for (key, value) in pairs {
            let bad = || format!("scenario: bad value for \"{key}\"");
            match key.as_str() {
                "protocol" => {
                    let name = value.as_str().ok_or_else(bad)?;
                    spec.protocol = ProtocolKind::parse(name)
                        .ok_or_else(|| format!("scenario: unknown protocol \"{name}\""))?;
                    saw_protocol = true;
                }
                "n" => spec.n = value.as_u64().ok_or_else(bad)? as usize,
                "seed" => spec.seed = value.as_u64().ok_or_else(bad)?,
                "genesis_seed" => spec.genesis_seed = value.as_u64().ok_or_else(bad)?,
                "lambda_micros" => spec.lambda_micros = value.as_u64().ok_or_else(bad)?,
                "delay" => spec.delay = DelaySpec::from_json(value)?,
                "net" => spec.net = Some(NetSpec::from_json(value)?),
                "partition" => spec.partition = Some(PartitionSpec::from_json(value)?),
                "adversary_seed" => spec.adversary_seed = value.as_u64().ok_or_else(bad)?,
                "intensity_permille" => spec.intensity_permille = value.as_u64().ok_or_else(bad)?,
                "max_actions" => spec.max_actions = value.as_u64().ok_or_else(bad)?,
                "target_decisions" => {
                    spec.target_decisions = value.as_u64().ok_or_else(bad)?;
                    saw_target = true;
                }
                "time_cap_secs" => spec.time_cap_secs = value.as_u64().ok_or_else(bad)?,
                "inject_bug" => spec.inject_bug = value.as_bool().ok_or_else(bad)?,
                "bug_delay_micros" => spec.bug_delay_micros = value.as_u64().ok_or_else(bad)?,
                "faults" => {
                    let Json::Obj(fields) = value else {
                        return Err("scenario: \"faults\" must be an object".into());
                    };
                    for (fkey, fvalue) in fields {
                        match fkey.as_str() {
                            "preset" => {
                                let name = fvalue
                                    .as_str()
                                    .ok_or("scenario: bad value for \"faults.preset\"")?;
                                spec.fault_preset = FaultPreset::parse(name)
                                    .map_err(|e| format!("scenario: {e}"))?;
                            }
                            "seed" => {
                                spec.fault_seed = fvalue
                                    .as_u64()
                                    .ok_or("scenario: bad value for \"faults.seed\"")?;
                            }
                            other => {
                                return Err(format!("scenario: unknown field \"faults.{other}\""))
                            }
                        }
                    }
                }
                other => return Err(format!("scenario: unknown field \"{other}\"")),
            }
        }
        if !saw_protocol {
            return Err("scenario: missing \"protocol\"".into());
        }
        if !saw_target {
            spec.target_decisions = spec.protocol.measured_decisions();
        }
        Ok(spec)
    }
}

/// The composed scenario adversary: partition rules first (a dropped message
/// never reaches the fuzzer, mirroring a real network split), then the
/// randomized fuzzer, with an optional extra adversary (the seeded bug)
/// riding along for init/timers.
struct Stack {
    partition: Option<PartitionAttack>,
    fuzz: RandomizedAdversary,
    extra: Option<Box<dyn Adversary>>,
}

impl Adversary for Stack {
    fn init(&mut self, api: &mut AdversaryApi<'_>) {
        if let Some(extra) = &mut self.extra {
            extra.init(api);
        }
    }

    fn attack(
        &mut self,
        msg: &mut Message,
        proposed: SimDuration,
        api: &mut AdversaryApi<'_>,
    ) -> Fate {
        let proposed = match &mut self.partition {
            Some(p) => match p.attack(msg, proposed, api) {
                Fate::Drop => return Fate::Drop,
                Fate::Deliver(d) => d,
            },
            None => proposed,
        };
        self.fuzz.attack(msg, proposed, api)
    }

    fn on_timer(&mut self, tag: u64, api: &mut AdversaryApi<'_>) {
        if let Some(extra) = &mut self.extra {
            extra.on_timer(tag, api);
        }
    }

    fn name(&self) -> &'static str {
        "simcheck"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_pbft_run_is_clean() {
        let spec = ScenarioSpec::baseline(ProtocolKind::Pbft);
        assert!(spec.is_benign());
        let run = spec.run(RunMode::Generate).unwrap();
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert!(run.actions.is_empty());
        assert!(!run.schedule.is_empty());
        assert!(run.result.is_clean());
    }

    #[test]
    fn churn_only_runs_owe_no_false_termination_violations() {
        // Full-mesh + churn with a tight time cap: down-windows land right
        // on top of the decision rounds, so a down node misses slots, global
        // completions stall and the run times out — exactly the shape that
        // used to produce false liveness violations. The churn-aware oracle
        // must excuse every such stall while still checking safety.
        let mut stalled = 0;
        for churn_seed in 0..12u64 {
            let spec = ScenarioSpec {
                n: 4,
                time_cap_secs: 10,
                net: Some(NetSpec {
                    topology: TopologyKind::FullMesh,
                    bandwidth: None,
                    topology_seed: 0,
                    churn: Some(ChurnSpec {
                        seed: churn_seed,
                        crashes: 3,
                        min_down_ms: 2_000,
                        max_down_ms: 4_000,
                    }),
                }),
                ..ScenarioSpec::baseline(ProtocolKind::Pbft)
            };
            assert!(spec.churn_only());
            assert!(!spec.is_benign(), "churn-only is not benign");
            let run = spec.run(RunMode::Generate).unwrap();
            assert!(
                run.violations.is_empty(),
                "churn seed {churn_seed}: {:?}",
                run.violations
            );
            if run.result.timed_out || run.result.decisions_completed() < spec.target_decisions {
                stalled += 1;
            }
        }
        assert!(
            stalled > 0,
            "no churn schedule clipped a decision round; the regression shape was never exercised"
        );

        // A bandwidth cap (or non-mesh topology) leaves the old exemption in
        // place: termination is simply not owed, churn or not.
        let capped = ScenarioSpec {
            net: Some(NetSpec {
                topology: TopologyKind::FullMesh,
                bandwidth: Some(64_000),
                topology_seed: 0,
                churn: Some(ChurnSpec {
                    seed: 1,
                    crashes: 1,
                    min_down_ms: 500,
                    max_down_ms: 4_000,
                }),
            }),
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        assert!(!capped.churn_only());
    }

    #[test]
    fn generation_is_deterministic_and_varied() {
        let kinds = ProtocolKind::extended();
        let a = ScenarioSpec::generate(42, &kinds, 500, 48, false, FaultPreset::Calm);
        let b = ScenarioSpec::generate(42, &kinds, 500, 48, false, FaultPreset::Calm);
        assert_eq!(a, b, "same seed must draw the same scenario");

        let scales: std::collections::HashSet<usize> = (0..64)
            .map(|s| ScenarioSpec::generate(s, &kinds, 500, 48, false, FaultPreset::Calm).n)
            .collect();
        assert!(scales.len() > 1, "64 seeds must cover several scales");
        let benign = (0..64)
            .filter(|&s| {
                ScenarioSpec::generate(s, &kinds, 500, 48, false, FaultPreset::Calm).is_benign()
            })
            .count();
        assert!((5..60).contains(&benign), "benign mix off: {benign}/64");
    }

    #[test]
    fn runs_are_reproducible() {
        let kinds = [ProtocolKind::Pbft, ProtocolKind::HotStuffNs];
        let spec = ScenarioSpec::generate(7, &kinds, 500, 48, false, FaultPreset::Calm);
        let a = spec.run(RunMode::Generate).unwrap();
        let b = spec.run(RunMode::Generate).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn scripted_replay_matches_the_generated_run() {
        let spec = ScenarioSpec {
            intensity_permille: 500,
            max_actions: 32,
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let generated = spec.run(RunMode::Generate).unwrap();
        assert!(!generated.actions.is_empty(), "budget must act on PBFT");
        let scripted = spec.run(RunMode::scripted(&generated.actions)).unwrap();
        assert_eq!(scripted.result, generated.result);
        assert_eq!(scripted.actions, generated.actions);
    }

    #[test]
    fn schedule_replay_reproduces_decisions() {
        let spec = ScenarioSpec {
            delay: DelaySpec::Normal {
                mean_micros: 250_000,
                std_micros: 50_000,
            },
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let original = spec.run(RunMode::Generate).unwrap();
        let replayed = spec.run(RunMode::Replay(&original.schedule)).unwrap();
        assert!(replayed.violations.is_empty(), "{:?}", replayed.violations);
        assert_eq!(replayed.result.decided, original.result.decided);
    }

    #[test]
    fn scheduler_backend_does_not_change_a_checked_run() {
        let spec = ScenarioSpec::generate(
            5,
            &ProtocolKind::extended(),
            500,
            48,
            false,
            FaultPreset::Calm,
        );
        let heap = spec
            .run_with(RunMode::Generate, SchedulerKind::Heap)
            .unwrap();
        let mut wheel = spec
            .run_with(RunMode::Generate, SchedulerKind::Wheel)
            .unwrap();
        // The backend's own diagnostics are the only permitted difference.
        wheel.result.scheduler = heap.result.scheduler.clone();
        assert_eq!(heap.result, wheel.result);
        assert_eq!(heap.schedule, wheel.schedule);
        assert_eq!(heap.actions, wheel.actions);
        assert_eq!(heap.violations, wheel.violations);
    }

    #[test]
    fn schedule_recorded_on_heap_replays_on_wheel() {
        let spec = ScenarioSpec::baseline(ProtocolKind::HotStuffNs);
        let original = spec
            .run_with(RunMode::Generate, SchedulerKind::Heap)
            .unwrap();
        let replayed = spec
            .run_with(RunMode::Replay(&original.schedule), SchedulerKind::Wheel)
            .unwrap();
        assert!(replayed.violations.is_empty(), "{:?}", replayed.violations);
        assert_eq!(replayed.result.decided, original.result.decided);
    }

    #[test]
    fn observability_does_not_perturb_the_run() {
        let spec = ScenarioSpec::generate(
            9,
            &ProtocolKind::extended(),
            500,
            48,
            false,
            FaultPreset::Calm,
        );
        let plain = spec.run(RunMode::Generate).unwrap();
        let observed = spec
            .run_observed(
                RunMode::Generate,
                SchedulerKind::default(),
                Some(spec.obs_config(32)),
            )
            .unwrap();
        let mut stripped = observed.result.clone();
        stripped.observability = None;
        assert_eq!(stripped, plain.result, "instrumentation changed the run");
        assert_eq!(observed.schedule, plain.schedule);
        assert_eq!(observed.actions, plain.actions);
        assert_eq!(observed.violations, plain.violations);

        let obs = observed.result.observability.unwrap();
        assert_eq!(
            obs.phase_total(bft_sim_core::obs::UNCLASSIFIED_PHASE),
            0,
            "the scenario's classifier must label its own protocol's traffic"
        );
        assert!(!obs.recent_events.is_empty());
        assert!(obs.recent_events.len() <= 32);
    }

    #[test]
    fn observed_runs_agree_across_scheduler_backends() {
        let spec = ScenarioSpec::generate(
            5,
            &ProtocolKind::extended(),
            500,
            48,
            false,
            FaultPreset::Calm,
        );
        let heap = spec
            .run_observed(
                RunMode::Generate,
                SchedulerKind::Heap,
                Some(spec.obs_config(32)),
            )
            .unwrap();
        let mut wheel = spec
            .run_observed(
                RunMode::Generate,
                SchedulerKind::Wheel,
                Some(spec.obs_config(32)),
            )
            .unwrap();
        wheel.result.scheduler = heap.result.scheduler.clone();
        assert_eq!(heap.result, wheel.result);
        let (a, b) = (
            heap.result.observability.as_ref().unwrap(),
            wheel.result.observability.as_ref().unwrap(),
        );
        assert_eq!(a.to_json().dump_pretty(), b.to_json().dump_pretty());
    }

    #[test]
    fn large_n_runs_agree_across_backends_and_sweep_threads() {
        // The determinism contract must survive the n = 256 regime, where the
        // scheduler queues are three orders of magnitude deeper and the flow
        // matrices switch to the sparse representation.
        let spec = ScenarioSpec {
            n: 256,
            target_decisions: 2,
            delay: DelaySpec::Normal {
                mean_micros: 250_000,
                std_micros: 50_000,
            },
            ..ScenarioSpec::baseline(ProtocolKind::HotStuffNs)
        };
        let heap = spec
            .run_observed(
                RunMode::Generate,
                SchedulerKind::Heap,
                Some(spec.obs_config(32)),
            )
            .unwrap();
        let mut wheel = spec
            .run_observed(
                RunMode::Generate,
                SchedulerKind::Wheel,
                Some(spec.obs_config(32)),
            )
            .unwrap();
        wheel.result.scheduler = heap.result.scheduler.clone();
        assert_eq!(heap.result, wheel.result);
        assert_eq!(heap.schedule, wheel.schedule);
        assert_eq!(heap.violations, wheel.violations);
        let heap_obs = heap.result.observability.as_ref().unwrap();
        let wheel_obs = wheel.result.observability.as_ref().unwrap();
        let heap_json = heap_obs.to_json().dump_pretty();
        assert_eq!(heap_json, wheel_obs.to_json().dump_pretty());
        assert!(
            heap_json.contains("\"cells\""),
            "n = 256 flows must serialise in the sparse form"
        );
        // The thread axis composes with scale: sweeping the same large spec
        // in parallel yields runs bit-identical to the serial heap run
        // (modulo the instrumentation block the sweep runs don't enable).
        let mut plain = heap.result.clone();
        plain.observability = None;
        let swept = bft_sim_core::sweep::sweep(4, 4, |_| {
            spec.run_with(RunMode::Generate, SchedulerKind::Wheel)
                .unwrap()
        });
        for slot in swept {
            let mut run = slot.expect("no sweep panic");
            run.result.scheduler = heap.result.scheduler.clone();
            assert_eq!(plain, run.result);
            assert_eq!(heap.schedule, run.schedule);
        }
    }

    #[test]
    fn partitioned_pbft_stays_safe() {
        let spec = ScenarioSpec {
            partition: Some(PartitionSpec {
                start_ms: 0,
                end_ms: 5_000,
                drop: true,
            }),
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        assert!(!spec.is_benign());
        let run = spec.run(RunMode::Generate).unwrap();
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        let latency = run.result.latency().unwrap().as_secs_f64();
        assert!(latency >= 5.0, "decided during the partition: {latency}");
    }

    #[test]
    fn spec_json_round_trips() {
        let kinds = ProtocolKind::extended();
        for seed in 0..16 {
            let spec = ScenarioSpec::generate(seed, &kinds, 500, 48, false, FaultPreset::Calm);
            let text = spec.to_json().dump_pretty();
            let back = ScenarioSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "seed {seed}");
        }
    }

    #[test]
    fn spec_json_is_strict() {
        let err = ScenarioSpec::from_json(&Json::parse("{\"n\": 4}").unwrap()).unwrap_err();
        assert!(err.contains("missing \"protocol\""), "{err}");
        let err = ScenarioSpec::from_json(
            &Json::parse("{\"protocol\": \"pbft\", \"nodes\": 4}").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown field \"nodes\""), "{err}");
        let err =
            ScenarioSpec::from_json(&Json::parse("{\"protocol\": \"raft\"}").unwrap()).unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }

    /// A baseline spec with the chaos catalog armed: no adversary budget, no
    /// partition — every perturbation comes from the fault injector.
    fn chaos_spec() -> ScenarioSpec {
        ScenarioSpec {
            fault_preset: FaultPreset::Chaos,
            fault_seed: 0xFA_17,
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        }
    }

    #[test]
    fn faulted_runs_are_deterministic_across_backends() {
        let spec = chaos_spec();
        assert!(!spec.is_benign(), "an armed catalog ends the liveness debt");
        let heap = spec
            .run_with(RunMode::Generate, SchedulerKind::Heap)
            .unwrap();
        assert!(
            heap.fault_stats.total() > 0,
            "chaos must fire on a full PBFT run: {:?}",
            heap.fault_stats
        );
        assert_eq!(heap.fault_stats.total() as usize, heap.fault_actions.len());
        assert!(heap.violations.is_empty(), "{:?}", heap.violations);
        let mut wheel = spec
            .run_with(RunMode::Generate, SchedulerKind::Wheel)
            .unwrap();
        wheel.result.scheduler = heap.result.scheduler.clone();
        assert_eq!(heap.result, wheel.result);
        assert_eq!(heap.fault_actions, wheel.fault_actions);
        assert_eq!(heap.fault_stats, wheel.fault_stats);
        assert_eq!(heap.violations, wheel.violations);
    }

    #[test]
    fn scripted_faults_reproduce_a_faulted_run() {
        let spec = chaos_spec();
        let generated = spec.run(RunMode::Generate).unwrap();
        assert!(!generated.fault_actions.is_empty());
        // Replaying the fault log verbatim (scripted mode ignores the
        // preset) must reproduce the run bit for bit — the property the
        // shrinker's fault ddmin rests on.
        let calm_replayer = ScenarioSpec {
            fault_preset: FaultPreset::Calm,
            fault_seed: 0,
            ..spec.clone()
        };
        let scripted = calm_replayer
            .run(RunMode::Scripted {
                actions: &[],
                faults: &generated.fault_actions,
            })
            .unwrap();
        assert_eq!(scripted.result, generated.result);
        assert_eq!(scripted.schedule, generated.schedule);
        assert_eq!(scripted.fault_stats, generated.fault_stats);
        // Scripted application can interleave kinds differently across
        // sites; compare as sets keyed by site + index.
        let key = |a: &bft_sim_core::buggify::FaultAction| (a.kind.site() as u8, a.index);
        let mut a = generated.fault_actions.clone();
        let mut b = scripted.fault_actions.clone();
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn calm_preset_is_bit_identical_to_no_injector_and_never_fires() {
        let plain = ScenarioSpec::baseline(ProtocolKind::Pbft);
        let calm = ScenarioSpec {
            fault_preset: FaultPreset::Calm,
            fault_seed: 999, // must be irrelevant
            ..plain.clone()
        };
        let a = plain.run(RunMode::Generate).unwrap();
        let b = calm.run(RunMode::Generate).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(b.fault_stats.total(), 0);
        assert!(b.fault_actions.is_empty());
    }

    #[test]
    fn fault_block_json_round_trips_and_stays_out_of_calm_specs() {
        let chaos = chaos_spec();
        let text = chaos.to_json().dump_pretty();
        assert!(text.contains("\"faults\""), "{text}");
        assert!(text.contains("\"chaos\""), "{text}");
        let back = ScenarioSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, chaos);

        // Calm specs serialise byte-identically to the pre-catalog format,
        // and pre-catalog files (no faults block) parse unchanged.
        let calm = ScenarioSpec::baseline(ProtocolKind::Pbft);
        let calm_text = calm.to_json().dump_pretty();
        assert!(!calm_text.contains("faults"), "{calm_text}");
        let back = ScenarioSpec::from_json(&Json::parse(&calm_text).unwrap()).unwrap();
        assert_eq!(back.fault_preset, FaultPreset::Calm);
        assert_eq!(back.fault_seed, 0);

        let err = ScenarioSpec::from_json(
            &Json::parse(
                "{\"protocol\": \"pbft\", \"faults\": {\"preset\": \"chaos\", \"volume\": 9}}",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown field \"faults.volume\""), "{err}");
        let err = ScenarioSpec::from_json(
            &Json::parse("{\"protocol\": \"pbft\", \"faults\": {\"preset\": \"mayhem\"}}").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown fault preset"), "{err}");
    }

    /// A net block with every option armed, for round-trip tests.
    fn rich_net() -> NetSpec {
        NetSpec {
            topology: TopologyKind::RingGradient,
            bandwidth: Some(64_000),
            topology_seed: 0xF00D,
            churn: Some(ChurnSpec {
                seed: 11,
                crashes: 2,
                min_down_ms: 500,
                max_down_ms: 4_000,
            }),
        }
    }

    #[test]
    fn net_block_json_round_trips_and_stays_out_of_legacy_specs() {
        let spec = ScenarioSpec {
            net: Some(rich_net()),
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        assert!(!spec.is_benign(), "a net block ends the liveness debt");
        let text = spec.to_json().dump_pretty();
        assert!(text.contains("\"net\""), "{text}");
        assert!(text.contains("\"ring_gradient\""), "{text}");
        let back = ScenarioSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, spec);

        // Minimal block: unset options are omitted.
        let minimal = ScenarioSpec {
            net: Some(NetSpec::full_mesh(None)),
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let text = minimal.to_json().dump_pretty();
        assert!(!text.contains("bandwidth"), "{text}");
        assert!(!text.contains("topology_seed"), "{text}");
        assert!(!text.contains("churn"), "{text}");
        let back = ScenarioSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, minimal);

        // Legacy specs carry no net block at all.
        let legacy = ScenarioSpec::baseline(ProtocolKind::Pbft);
        assert!(!legacy.to_json().dump_pretty().contains("\"net\""));

        let err = ScenarioSpec::from_json(
            &Json::parse("{\"protocol\": \"pbft\", \"net\": {\"topology\": \"torus\"}}").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown topology"), "{err}");
        let err = ScenarioSpec::from_json(
            &Json::parse(
                "{\"protocol\": \"pbft\", \"net\": {\"topology\": \"ring\", \"mtu\": 1500}}",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown field \"mtu\""), "{err}");
    }

    #[test]
    fn degenerate_net_blocks_are_rejected_at_run_time() {
        let spec = ScenarioSpec {
            net: Some(NetSpec::full_mesh(Some(0))),
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let err = spec.run(RunMode::Generate).unwrap_err();
        assert!(err.contains("bandwidth must be positive"), "{err}");

        let spec = ScenarioSpec {
            net: Some(NetSpec {
                churn: Some(ChurnSpec {
                    seed: 1,
                    crashes: 1,
                    min_down_ms: 5_000,
                    max_down_ms: 5_000,
                }),
                ..NetSpec::full_mesh(None)
            }),
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let err = spec.run(RunMode::Generate).unwrap_err();
        assert!(err.contains("down-time range is empty"), "{err}");
    }

    #[test]
    fn unlimited_full_mesh_matches_the_delay_only_network() {
        // The legacy-equivalence acceptance criterion: a full mesh with
        // unlimited bandwidth and no churn consumes the same RNG stream as
        // the delay-only sampled network, so the runs are bit-identical.
        let legacy = ScenarioSpec {
            delay: DelaySpec::Normal {
                mean_micros: 250_000,
                std_micros: 50_000,
            },
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let meshed = ScenarioSpec {
            net: Some(NetSpec::full_mesh(None)),
            ..legacy.clone()
        };
        let a = legacy.run(RunMode::Generate).unwrap();
        let b = meshed.run(RunMode::Generate).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn narrow_links_shift_the_latency_distribution() {
        // The contention acceptance criterion: the same scenario over narrow
        // links queues messages and measurably shifts delivery latencies.
        let legacy = ScenarioSpec::baseline(ProtocolKind::Pbft);
        let contended = ScenarioSpec {
            net: Some(NetSpec::full_mesh(Some(2_000))),
            ..legacy.clone()
        };
        let obs = |spec: &ScenarioSpec| {
            spec.run_observed(
                RunMode::Generate,
                SchedulerKind::default(),
                Some(spec.obs_config(8)),
            )
            .unwrap()
            .result
            .observability
            .unwrap()
        };
        let fast = obs(&legacy);
        let slow = obs(&contended);
        assert_eq!(
            fast.link_queue_delay.count(),
            0,
            "unlimited links never queue"
        );
        assert!(
            slow.link_queue_delay.count() > 0,
            "narrow links must queue traffic"
        );
        assert!(
            !slow.link_queues.is_empty(),
            "per-link queue stats must identify the bottlenecks"
        );
        let mean_latency = |o: &bft_sim_core::obs::Observability| {
            let (sum, n) = o.delivery_latency.iter().fold((0u64, 0u64), |(s, c), h| {
                (s + h.sum_micros(), c + h.count())
            });
            sum as f64 / n.max(1) as f64
        };
        assert!(
            mean_latency(&slow) > mean_latency(&fast),
            "serialization + queueing must slow deliveries: {} <= {}",
            mean_latency(&slow),
            mean_latency(&fast)
        );
    }

    #[test]
    fn bandwidth_and_churn_runs_agree_across_backends_and_threads() {
        // The full stack — ring-gradient topology, narrow links, churn —
        // must stay byte-identical across scheduler backends and sweep
        // thread counts (the determinism acceptance criterion).
        let spec = ScenarioSpec {
            net: Some(rich_net()),
            ..ScenarioSpec::baseline(ProtocolKind::Pbft)
        };
        let heap = spec
            .run_with(RunMode::Generate, SchedulerKind::Heap)
            .unwrap();
        let mut wheel = spec
            .run_with(RunMode::Generate, SchedulerKind::Wheel)
            .unwrap();
        wheel.result.scheduler = heap.result.scheduler.clone();
        assert_eq!(heap.result, wheel.result);
        assert_eq!(heap.schedule, wheel.schedule);
        assert_eq!(heap.violations, wheel.violations);
        for threads in [1, 4] {
            let swept = bft_sim_core::sweep::sweep(threads, threads, |_| {
                spec.run_with(RunMode::Generate, SchedulerKind::Wheel)
                    .unwrap()
            });
            for slot in swept {
                let mut run = slot.expect("no sweep panic");
                run.result.scheduler = heap.result.scheduler.clone();
                assert_eq!(heap.result, run.result, "threads={threads}");
                assert_eq!(heap.schedule, run.schedule, "threads={threads}");
            }
        }
    }
}
