//! End-to-end tests of the simulation engine with a small quorum protocol.

use bft_sim_core::network::{ConstantNetwork, SampledNetwork};
use bft_sim_core::prelude::*;

/// A one-shot quorum protocol: node 0 broadcasts a proposal; every node that
/// receives it votes back to everyone; a node decides once it holds
/// `n - f` votes. Exercises send/broadcast/timers/decide paths.
#[derive(Debug)]
struct Quorum {
    votes: usize,
    voted: bool,
    decided: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum QMsg {
    Propose(u64),
    Vote(u64),
}

impl Quorum {
    fn new() -> Self {
        Quorum {
            votes: 0,
            voted: false,
            decided: false,
        }
    }

    fn maybe_vote(&mut self, v: u64, ctx: &mut Context<'_>) {
        if !self.voted {
            self.voted = true;
            ctx.broadcast(QMsg::Vote(v));
            self.votes += 1; // own vote
            self.maybe_decide(v, ctx);
        }
    }

    fn maybe_decide(&mut self, v: u64, ctx: &mut Context<'_>) {
        if !self.decided && self.votes >= ctx.n() - ctx.f() {
            self.decided = true;
            ctx.decide(Value::new(v));
        }
    }
}

impl Protocol for Quorum {
    fn init(&mut self, ctx: &mut Context<'_>) {
        if ctx.id() == NodeId::new(0) {
            ctx.broadcast(QMsg::Propose(42));
            self.maybe_vote(42, ctx);
        }
    }

    fn on_message(&mut self, msg: &Message, ctx: &mut Context<'_>) {
        match msg.downcast_ref::<QMsg>() {
            Some(QMsg::Propose(v)) => self.maybe_vote(*v, ctx),
            Some(QMsg::Vote(v)) => {
                self.votes += 1;
                self.maybe_vote(*v, ctx);
                self.maybe_decide(*v, ctx);
            }
            None => panic!("unexpected payload"),
        }
    }

    fn on_timer(&mut self, _timer: &Timer, _ctx: &mut Context<'_>) {}

    fn name(&self) -> &'static str {
        "quorum"
    }
}

fn quorum_factory(_id: NodeId) -> Box<dyn Protocol> {
    Box::new(Quorum::new())
}

fn build(cfg: RunConfig) -> Simulation {
    SimulationBuilder::new(cfg)
        .network(ConstantNetwork::new(SimDuration::from_millis(100.0)))
        .protocols(quorum_factory)
        .build()
        .expect("valid config")
}

#[test]
fn quorum_protocol_reaches_consensus() {
    let result = build(RunConfig::new(4).with_seed(1)).run();
    assert!(result.is_clean());
    assert_eq!(result.decisions_completed(), 1);
    // Propose (100 ms) + vote exchange (100 ms): all nodes decide by 200 ms.
    assert_eq!(result.latency().unwrap().as_millis_f64(), 200.0);
    for seq in &result.decided {
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].1, Value::new(42));
    }
}

#[test]
fn message_usage_is_counted() {
    let result = build(RunConfig::new(4).with_seed(1)).run();
    // Node 0 broadcasts Propose (3 msgs); each of 4 nodes broadcasts a vote
    // (4 * 3 = 12): 15 total.
    assert_eq!(result.honest_messages, 15);
    assert_eq!(result.adversary_messages, 0);
    assert_eq!(result.dropped_messages, 0);
}

#[test]
fn runs_are_deterministic_per_seed() {
    let mk = || {
        SimulationBuilder::new(RunConfig::new(7).with_seed(99))
            .network(SampledNetwork::new(Dist::normal(250.0, 50.0)))
            .protocols(quorum_factory)
            .build()
            .unwrap()
            .run()
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.honest_messages, b.honest_messages);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn different_seeds_differ() {
    let mk = |seed| {
        SimulationBuilder::new(RunConfig::new(7).with_seed(seed))
            .network(SampledNetwork::new(Dist::normal(250.0, 50.0)))
            .protocols(quorum_factory)
            .build()
            .unwrap()
            .run()
    };
    assert_ne!(mk(1).end_time, mk(2).end_time);
}

#[test]
fn record_and_replay_reproduce_decisions() {
    let (original, schedule) = SimulationBuilder::new(RunConfig::new(4).with_seed(5))
        .network(SampledNetwork::new(Dist::normal(250.0, 50.0)))
        .protocols(quorum_factory)
        .record_schedule(true)
        .build()
        .unwrap()
        .run_recorded();
    assert_eq!(schedule.len() as u64, original.honest_messages);

    let replayed = SimulationBuilder::new(RunConfig::new(4).with_seed(777)) // different seed!
        .network(ConstantNetwork::new(SimDuration::ZERO)) // ignored in replay
        .protocols(quorum_factory)
        .replay_schedule(schedule)
        .build()
        .unwrap()
        .run();
    Validator::check_replay(&original, &replayed).expect("replay matches");
    assert_eq!(original.end_time, replayed.end_time);
}

#[test]
fn time_cap_reports_timeout() {
    // A protocol that never decides: empty queue would stop it, so give it a
    // recurring timer to keep the run alive until the cap.
    #[derive(Debug)]
    struct Stuck;
    impl Protocol for Stuck {
        fn init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(10.0), ());
        }
        fn on_message(&mut self, _m: &Message, _c: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: &Timer, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(10.0), ());
        }
    }
    let result = SimulationBuilder::new(
        RunConfig::new(2)
            .with_seed(0)
            .with_time_cap(SimDuration::from_millis(100.0)),
    )
    .network(ConstantNetwork::new(SimDuration::from_millis(1.0)))
    .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::new(Stuck) })
    .build()
    .unwrap()
    .run();
    assert!(result.timed_out);
    assert_eq!(result.decisions_completed(), 0);
    assert_eq!(result.end_time.as_millis_f64(), 100.0);
}

#[test]
fn stalled_protocol_reports_timeout_on_drained_queue() {
    #[derive(Debug)]
    struct Silent;
    impl Protocol for Silent {
        fn init(&mut self, _ctx: &mut Context<'_>) {}
        fn on_message(&mut self, _m: &Message, _c: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: &Timer, _c: &mut Context<'_>) {}
    }
    let result = SimulationBuilder::new(RunConfig::new(2).with_seed(0))
        .network(ConstantNetwork::new(SimDuration::from_millis(1.0)))
        .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::new(Silent) })
        .build()
        .unwrap()
        .run();
    assert!(result.timed_out);
}

#[test]
fn safety_violation_is_detected() {
    // Nodes decide their own id: guaranteed conflict.
    #[derive(Debug)]
    struct Conflicting;
    impl Protocol for Conflicting {
        fn init(&mut self, ctx: &mut Context<'_>) {
            let id = ctx.id().as_u32() as u64;
            ctx.decide(Value::new(id));
        }
        fn on_message(&mut self, _m: &Message, _c: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: &Timer, _c: &mut Context<'_>) {}
    }
    let result = SimulationBuilder::new(RunConfig::new(3).with_seed(0))
        .network(ConstantNetwork::new(SimDuration::from_millis(1.0)))
        .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::new(Conflicting) })
        .build()
        .unwrap()
        .run();
    assert!(result.safety_violation.is_some());
}

#[test]
fn crashed_nodes_do_not_block_completion() {
    /// Adversary that fail-stops the last node before the run begins.
    struct CrashLast;
    impl Adversary for CrashLast {
        fn init(&mut self, api: &mut AdversaryApi<'_>) {
            let last = NodeId::new(api.n() as u32 - 1);
            assert!(api.crash(last));
        }
    }
    let result = SimulationBuilder::new(RunConfig::new(4).with_seed(3))
        .network(ConstantNetwork::new(SimDuration::from_millis(100.0)))
        .adversary(CrashLast)
        .protocols(quorum_factory)
        .build()
        .unwrap()
        .run();
    assert!(
        result.is_clean(),
        "violation: {:?}",
        result.safety_violation
    );
    assert_eq!(result.decisions_completed(), 1);
    assert!(result.decided[3].is_empty(), "crashed node decided nothing");
}

#[test]
fn dropping_adversary_counts_drops() {
    /// Drops every message to node 1.
    struct DropToOne;
    impl Adversary for DropToOne {
        fn attack(
            &mut self,
            msg: &mut Message,
            proposed: SimDuration,
            _api: &mut AdversaryApi<'_>,
        ) -> Fate {
            if msg.dst() == NodeId::new(1) {
                Fate::Drop
            } else {
                Fate::Deliver(proposed)
            }
        }
    }
    let result = SimulationBuilder::new(RunConfig::new(4).with_seed(3))
        .network(ConstantNetwork::new(SimDuration::from_millis(100.0)))
        .adversary(DropToOne)
        .protocols(quorum_factory)
        .build()
        .unwrap()
        .run();
    // Node 1 never hears anything, so the run cannot complete (it is honest
    // and counted) — it stalls or times out.
    assert!(result.timed_out);
    assert!(result.dropped_messages > 0);
}

#[test]
fn view_trace_is_recorded() {
    #[derive(Debug)]
    struct Viewer;
    impl Protocol for Viewer {
        fn init(&mut self, ctx: &mut Context<'_>) {
            ctx.enter_view(0);
            ctx.set_timer(SimDuration::from_millis(10.0), ());
        }
        fn on_message(&mut self, _m: &Message, _c: &mut Context<'_>) {}
        fn on_timer(&mut self, _t: &Timer, ctx: &mut Context<'_>) {
            ctx.enter_view(1);
            ctx.decide(Value::ONE);
        }
    }
    let result = SimulationBuilder::new(RunConfig::new(2).with_seed(0))
        .network(ConstantNetwork::new(SimDuration::from_millis(1.0)))
        .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::new(Viewer) })
        .build()
        .unwrap()
        .run();
    let timeline = result.trace.view_timeline(NodeId::new(0));
    assert_eq!(timeline.len(), 2);
    assert_eq!(timeline[0].1, 0);
    assert_eq!(timeline[1].1, 1);
}

#[test]
fn injected_messages_reach_nodes() {
    /// Injects a forged Propose claiming to come from node 0.
    struct Forger {
        done: bool,
    }
    impl Adversary for Forger {
        fn init(&mut self, api: &mut AdversaryApi<'_>) {
            api.set_timer(1, SimDuration::from_millis(5.0));
        }
        fn on_timer(&mut self, _tag: u64, api: &mut AdversaryApi<'_>) {
            if !self.done {
                self.done = true;
                for i in 1..api.n() as u32 {
                    api.inject(
                        NodeId::new(0),
                        NodeId::new(i),
                        SimDuration::from_millis(1.0),
                        QMsg::Propose(7),
                    );
                }
            }
        }
    }
    // Node 0 never proposes here (we use a follower-only factory), so any
    // consensus must come from the forged proposal.
    let result = SimulationBuilder::new(RunConfig::new(4).with_seed(0))
        .network(ConstantNetwork::new(SimDuration::from_millis(10.0)))
        .adversary(Forger { done: false })
        .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::new(Quorum::new()) })
        .build()
        .unwrap()
        .run();
    assert!(result.adversary_messages > 0);
    assert_eq!(result.decisions_completed(), 1);
    for seq in &result.decided {
        assert_eq!(seq[0].1, Value::new(7));
    }
}
