//! The buggify fault catalog: seeded, deterministic fault injection.
//!
//! Following the FoundationDB/TigerBeetle deterministic-simulation-testing
//! recipe, the engine exposes a small set of *injection sites* — timer
//! arming, wire transmission, and node dispatch — at which a
//! [`FaultInjector`] may perturb the run: skew a timer, deliver a message
//! twice, delay a reorder burst, drop traffic aimed at one victim, or tear
//! a node's action batch in half (a partial/torn state write). All faults
//! are sampled from the injector's *own* seeded RNG, so the fault sequence
//! depends only on the fault seed and the (run-seed-fixed) order of site
//! visits; every applied fault is logged as a [`FaultAction`] against its
//! site index, and the log can be re-run verbatim in **scripted** mode —
//! which is what lets the `simcheck` shrinker minimise fault sequences and
//! keep repro files replayable byte-for-byte.
//!
//! Fault intensity is chosen via [`FaultPreset`]: `calm` injects nothing
//! (and is bit-identical to running without an injector), `moderate`
//! enables timing faults (skew, duplicates, reorder bursts), and `chaos`
//! adds targeted drops and torn writes.

use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fasthash::FastMap;
use crate::ids::NodeId;
use crate::json::Json;
use crate::time::SimDuration;

/// Where in the engine a fault applies. Each site keeps its own 0-based
/// visit counter, so a fault's `index` is stable across replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// One wire transmission ([`route`](crate::engine) call), in send order.
    Wire,
    /// One timer arming (`Action::SetTimer`), in arming order.
    Timer,
    /// One node dispatch (init, message, or timer handler), in order.
    Dispatch,
}

/// One concrete fault from the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The armed timer's delay is scaled by `factor_permille / 1000`.
    TimerSkew {
        /// Scale factor in permille; 500 halves the delay, 2000 doubles it.
        factor_permille: u64,
    },
    /// The message is delivered normally *and* a second copy arrives
    /// `extra_micros` after the send.
    DuplicateDelivery {
        /// Delay of the duplicate copy, measured from the send instant.
        extra_micros: u64,
    },
    /// The message is delayed by `extra_micros` on top of its proposed
    /// delay — generated in bursts so consecutive messages swap order.
    ReorderDelay {
        /// Extra delay added on top of the proposed delivery delay.
        extra_micros: u64,
    },
    /// The message is dropped iff it is addressed to `dst` (the injector's
    /// victim in generate mode).
    TargetedDrop {
        /// The victim destination; transmissions to other nodes pass.
        dst: NodeId,
    },
    /// The dispatched node's buffered *output* actions (sends, broadcasts,
    /// timer ops) are truncated to the first `keep` — a partial/torn state
    /// write: the node's internal state advanced, but part of its output
    /// never happened. Oracle reports (`Decide`, `EnterView`, `Custom`)
    /// are never torn: they describe state the node already committed
    /// internally, and suppressing them would blind the safety checker
    /// instead of perturbing the protocol.
    TornWrite {
        /// Number of leading actions that survive.
        keep: u64,
    },
}

impl FaultKind {
    /// The injection site this fault kind applies at.
    pub fn site(self) -> FaultSite {
        match self {
            FaultKind::TimerSkew { .. } => FaultSite::Timer,
            FaultKind::DuplicateDelivery { .. }
            | FaultKind::ReorderDelay { .. }
            | FaultKind::TargetedDrop { .. } => FaultSite::Wire,
            FaultKind::TornWrite { .. } => FaultSite::Dispatch,
        }
    }
}

/// One logged fault: `kind` applied at the `index`-th visit of its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// 0-based visit index at the fault's site (see [`FaultKind::site`]).
    pub index: u64,
    /// The fault that was applied.
    pub kind: FaultKind,
}

/// Per-kind counters of applied faults, for "fires iff enabled" checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Applied [`FaultKind::TimerSkew`] count.
    pub timer_skews: u64,
    /// Applied [`FaultKind::DuplicateDelivery`] count.
    pub duplicates: u64,
    /// Applied [`FaultKind::ReorderDelay`] count.
    pub reorders: u64,
    /// Applied [`FaultKind::TargetedDrop`] count.
    pub targeted_drops: u64,
    /// Applied [`FaultKind::TornWrite`] count.
    pub torn_writes: u64,
}

impl FaultStats {
    /// Total applied faults across all kinds.
    pub fn total(&self) -> u64 {
        self.timer_skews + self.duplicates + self.reorders + self.targeted_drops + self.torn_writes
    }

    fn count(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::TimerSkew { .. } => self.timer_skews += 1,
            FaultKind::DuplicateDelivery { .. } => self.duplicates += 1,
            FaultKind::ReorderDelay { .. } => self.reorders += 1,
            FaultKind::TargetedDrop { .. } => self.targeted_drops += 1,
            FaultKind::TornWrite { .. } => self.torn_writes += 1,
        }
    }
}

/// Per-site probabilities and magnitudes for generate mode. Probabilities
/// are in permille (0..=1000) so configs hash and compare exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Permille chance an armed timer is skewed.
    pub timer_skew_permille: u32,
    /// Minimum skew factor, permille.
    pub skew_min_permille: u64,
    /// Maximum skew factor, permille (exclusive).
    pub skew_max_permille: u64,
    /// Permille chance a wire message is duplicated.
    pub duplicate_permille: u32,
    /// Maximum duplicate delay, microseconds (exclusive).
    pub duplicate_max_micros: u64,
    /// Permille chance a reorder burst starts at a wire message.
    pub reorder_permille: u32,
    /// Messages per reorder burst (the trigger included).
    pub reorder_burst: u32,
    /// Maximum extra reorder delay, microseconds (exclusive).
    pub reorder_max_micros: u64,
    /// Permille chance a victim-bound wire message is dropped.
    pub drop_permille: u32,
    /// Permille chance a dispatch's action batch is torn.
    pub torn_permille: u32,
    /// Hard cap on applied faults per run; 0 disables the catalog.
    pub max_faults: u64,
}

impl FaultConfig {
    /// The all-zero config: no site ever fires.
    pub fn calm() -> Self {
        FaultConfig {
            timer_skew_permille: 0,
            skew_min_permille: 0,
            skew_max_permille: 0,
            duplicate_permille: 0,
            duplicate_max_micros: 0,
            reorder_permille: 0,
            reorder_burst: 0,
            reorder_max_micros: 0,
            drop_permille: 0,
            torn_permille: 0,
            max_faults: 0,
        }
    }
}

/// Named fault-catalog intensity, selectable per scenario and recorded in
/// `bft-sim-repro-v1` files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPreset {
    /// No faults; bit-identical to running without an injector.
    #[default]
    Calm,
    /// Timing faults only: timer skew, duplicate delivery, reorder bursts.
    Moderate,
    /// Everything: timing faults plus targeted drops and torn writes.
    Chaos,
}

impl FaultPreset {
    /// Every preset, calm first.
    pub const ALL: [FaultPreset; 3] =
        [FaultPreset::Calm, FaultPreset::Moderate, FaultPreset::Chaos];

    /// The stable name used in CLI flags and repro files.
    pub fn name(self) -> &'static str {
        match self {
            FaultPreset::Calm => "calm",
            FaultPreset::Moderate => "moderate",
            FaultPreset::Chaos => "chaos",
        }
    }

    /// Parses [`name`](FaultPreset::name) output.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "calm" => Ok(FaultPreset::Calm),
            "moderate" => Ok(FaultPreset::Moderate),
            "chaos" => Ok(FaultPreset::Chaos),
            other => Err(format!("unknown fault preset \"{other}\"")),
        }
    }

    /// The generate-mode config this preset stands for.
    pub fn config(self) -> FaultConfig {
        match self {
            FaultPreset::Calm => FaultConfig::calm(),
            FaultPreset::Moderate => FaultConfig {
                timer_skew_permille: 40,
                skew_min_permille: 500,
                skew_max_permille: 3_000,
                duplicate_permille: 30,
                duplicate_max_micros: 400_000,
                reorder_permille: 25,
                reorder_burst: 4,
                reorder_max_micros: 250_000,
                drop_permille: 0,
                torn_permille: 0,
                max_faults: 64,
            },
            FaultPreset::Chaos => FaultConfig {
                timer_skew_permille: 80,
                skew_min_permille: 250,
                skew_max_permille: 4_000,
                duplicate_permille: 60,
                duplicate_max_micros: 800_000,
                reorder_permille: 50,
                reorder_burst: 6,
                reorder_max_micros: 500_000,
                drop_permille: 120,
                torn_permille: 15,
                max_faults: 160,
            },
        }
    }

    /// Whether this preset can emit `kind` at all (magnitudes aside).
    pub fn enables(self, kind: FaultKind) -> bool {
        let cfg = self.config();
        match kind {
            FaultKind::TimerSkew { .. } => cfg.timer_skew_permille > 0,
            FaultKind::DuplicateDelivery { .. } => cfg.duplicate_permille > 0,
            FaultKind::ReorderDelay { .. } => cfg.reorder_permille > 0,
            FaultKind::TargetedDrop { .. } => cfg.drop_permille > 0,
            FaultKind::TornWrite { .. } => cfg.torn_permille > 0,
        }
    }
}

/// What the injector did to one wire transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Untouched.
    None,
    /// Drop the message.
    Drop,
    /// Add this much delay on top of the proposed fate.
    Delay(SimDuration),
    /// Deliver normally and schedule a second copy this long after the send.
    Duplicate(SimDuration),
}

/// Shared handle onto the injector's fault log and stats, readable after
/// `Simulation::run` has consumed the injector itself.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    shared: Arc<Mutex<(Vec<FaultAction>, FaultStats)>>,
}

impl FaultLog {
    /// A copy of every applied fault so far, in application order.
    pub fn snapshot(&self) -> Vec<FaultAction> {
        self.shared.lock().expect("fault log lock").0.clone()
    }

    /// The per-kind counters so far.
    pub fn stats(&self) -> FaultStats {
        self.shared.lock().expect("fault log lock").1
    }

    fn push(&self, action: FaultAction) {
        let mut inner = self.shared.lock().expect("fault log lock");
        inner.0.push(action);
        inner.1.count(action.kind);
    }
}

enum Mode {
    /// Roll fresh faults from the seeded RNG, within the config.
    Generate {
        rng: SmallRng,
        cfg: FaultConfig,
        /// Victim of targeted drops, fixed per injector from the fault seed.
        target: NodeId,
        /// Remaining messages in the current reorder burst.
        burst_left: u32,
    },
    /// Apply exactly the given faults, keyed by site index.
    Scripted {
        wire: FastMap<u64, FaultKind>,
        timer: FastMap<u64, FaultKind>,
        dispatch: FastMap<u64, FaultKind>,
    },
}

/// The deterministic fault injector. Construct with
/// [`generate`](FaultInjector::generate) or
/// [`scripted`](FaultInjector::scripted), clone out the
/// [`log_handle`](FaultInjector::log_handle), and install it via
/// `SimulationBuilder::faults`.
pub struct FaultInjector {
    mode: Mode,
    log: FaultLog,
    wire_index: u64,
    timer_index: u64,
    dispatch_index: u64,
    applied: u64,
}

impl core::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FaultInjector")
            .field(
                "mode",
                match &self.mode {
                    Mode::Generate { .. } => &"generate",
                    Mode::Scripted { .. } => &"scripted",
                },
            )
            .field("wire_index", &self.wire_index)
            .field("timer_index", &self.timer_index)
            .field("dispatch_index", &self.dispatch_index)
            .field("applied", &self.applied)
            .finish()
    }
}

impl FaultInjector {
    /// Creates a generating injector with its own RNG seeded from `seed`.
    ///
    /// The seed is independent of the run and adversary seeds on purpose:
    /// the same fault pattern can be aimed at different network samples and
    /// attack sequences. `n` fixes the targeted-drop victim (`seed % n`).
    pub fn generate(seed: u64, cfg: FaultConfig, n: usize) -> Self {
        let target = NodeId::new((seed % n.max(1) as u64) as u32);
        FaultInjector {
            mode: Mode::Generate {
                rng: SmallRng::seed_from_u64(seed),
                cfg,
                target,
                burst_left: 0,
            },
            log: FaultLog::default(),
            wire_index: 0,
            timer_index: 0,
            dispatch_index: 0,
            applied: 0,
        }
    }

    /// Creates a scripted injector that re-applies exactly `actions`.
    ///
    /// Duplicate indices at the same site keep the last occurrence.
    pub fn scripted(actions: &[FaultAction]) -> Self {
        let mut wire = FastMap::default();
        let mut timer = FastMap::default();
        let mut dispatch = FastMap::default();
        for a in actions {
            match a.kind.site() {
                FaultSite::Wire => wire.insert(a.index, a.kind),
                FaultSite::Timer => timer.insert(a.index, a.kind),
                FaultSite::Dispatch => dispatch.insert(a.index, a.kind),
            };
        }
        FaultInjector {
            mode: Mode::Scripted {
                wire,
                timer,
                dispatch,
            },
            log: FaultLog::default(),
            wire_index: 0,
            timer_index: 0,
            dispatch_index: 0,
            applied: 0,
        }
    }

    /// A shared handle onto the fault log; clone it out before moving the
    /// injector into a `SimulationBuilder`.
    pub fn log_handle(&self) -> FaultLog {
        self.log.clone()
    }

    fn apply(&mut self, index: u64, kind: FaultKind) {
        self.applied += 1;
        self.log.push(FaultAction { index, kind });
    }

    /// Visits the wire site for a message addressed to `dst` and returns
    /// the fault to apply, if any. Called by the engine on every routed
    /// transmission, in send order.
    pub fn on_wire(&mut self, dst: NodeId) -> WireFault {
        let index = self.wire_index;
        self.wire_index += 1;
        let kind = match &mut self.mode {
            Mode::Scripted { wire, .. } => match wire.get(&index).copied() {
                // A scripted drop only ever hit its recorded victim; keep
                // that meaning when the script is replayed or shrunk.
                Some(FaultKind::TargetedDrop { dst: victim }) if victim != dst => None,
                other => other,
            },
            Mode::Generate {
                rng,
                cfg,
                target,
                burst_left,
            } => {
                if self.applied >= cfg.max_faults {
                    return WireFault::None;
                }
                // One roll per capability, in a fixed order, every message —
                // the RNG consumption pattern must not depend on earlier
                // outcomes or the fault sequence loses its meaning when
                // shrunk (same rule as the randomized adversary).
                let drop = roll(rng, cfg.drop_permille);
                let dup = roll(rng, cfg.duplicate_permille);
                let reorder = roll(rng, cfg.reorder_permille);
                let dup_extra = range(rng, cfg.duplicate_max_micros);
                let reorder_extra = range(rng, cfg.reorder_max_micros);
                if *burst_left > 0 {
                    *burst_left -= 1;
                    Some(FaultKind::ReorderDelay {
                        extra_micros: reorder_extra,
                    })
                } else if drop && dst == *target {
                    Some(FaultKind::TargetedDrop { dst })
                } else if dup {
                    Some(FaultKind::DuplicateDelivery {
                        extra_micros: dup_extra,
                    })
                } else if reorder {
                    *burst_left = cfg.reorder_burst.saturating_sub(1);
                    Some(FaultKind::ReorderDelay {
                        extra_micros: reorder_extra,
                    })
                } else {
                    None
                }
            }
        };
        match kind {
            Some(kind @ FaultKind::TargetedDrop { .. }) => {
                self.apply(index, kind);
                WireFault::Drop
            }
            Some(kind @ FaultKind::DuplicateDelivery { extra_micros }) => {
                self.apply(index, kind);
                WireFault::Duplicate(SimDuration::from_micros(extra_micros))
            }
            Some(kind @ FaultKind::ReorderDelay { extra_micros }) => {
                self.apply(index, kind);
                WireFault::Delay(SimDuration::from_micros(extra_micros))
            }
            _ => WireFault::None,
        }
    }

    /// Visits the timer site for an armed delay and returns the (possibly
    /// skewed) delay to use. Called on every `SetTimer`, in arming order.
    pub fn on_timer(&mut self, delay: SimDuration) -> SimDuration {
        let index = self.timer_index;
        self.timer_index += 1;
        let kind = match &mut self.mode {
            Mode::Scripted { timer, .. } => timer.get(&index).copied(),
            Mode::Generate { rng, cfg, .. } => {
                if self.applied >= cfg.max_faults {
                    return delay;
                }
                let hit = roll(rng, cfg.timer_skew_permille);
                let span = cfg.skew_max_permille.saturating_sub(cfg.skew_min_permille);
                let factor = cfg.skew_min_permille + range(rng, span);
                hit.then_some(FaultKind::TimerSkew {
                    factor_permille: factor,
                })
            }
        };
        match kind {
            Some(kind @ FaultKind::TimerSkew { factor_permille }) => {
                self.apply(index, kind);
                SimDuration::from_micros(delay.as_micros().saturating_mul(factor_permille) / 1_000)
            }
            _ => delay,
        }
    }

    /// Visits the dispatch site for a node that buffered `len` actions and
    /// returns how many to keep, if the batch is torn. Called after every
    /// protocol handler, in dispatch order.
    pub fn on_dispatch(&mut self, len: usize) -> Option<usize> {
        let index = self.dispatch_index;
        self.dispatch_index += 1;
        let kind = match &mut self.mode {
            Mode::Scripted { dispatch, .. } => dispatch.get(&index).copied(),
            Mode::Generate { rng, cfg, .. } => {
                if self.applied >= cfg.max_faults {
                    return None;
                }
                let hit = roll(rng, cfg.torn_permille);
                let keep = range(rng, len.max(1) as u64);
                (hit && len > 0).then_some(FaultKind::TornWrite { keep })
            }
        };
        match kind {
            Some(kind @ FaultKind::TornWrite { keep }) => {
                self.apply(index, kind);
                Some((keep as usize).min(len))
            }
            _ => None,
        }
    }
}

/// Rolls a permille-probability event.
fn roll(rng: &mut SmallRng, permille: u32) -> bool {
    rng.gen_range(0..1000u32) < permille
}

/// Samples `0..max`, or 0 when the range is empty.
fn range(rng: &mut SmallRng, max: u64) -> u64 {
    if max == 0 {
        0
    } else {
        rng.gen_range(0..max)
    }
}

/// Serializes a list of fault actions for repro files.
pub fn fault_actions_to_json(actions: &[FaultAction]) -> Json {
    Json::Arr(
        actions
            .iter()
            .map(|a| {
                let kind = match a.kind {
                    FaultKind::TimerSkew { factor_permille } => Json::obj([(
                        "TimerSkew",
                        Json::obj([("factor_permille", Json::from(factor_permille))]),
                    )]),
                    FaultKind::DuplicateDelivery { extra_micros } => Json::obj([(
                        "DuplicateDelivery",
                        Json::obj([("extra_micros", Json::from(extra_micros))]),
                    )]),
                    FaultKind::ReorderDelay { extra_micros } => Json::obj([(
                        "ReorderDelay",
                        Json::obj([("extra_micros", Json::from(extra_micros))]),
                    )]),
                    FaultKind::TargetedDrop { dst } => Json::obj([(
                        "TargetedDrop",
                        Json::obj([("dst", Json::from(dst.as_u32()))]),
                    )]),
                    FaultKind::TornWrite { keep } => {
                        Json::obj([("TornWrite", Json::obj([("keep", Json::from(keep))]))])
                    }
                };
                Json::obj([("index", Json::from(a.index)), ("kind", kind)])
            })
            .collect(),
    )
}

/// Parses the format produced by [`fault_actions_to_json`].
///
/// # Errors
///
/// Returns a description of the first malformed entry, naming its index.
pub fn fault_actions_from_json(json: &Json) -> Result<Vec<FaultAction>, String> {
    let entries = json.as_arr().ok_or("fault_actions: expected an array")?;
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            fault_action_from_json(e).map_err(|err| format!("fault_actions: entry #{i}: {err}"))
        })
        .collect()
}

fn fault_action_from_json(json: &Json) -> Result<FaultAction, String> {
    let index = json
        .get("index")
        .and_then(Json::as_u64)
        .ok_or("bad \"index\"")?;
    let kind = json.get("kind").ok_or("missing \"kind\"")?;
    let field = |body: &Json, name: &str| -> Result<u64, String> {
        body.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("bad \"{name}\""))
    };
    let kind = if let Some(body) = kind.get("TimerSkew") {
        FaultKind::TimerSkew {
            factor_permille: field(body, "factor_permille")?,
        }
    } else if let Some(body) = kind.get("DuplicateDelivery") {
        FaultKind::DuplicateDelivery {
            extra_micros: field(body, "extra_micros")?,
        }
    } else if let Some(body) = kind.get("ReorderDelay") {
        FaultKind::ReorderDelay {
            extra_micros: field(body, "extra_micros")?,
        }
    } else if let Some(body) = kind.get("TargetedDrop") {
        FaultKind::TargetedDrop {
            dst: NodeId::new(field(body, "dst")? as u32),
        }
    } else if let Some(body) = kind.get("TornWrite") {
        FaultKind::TornWrite {
            keep: field(body, "keep")?,
        }
    } else {
        return Err(format!("unknown kind {kind}"));
    };
    Ok(FaultAction { index, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_generate(seed: u64, cfg: FaultConfig) -> (Vec<FaultAction>, FaultStats) {
        let mut fi = FaultInjector::generate(seed, cfg, 4);
        let log = fi.log_handle();
        for i in 0..200u32 {
            fi.on_wire(NodeId::new(i % 4));
            fi.on_timer(SimDuration::from_micros(1_000));
            fi.on_dispatch(3);
        }
        (log.snapshot(), log.stats())
    }

    #[test]
    fn calm_config_never_fires() {
        let (actions, stats) = drain_generate(7, FaultPreset::Calm.config());
        assert!(actions.is_empty());
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = FaultPreset::Chaos.config();
        let (a1, s1) = drain_generate(9, cfg);
        let (a2, s2) = drain_generate(9, cfg);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        assert!(!a1.is_empty(), "chaos must fire over 200 site visits");
        let (a3, _) = drain_generate(10, cfg);
        assert_ne!(a1, a3, "different seeds must differ");
    }

    #[test]
    fn chaos_fires_every_kind_and_moderate_only_timing_kinds() {
        let mut chaos = FaultStats::default();
        let mut moderate = FaultStats::default();
        for seed in 0..32 {
            let (_, s) = drain_generate(seed, FaultPreset::Chaos.config());
            chaos.timer_skews += s.timer_skews;
            chaos.duplicates += s.duplicates;
            chaos.reorders += s.reorders;
            chaos.targeted_drops += s.targeted_drops;
            chaos.torn_writes += s.torn_writes;
            let (_, s) = drain_generate(seed, FaultPreset::Moderate.config());
            moderate.timer_skews += s.timer_skews;
            moderate.duplicates += s.duplicates;
            moderate.reorders += s.reorders;
            moderate.targeted_drops += s.targeted_drops;
            moderate.torn_writes += s.torn_writes;
        }
        assert!(chaos.timer_skews > 0);
        assert!(chaos.duplicates > 0);
        assert!(chaos.reorders > 0);
        assert!(chaos.targeted_drops > 0);
        assert!(chaos.torn_writes > 0);
        assert!(moderate.timer_skews > 0);
        assert!(moderate.duplicates > 0);
        assert!(moderate.reorders > 0);
        assert_eq!(moderate.targeted_drops, 0, "moderate never drops");
        assert_eq!(moderate.torn_writes, 0, "moderate never tears");
    }

    #[test]
    fn scripted_mode_reapplies_the_generated_log() {
        let cfg = FaultPreset::Chaos.config();
        let (a1, _) = drain_generate(9, cfg);
        let mut fi = FaultInjector::scripted(&a1);
        let log = fi.log_handle();
        for i in 0..200u32 {
            fi.on_wire(NodeId::new(i % 4));
            fi.on_timer(SimDuration::from_micros(1_000));
            fi.on_dispatch(3);
        }
        let mut a2 = log.snapshot();
        // Scripted application visits sites in engine order, which may
        // interleave kinds differently from generation order; compare as
        // sets (the pairs are unique by site + index).
        let key = |a: &FaultAction| (a.kind.site() as u8, a.index);
        a2.sort_by_key(key);
        let mut a1s = a1.clone();
        a1s.sort_by_key(key);
        assert_eq!(a1s, a2, "script must apply exactly the recorded faults");
    }

    #[test]
    fn scripted_targeted_drop_only_hits_its_victim() {
        let script = [FaultAction {
            index: 0,
            kind: FaultKind::TargetedDrop {
                dst: NodeId::new(2),
            },
        }];
        let mut fi = FaultInjector::scripted(&script);
        assert_eq!(fi.on_wire(NodeId::new(1)), WireFault::None);
        let mut fi = FaultInjector::scripted(&script);
        assert_eq!(fi.on_wire(NodeId::new(2)), WireFault::Drop);
    }

    #[test]
    fn max_faults_caps_the_catalog() {
        let cfg = FaultConfig {
            max_faults: 3,
            ..FaultPreset::Chaos.config()
        };
        let (actions, _) = drain_generate(9, cfg);
        assert_eq!(actions.len(), 3);
    }

    #[test]
    fn timer_skew_scales_the_delay() {
        let script = [FaultAction {
            index: 1,
            kind: FaultKind::TimerSkew {
                factor_permille: 2_000,
            },
        }];
        let mut fi = FaultInjector::scripted(&script);
        let d = SimDuration::from_micros(500);
        assert_eq!(fi.on_timer(d), d, "index 0 untouched");
        assert_eq!(fi.on_timer(d), SimDuration::from_micros(1_000));
    }

    #[test]
    fn torn_write_keep_is_clamped_to_len() {
        let script = [FaultAction {
            index: 0,
            kind: FaultKind::TornWrite { keep: 10 },
        }];
        let mut fi = FaultInjector::scripted(&script);
        assert_eq!(fi.on_dispatch(2), Some(2));
    }

    #[test]
    fn preset_names_round_trip() {
        for p in FaultPreset::ALL {
            assert_eq!(FaultPreset::parse(p.name()), Ok(p));
        }
        assert!(FaultPreset::parse("mayhem").is_err());
    }

    #[test]
    fn actions_json_round_trip() {
        let actions = vec![
            FaultAction {
                index: 3,
                kind: FaultKind::TimerSkew {
                    factor_permille: 1_500,
                },
            },
            FaultAction {
                index: 0,
                kind: FaultKind::DuplicateDelivery { extra_micros: 250 },
            },
            FaultAction {
                index: 7,
                kind: FaultKind::ReorderDelay { extra_micros: 99 },
            },
            FaultAction {
                index: 8,
                kind: FaultKind::TargetedDrop {
                    dst: NodeId::new(3),
                },
            },
            FaultAction {
                index: 2,
                kind: FaultKind::TornWrite { keep: 1 },
            },
        ];
        let text = fault_actions_to_json(&actions).dump_pretty();
        let back = fault_actions_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, actions);
    }

    #[test]
    fn actions_json_rejects_garbage() {
        let err = fault_actions_from_json(&Json::parse("[{\"index\": 1}]").unwrap()).unwrap_err();
        assert!(err.contains("entry #0"), "{err}");
        assert!(err.contains("kind"), "{err}");
        let err = fault_actions_from_json(
            &Json::parse("[{\"index\": 1, \"kind\": {\"Explode\": {}}}]").unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
    }
}
