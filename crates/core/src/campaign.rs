//! Resumable parameter-grid campaigns: the manifest / checkpoint / report
//! formats and the deterministic expansion, sharding and merge semantics
//! behind `bft-sim campaign`.
//!
//! A **manifest** (`bft-sim-campaign-v1` JSON) describes a parameter grid —
//! protocol × node count × delay distribution × net preset × attack
//! intensity × seed range — that [`Manifest::unit`] expands deterministically
//! into ordered **work units** (seed varies fastest, so the units of one
//! grid **cell** are contiguous). This module is protocol-agnostic: grid
//! entries are validated strings, interpreted by the executor in the CLI
//! crate, so `core` keeps its single-dependency footprint.
//!
//! A **checkpoint** (`bft-sim-campaign-checkpoint-v1`) records per-unit
//! outcomes ([`UnitRecord`]) plus streaming aggregates (bucket-wise-merged
//! [`Histogram`]s), and is written atomically — to a temporary sibling file,
//! then renamed — every K completed units, so a SIGKILL at any moment leaves
//! either the old or the new checkpoint on disk, never a torn one. Resume
//! verifies the manifest hash ([`Manifest::hash`]) and continues from the
//! first incomplete unit.
//!
//! Because every aggregate either derives from per-unit records (tallies,
//! per-cell [`Summary`]s, recomputed in unit order) or merges with
//! commutative-and-associative `u64` arithmetic (histograms), the **final
//! report** ([`final_report`]) is byte-identical whether the campaign ran
//! straight through, was killed and resumed, or was sharded with
//! `--shard i/m` across processes and merged with [`merge_checkpoints`].

use std::collections::BTreeMap;
use std::hash::Hasher;
use std::path::Path;

use crate::fasthash::FastHasher;
use crate::json::Json;
use crate::metrics::Summary;
use crate::obs::Histogram;

/// Format tag of a campaign manifest document.
pub const MANIFEST_FORMAT: &str = "bft-sim-campaign-v1";

/// Format tag of a campaign checkpoint document.
pub const CHECKPOINT_FORMAT: &str = "bft-sim-campaign-checkpoint-v1";

/// Format tag of a campaign final report document.
pub const REPORT_FORMAT: &str = "bft-sim-campaign-report-v1";

/// A campaign parameter grid. Axis entries the executor interprets
/// (protocol names, delay names, net presets) are kept as validated strings
/// so this module stays protocol-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Protocol names (the CLI's protocol grammar, e.g. `"pbft"`).
    pub protocols: Vec<String>,
    /// Node counts.
    pub nodes: Vec<usize>,
    /// Delay-distribution names: `"constant"`, `"uniform"` or `"normal"`
    /// (the scenario generator's three parameterizations).
    pub delays: Vec<String>,
    /// Net presets in the CLI's `--net-preset` grammar, or `"none"` for the
    /// legacy delay-only network.
    pub nets: Vec<String>,
    /// Adversary intensities in permille; `0` runs the unit benign.
    pub attacks: Vec<u64>,
    /// Scenario seed range, half-open: seeds `lo..hi`.
    pub seeds: (u64, u64),
    /// Checkpoint interval: the checkpoint file is rewritten atomically
    /// after every batch of this many completed units.
    pub checkpoint_every: usize,
    /// Per-run cap on adversary actions for units with a nonzero attack.
    pub max_actions: u64,
}

/// One expanded work unit of a campaign grid: the parameter combination at
/// a given unit index. Borrowed from the manifest that expanded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit<'a> {
    /// Position in the campaign's deterministic unit order.
    pub index: usize,
    /// The grid cell this unit belongs to (`index / seeds-per-cell`).
    pub cell: usize,
    /// Protocol name.
    pub protocol: &'a str,
    /// Node count.
    pub n: usize,
    /// Delay-distribution name.
    pub delay: &'a str,
    /// Net preset (or `"none"`).
    pub net: &'a str,
    /// Adversary intensity in permille.
    pub attack: u64,
    /// Scenario seed.
    pub seed: u64,
}

impl Manifest {
    /// Validates the grid: every axis non-empty, a non-empty seed range, a
    /// positive checkpoint interval, and a total unit count that fits in
    /// `usize`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.protocols.is_empty() {
            return Err("manifest: protocols must be non-empty".into());
        }
        if self.nodes.is_empty() {
            return Err("manifest: nodes must be non-empty".into());
        }
        if self.nodes.contains(&0) {
            return Err("manifest: node counts must be positive".into());
        }
        if self.delays.is_empty() {
            return Err("manifest: delays must be non-empty".into());
        }
        if self.nets.is_empty() {
            return Err("manifest: nets must be non-empty".into());
        }
        if self.attacks.is_empty() {
            return Err("manifest: attacks must be non-empty".into());
        }
        if self.seeds.0 >= self.seeds.1 {
            return Err(format!(
                "manifest: seed range [{}, {}) is empty",
                self.seeds.0, self.seeds.1
            ));
        }
        if self.checkpoint_every == 0 {
            return Err("manifest: checkpoint_every must be positive".into());
        }
        let seeds = usize::try_from(self.seeds.1 - self.seeds.0)
            .map_err(|_| "manifest: seed range too large".to_string())?;
        self.protocols
            .len()
            .checked_mul(self.nodes.len())
            .and_then(|t| t.checked_mul(self.delays.len()))
            .and_then(|t| t.checked_mul(self.nets.len()))
            .and_then(|t| t.checked_mul(self.attacks.len()))
            .and_then(|t| t.checked_mul(seeds))
            .ok_or_else(|| "manifest: grid size overflows".to_string())?;
        Ok(())
    }

    /// Number of seeds per grid cell.
    pub fn seeds_per_cell(&self) -> usize {
        (self.seeds.1 - self.seeds.0) as usize
    }

    /// Number of grid cells (parameter combinations excluding the seed).
    pub fn total_cells(&self) -> usize {
        self.protocols.len()
            * self.nodes.len()
            * self.delays.len()
            * self.nets.len()
            * self.attacks.len()
    }

    /// Total number of work units in the campaign.
    pub fn total_units(&self) -> usize {
        self.total_cells() * self.seeds_per_cell()
    }

    /// The work unit at `index` in the campaign's deterministic order:
    /// lexicographic over (protocol, n, delay, net, attack, seed), with the
    /// seed varying fastest — so a grid cell's units are contiguous.
    ///
    /// # Panics
    ///
    /// Panics when `index >= total_units()` (a caller bug; campaign loops
    /// iterate an assigned-unit list derived from the same manifest).
    pub fn unit(&self, index: usize) -> Unit<'_> {
        assert!(index < self.total_units(), "unit index out of range");
        let seeds = self.seeds_per_cell();
        let cell = index / seeds;
        let seed = self.seeds.0 + (index % seeds) as u64;
        let mut rest = cell;
        let attack = self.attacks[rest % self.attacks.len()];
        rest /= self.attacks.len();
        let net = &self.nets[rest % self.nets.len()];
        rest /= self.nets.len();
        let delay = &self.delays[rest % self.delays.len()];
        rest /= self.delays.len();
        let n = self.nodes[rest % self.nodes.len()];
        rest /= self.nodes.len();
        let protocol = &self.protocols[rest];
        Unit {
            index,
            cell,
            protocol,
            n,
            delay,
            net,
            attack,
            seed,
        }
    }

    /// The canonical JSON form — the form [`hash`](Manifest::hash) digests,
    /// and the one [`from_json`](Manifest::from_json) round-trips.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format", Json::from(MANIFEST_FORMAT)),
            (
                "protocols",
                Json::Arr(
                    self.protocols
                        .iter()
                        .map(|p| Json::from(p.as_str()))
                        .collect(),
                ),
            ),
            (
                "nodes",
                Json::Arr(self.nodes.iter().map(|&n| Json::from(n)).collect()),
            ),
            (
                "delays",
                Json::Arr(self.delays.iter().map(|d| Json::from(d.as_str())).collect()),
            ),
            (
                "nets",
                Json::Arr(self.nets.iter().map(|n| Json::from(n.as_str())).collect()),
            ),
            (
                "attacks",
                Json::Arr(self.attacks.iter().map(|&a| Json::from(a)).collect()),
            ),
            (
                "seeds",
                Json::obj([
                    ("lo", Json::from(self.seeds.0)),
                    ("hi", Json::from(self.seeds.1)),
                ]),
            ),
            ("checkpoint_every", Json::from(self.checkpoint_every)),
            ("max_actions", Json::from(self.max_actions)),
        ])
    }

    /// Parses and validates a manifest document. Strict: unknown fields are
    /// rejected, every field is required.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_json(json: &Json) -> Result<Manifest, String> {
        let fields = expect_obj(json, "manifest")?;
        let mut format = None;
        let mut protocols = None;
        let mut nodes = None;
        let mut delays = None;
        let mut nets = None;
        let mut attacks = None;
        let mut seeds = None;
        let mut checkpoint_every = None;
        let mut max_actions = None;
        for (key, value) in fields {
            match key.as_str() {
                "format" => format = Some(expect_str(value, "manifest format")?),
                "protocols" => protocols = Some(string_list(value, "protocols")?),
                "nodes" => {
                    let list = uint_list(value, "nodes")?;
                    nodes = Some(list.into_iter().map(|n| n as usize).collect::<Vec<_>>());
                }
                "delays" => delays = Some(string_list(value, "delays")?),
                "nets" => nets = Some(string_list(value, "nets")?),
                "attacks" => attacks = Some(uint_list(value, "attacks")?),
                "seeds" => {
                    let pair = expect_obj(value, "manifest seeds")?;
                    let mut lo = None;
                    let mut hi = None;
                    for (k, v) in pair {
                        match k.as_str() {
                            "lo" => lo = Some(expect_u64(v, "seeds.lo")?),
                            "hi" => hi = Some(expect_u64(v, "seeds.hi")?),
                            other => return Err(format!("manifest seeds: unknown field {other}")),
                        }
                    }
                    seeds = Some((
                        lo.ok_or("manifest seeds: missing lo")?,
                        hi.ok_or("manifest seeds: missing hi")?,
                    ));
                }
                "checkpoint_every" => {
                    checkpoint_every = Some(expect_u64(value, "checkpoint_every")? as usize)
                }
                "max_actions" => max_actions = Some(expect_u64(value, "max_actions")?),
                other => return Err(format!("manifest: unknown field {other}")),
            }
        }
        match format {
            Some(f) if f == MANIFEST_FORMAT => {}
            Some(f) => return Err(format!("manifest: unsupported format \"{f}\"")),
            None => return Err("manifest: missing field format".into()),
        }
        let manifest = Manifest {
            protocols: protocols.ok_or("manifest: missing field protocols")?,
            nodes: nodes.ok_or("manifest: missing field nodes")?,
            delays: delays.ok_or("manifest: missing field delays")?,
            nets: nets.ok_or("manifest: missing field nets")?,
            attacks: attacks.ok_or("manifest: missing field attacks")?,
            seeds: seeds.ok_or("manifest: missing field seeds")?,
            checkpoint_every: checkpoint_every.ok_or("manifest: missing field checkpoint_every")?,
            max_actions: max_actions.ok_or("manifest: missing field max_actions")?,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// The manifest's identity hash: a deterministic [`FastHasher`] digest
    /// of the canonical JSON bytes, hex-encoded. Resume and merge verify it
    /// so a checkpoint can never be applied to an edited grid.
    pub fn hash(&self) -> String {
        let mut hasher = FastHasher::default();
        hasher.write(self.to_json().dump().as_bytes());
        format!("{:016x}", hasher.finish())
    }
}

/// SplitMix64 over a seed and a stream index: derives the independent
/// engine / adversary / genesis seed streams of a work unit from its
/// manifest seed. A pure function with no platform dependence, so unit →
/// scenario mapping is stable everywhere.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How one work unit ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitOutcome {
    /// Ran to completion with no oracle violations.
    Clean,
    /// Ran to completion and violated at least one oracle.
    Violated {
        /// Human-readable `[oracle] detail` lines.
        violations: Vec<String>,
        /// Path of the written repro file, when one was produced.
        repro: Option<String>,
    },
    /// Panicked mid-run; isolated and recorded instead of aborting the
    /// campaign.
    Panicked {
        /// The panic message.
        message: String,
    },
}

/// One completed work unit's durable record, as stored in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitRecord {
    /// The unit's index in the manifest's deterministic order.
    pub index: usize,
    /// How the unit ended.
    pub outcome: UnitOutcome,
    /// Engine events dispatched (0 for panicked units).
    pub events: u64,
    /// Consensus slots completed by every live honest node.
    pub decisions: u64,
    /// Honest wire messages sent.
    pub honest_messages: u64,
    /// Time to the first completed decision, in microseconds.
    pub latency_micros: Option<u64>,
}

impl UnitRecord {
    /// Serialise the record.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("index".to_string(), Json::from(self.index)),
            (
                "outcome".to_string(),
                Json::from(match &self.outcome {
                    UnitOutcome::Clean => "clean",
                    UnitOutcome::Violated { .. } => "violated",
                    UnitOutcome::Panicked { .. } => "panicked",
                }),
            ),
            ("events".to_string(), Json::from(self.events)),
            ("decisions".to_string(), Json::from(self.decisions)),
            (
                "honest_messages".to_string(),
                Json::from(self.honest_messages),
            ),
        ];
        if let Some(latency) = self.latency_micros {
            pairs.push(("latency_micros".to_string(), Json::from(latency)));
        }
        match &self.outcome {
            UnitOutcome::Clean => {}
            UnitOutcome::Violated { violations, repro } => {
                pairs.push((
                    "violations".to_string(),
                    Json::Arr(violations.iter().map(|v| Json::from(v.as_str())).collect()),
                ));
                if let Some(path) = repro {
                    pairs.push(("repro".to_string(), Json::from(path.as_str())));
                }
            }
            UnitOutcome::Panicked { message } => {
                pairs.push(("panic".to_string(), Json::from(message.as_str())));
            }
        }
        Json::Obj(pairs)
    }

    /// Parses a record. Strict: unknown fields rejected, and the
    /// outcome-specific fields (`violations`, `repro`, `panic`) must match
    /// the declared outcome.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_json(json: &Json) -> Result<UnitRecord, String> {
        let fields = expect_obj(json, "unit record")?;
        let mut index = None;
        let mut outcome = None;
        let mut events = None;
        let mut decisions = None;
        let mut honest_messages = None;
        let mut latency_micros = None;
        let mut violations: Option<Vec<String>> = None;
        let mut repro = None;
        let mut panic = None;
        for (key, value) in fields {
            match key.as_str() {
                "index" => index = Some(expect_u64(value, "record index")? as usize),
                "outcome" => outcome = Some(expect_str(value, "record outcome")?),
                "events" => events = Some(expect_u64(value, "record events")?),
                "decisions" => decisions = Some(expect_u64(value, "record decisions")?),
                "honest_messages" => {
                    honest_messages = Some(expect_u64(value, "record honest_messages")?)
                }
                "latency_micros" => {
                    latency_micros = Some(expect_u64(value, "record latency_micros")?)
                }
                "violations" => violations = Some(string_list(value, "record violations")?),
                "repro" => repro = Some(expect_str(value, "record repro")?),
                "panic" => panic = Some(expect_str(value, "record panic")?),
                other => return Err(format!("unit record: unknown field {other}")),
            }
        }
        let index = index.ok_or("unit record: missing field index")?;
        let outcome = match outcome.as_deref() {
            Some("clean") => {
                if violations.is_some() || repro.is_some() || panic.is_some() {
                    return Err(format!(
                        "unit record {index}: clean outcome carries violation/panic fields"
                    ));
                }
                UnitOutcome::Clean
            }
            Some("violated") => {
                let violations = violations.ok_or_else(|| {
                    format!("unit record {index}: violated outcome without violations")
                })?;
                if violations.is_empty() {
                    return Err(format!(
                        "unit record {index}: violated outcome with empty violations"
                    ));
                }
                if panic.is_some() {
                    return Err(format!(
                        "unit record {index}: violated outcome carries a panic field"
                    ));
                }
                UnitOutcome::Violated { violations, repro }
            }
            Some("panicked") => {
                if violations.is_some() || repro.is_some() {
                    return Err(format!(
                        "unit record {index}: panicked outcome carries violation fields"
                    ));
                }
                UnitOutcome::Panicked {
                    message: panic.ok_or_else(|| {
                        format!("unit record {index}: panicked outcome without a panic message")
                    })?,
                }
            }
            Some(other) => return Err(format!("unit record {index}: unknown outcome \"{other}\"")),
            None => return Err(format!("unit record {index}: missing field outcome")),
        };
        Ok(UnitRecord {
            index,
            outcome,
            events: events.ok_or("unit record: missing field events")?,
            decisions: decisions.ok_or("unit record: missing field decisions")?,
            honest_messages: honest_messages.ok_or("unit record: missing field honest_messages")?,
            latency_micros,
        })
    }
}

/// A campaign's durable progress: per-unit records plus streaming
/// observability aggregates, bound to a manifest by its hash and to a shard
/// assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// [`Manifest::hash`] of the grid this checkpoint belongs to.
    pub manifest_hash: String,
    /// Shard assignment `(index, count)`; `(0, 1)` for unsharded runs and
    /// merged checkpoints.
    pub shard: (u32, u32),
    /// Completed units, sorted by ascending index.
    pub records: Vec<UnitRecord>,
    /// Wire-message delivery latencies, merged across all completed units.
    pub delivery_latency: Histogram,
    /// Decision intervals, merged across all completed units.
    pub decision_interval: Histogram,
}

impl Checkpoint {
    /// An empty checkpoint for the given manifest hash and shard.
    pub fn new(manifest_hash: String, shard: (u32, u32)) -> Self {
        Checkpoint {
            manifest_hash,
            shard,
            records: Vec::new(),
            delivery_latency: Histogram::new(),
            decision_interval: Histogram::new(),
        }
    }

    /// Serialise the checkpoint.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("format", Json::from(CHECKPOINT_FORMAT)),
            ("manifest_hash", Json::from(self.manifest_hash.as_str())),
            (
                "shard",
                Json::obj([
                    ("index", Json::from(self.shard.0)),
                    ("count", Json::from(self.shard.1)),
                ]),
            ),
            ("completed", Json::from(self.records.len())),
            (
                "records",
                Json::Arr(self.records.iter().map(UnitRecord::to_json).collect()),
            ),
            (
                "aggregates",
                Json::obj([
                    ("delivery_latency", self.delivery_latency.to_json()),
                    ("decision_interval", self.decision_interval.to_json()),
                ]),
            ),
        ])
    }

    /// Parses a checkpoint document. Strict: unknown fields rejected, the
    /// `completed` count must match the record list, records must be sorted
    /// by strictly ascending index, and the embedded histograms must pass
    /// [`Histogram::from_json`] consistency validation.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_json(json: &Json) -> Result<Checkpoint, String> {
        let fields = expect_obj(json, "checkpoint")?;
        let mut format = None;
        let mut manifest_hash = None;
        let mut shard = None;
        let mut completed = None;
        let mut records: Option<Vec<UnitRecord>> = None;
        let mut aggregates = None;
        for (key, value) in fields {
            match key.as_str() {
                "format" => format = Some(expect_str(value, "checkpoint format")?),
                "manifest_hash" => {
                    manifest_hash = Some(expect_str(value, "checkpoint manifest_hash")?)
                }
                "shard" => {
                    let pair = expect_obj(value, "checkpoint shard")?;
                    let mut index = None;
                    let mut count = None;
                    for (k, v) in pair {
                        match k.as_str() {
                            "index" => index = Some(expect_u64(v, "shard.index")? as u32),
                            "count" => count = Some(expect_u64(v, "shard.count")? as u32),
                            other => {
                                return Err(format!("checkpoint shard: unknown field {other}"))
                            }
                        }
                    }
                    shard = Some((
                        index.ok_or("checkpoint shard: missing index")?,
                        count.ok_or("checkpoint shard: missing count")?,
                    ));
                }
                "completed" => completed = Some(expect_u64(value, "checkpoint completed")?),
                "records" => {
                    let arr = value
                        .as_arr()
                        .ok_or("checkpoint: records is not an array")?;
                    records = Some(
                        arr.iter()
                            .map(UnitRecord::from_json)
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                "aggregates" => {
                    let pair = expect_obj(value, "checkpoint aggregates")?;
                    let mut delivery = None;
                    let mut interval = None;
                    for (k, v) in pair {
                        match k.as_str() {
                            "delivery_latency" => {
                                delivery = Some(Histogram::from_json(v).map_err(|e| e.to_string())?)
                            }
                            "decision_interval" => {
                                interval = Some(Histogram::from_json(v).map_err(|e| e.to_string())?)
                            }
                            other => {
                                return Err(format!("checkpoint aggregates: unknown field {other}"))
                            }
                        }
                    }
                    aggregates = Some((
                        delivery.ok_or("checkpoint aggregates: missing delivery_latency")?,
                        interval.ok_or("checkpoint aggregates: missing decision_interval")?,
                    ));
                }
                other => return Err(format!("checkpoint: unknown field {other}")),
            }
        }
        match format {
            Some(f) if f == CHECKPOINT_FORMAT => {}
            Some(f) => return Err(format!("checkpoint: unsupported format \"{f}\"")),
            None => return Err("checkpoint: missing field format".into()),
        }
        let records = records.ok_or("checkpoint: missing field records")?;
        let completed = completed.ok_or("checkpoint: missing field completed")?;
        if completed != records.len() as u64 {
            return Err(format!(
                "checkpoint: completed says {completed} but {} records are present",
                records.len()
            ));
        }
        for pair in records.windows(2) {
            if pair[1].index <= pair[0].index {
                return Err(format!(
                    "checkpoint: records out of order at index {}",
                    pair[1].index
                ));
            }
        }
        let (delivery_latency, decision_interval) =
            aggregates.ok_or("checkpoint: missing field aggregates")?;
        let shard = shard.ok_or("checkpoint: missing field shard")?;
        if shard.1 == 0 || shard.0 >= shard.1 {
            return Err(format!("checkpoint: invalid shard {}/{}", shard.0, shard.1));
        }
        Ok(Checkpoint {
            manifest_hash: manifest_hash.ok_or("checkpoint: missing field manifest_hash")?,
            shard,
            records,
            delivery_latency,
            decision_interval,
        })
    }

    /// Writes the checkpoint atomically: the JSON goes to a `.tmp` sibling
    /// in the same directory, then replaces `path` with a rename. A crash
    /// at any instant leaves either the previous checkpoint or this one on
    /// disk — never a torn file.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure.
    pub fn save_atomic(&self, path: &Path) -> Result<(), String> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json().dump_pretty())
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("cannot rename {} to {}: {e}", tmp.display(), path.display()))?;
        Ok(())
    }

    /// Loads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O or parse failure.
    pub fn load(path: &Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let json =
            Json::parse(&text).map_err(|e| format!("bad checkpoint {}: {e}", path.display()))?;
        Self::from_json(&json)
    }
}

/// The unit indexes assigned to shard `(index, count)`: every index
/// congruent to the shard index modulo the shard count, in ascending order.
/// Round-robin keeps each shard's workload representative of the whole grid
/// (contiguous block splits would hand one shard all the large-n cells).
///
/// # Errors
///
/// Returns a message when the shard spec is out of range.
pub fn shard_units(manifest: &Manifest, shard: (u32, u32)) -> Result<Vec<usize>, String> {
    if shard.1 == 0 || shard.0 >= shard.1 {
        return Err(format!("invalid shard {}/{}", shard.0, shard.1));
    }
    Ok((0..manifest.total_units())
        .filter(|i| (i % shard.1 as usize) as u32 == shard.0)
        .collect())
}

/// Merges shard checkpoints into a single complete checkpoint: verifies
/// every part against the manifest hash, unions the records (rejecting
/// duplicates), and folds the histogram aggregates. Histogram merge is
/// commutative and associative (`u64` bucket adds, min/max folds), so the
/// merged aggregates are byte-identical to a straight-through run's.
///
/// # Errors
///
/// Returns a message on hash mismatch, duplicate units, or incomplete
/// coverage of `0..total_units`.
pub fn merge_checkpoints(manifest: &Manifest, parts: &[Checkpoint]) -> Result<Checkpoint, String> {
    let hash = manifest.hash();
    let mut merged = Checkpoint::new(hash.clone(), (0, 1));
    for part in parts {
        if part.manifest_hash != hash {
            return Err(format!(
                "checkpoint manifest hash {} does not match the manifest ({hash}); \
                 was the grid edited?",
                part.manifest_hash
            ));
        }
        merged.records.extend(part.records.iter().cloned());
        merged.delivery_latency.merge(&part.delivery_latency);
        merged.decision_interval.merge(&part.decision_interval);
    }
    merged.records.sort_by_key(|r| r.index);
    for pair in merged.records.windows(2) {
        if pair[1].index == pair[0].index {
            return Err(format!(
                "merge: unit {} appears in more than one checkpoint",
                pair[0].index
            ));
        }
    }
    let total = manifest.total_units();
    if merged.records.len() != total {
        return Err(format!(
            "merge: {}/{total} units completed; run the missing shards to completion first",
            merged.records.len()
        ));
    }
    Ok(merged)
}

fn summary_json(s: &Summary) -> Json {
    Json::obj([
        ("count", Json::from(s.count)),
        ("mean", Json::from(s.mean)),
        ("std_dev", Json::from(s.std_dev)),
        ("min", Json::from(s.min)),
        ("max", Json::from(s.max)),
    ])
}

/// Builds the campaign's final report from a complete checkpoint. Every
/// figure derives from the per-unit records in unit order (tallies, the
/// per-cell [`Summary`]s) or from the order-independent histogram
/// aggregates, so the report is byte-identical however the units were
/// executed: straight through, killed-and-resumed, or sharded-and-merged,
/// at any thread count, under either scheduler backend.
///
/// # Errors
///
/// Returns a message when the checkpoint does not match the manifest or
/// does not cover every unit.
pub fn final_report(manifest: &Manifest, checkpoint: &Checkpoint) -> Result<Json, String> {
    let hash = manifest.hash();
    if checkpoint.manifest_hash != hash {
        return Err(format!(
            "checkpoint manifest hash {} does not match the manifest ({hash})",
            checkpoint.manifest_hash
        ));
    }
    let total = manifest.total_units();
    if checkpoint.records.len() != total {
        return Err(format!(
            "campaign incomplete: {}/{total} units recorded",
            checkpoint.records.len()
        ));
    }
    for (i, record) in checkpoint.records.iter().enumerate() {
        if record.index != i {
            return Err(format!(
                "campaign records skip unit {i} (found {})",
                record.index
            ));
        }
    }

    let mut clean = 0u64;
    let mut violated = 0u64;
    let mut panicked = 0u64;
    let mut first_panic: Option<(usize, &str)> = None;
    let mut oracle_tally: BTreeMap<String, u64> = BTreeMap::new();
    for record in &checkpoint.records {
        match &record.outcome {
            UnitOutcome::Clean => clean += 1,
            UnitOutcome::Violated { violations, .. } => {
                violated += 1;
                for line in violations {
                    // Violation lines are "[oracle] detail".
                    let oracle = line
                        .strip_prefix('[')
                        .and_then(|rest| rest.split_once(']'))
                        .map(|(name, _)| name)
                        .unwrap_or("unknown");
                    *oracle_tally.entry(oracle.to_string()).or_insert(0) += 1;
                }
            }
            UnitOutcome::Panicked { message } => {
                panicked += 1;
                if first_panic.is_none() {
                    first_panic = Some((record.index, message));
                }
            }
        }
    }

    let seeds = manifest.seeds_per_cell();
    let cells: Vec<Json> = (0..manifest.total_cells())
        .map(|cell| {
            let descriptor = manifest.unit(cell * seeds);
            let records = &checkpoint.records[cell * seeds..(cell + 1) * seeds];
            let mut cell_clean = 0u64;
            let mut cell_violated = 0u64;
            let mut cell_panicked = 0u64;
            let mut latencies = Vec::new();
            let mut events = Vec::new();
            let mut messages = Vec::new();
            for record in records {
                match &record.outcome {
                    UnitOutcome::Clean => cell_clean += 1,
                    UnitOutcome::Violated { .. } => cell_violated += 1,
                    UnitOutcome::Panicked { .. } => {
                        cell_panicked += 1;
                        continue; // panicked units carry no metrics
                    }
                }
                if let Some(latency) = record.latency_micros {
                    latencies.push(latency as f64);
                }
                events.push(record.events as f64);
                messages.push(record.honest_messages as f64);
            }
            Json::obj([
                ("protocol", Json::from(descriptor.protocol)),
                ("n", Json::from(descriptor.n)),
                ("delay", Json::from(descriptor.delay)),
                ("net", Json::from(descriptor.net)),
                ("attack", Json::from(descriptor.attack)),
                ("units", Json::from(seeds)),
                ("clean", Json::from(cell_clean)),
                ("violated", Json::from(cell_violated)),
                ("panicked", Json::from(cell_panicked)),
                ("latency_micros", summary_json(&Summary::of(&latencies))),
                ("events", summary_json(&Summary::of(&events))),
                ("honest_messages", summary_json(&Summary::of(&messages))),
            ])
        })
        .collect();

    let mut pairs = vec![
        ("format".to_string(), Json::from(REPORT_FORMAT)),
        ("manifest_hash".to_string(), Json::from(hash.as_str())),
        ("units".to_string(), Json::from(total)),
        ("clean".to_string(), Json::from(clean)),
        ("violated".to_string(), Json::from(violated)),
        ("panicked".to_string(), Json::from(panicked)),
    ];
    if let Some((unit, message)) = first_panic {
        pairs.push((
            "first_panic".to_string(),
            Json::obj([("unit", Json::from(unit)), ("message", Json::from(message))]),
        ));
    }
    pairs.push((
        "violations".to_string(),
        Json::Obj(
            oracle_tally
                .into_iter()
                .map(|(oracle, count)| (oracle, Json::from(count)))
                .collect(),
        ),
    ));
    pairs.push(("cells".to_string(), Json::Arr(cells)));
    pairs.push((
        "observability".to_string(),
        Json::obj([
            ("delivery_latency", checkpoint.delivery_latency.to_json()),
            ("decision_interval", checkpoint.decision_interval.to_json()),
        ]),
    ));
    Ok(Json::Obj(pairs))
}

fn expect_obj<'a>(json: &'a Json, what: &str) -> Result<&'a [(String, Json)], String> {
    match json {
        Json::Obj(fields) => Ok(fields),
        _ => Err(format!("{what}: expected an object")),
    }
}

fn expect_str(json: &Json, what: &str) -> Result<String, String> {
    json.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: expected a string"))
}

fn expect_u64(json: &Json, what: &str) -> Result<u64, String> {
    json.as_u64()
        .ok_or_else(|| format!("{what}: expected an unsigned integer"))
}

fn string_list(json: &Json, what: &str) -> Result<Vec<String>, String> {
    json.as_arr()
        .ok_or_else(|| format!("{what}: expected an array"))?
        .iter()
        .map(|v| expect_str(v, what))
        .collect()
}

fn uint_list(json: &Json, what: &str) -> Result<Vec<u64>, String> {
    json.as_arr()
        .ok_or_else(|| format!("{what}: expected an array"))?
        .iter()
        .map(|v| expect_u64(v, what))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn small_manifest() -> Manifest {
        Manifest {
            protocols: vec!["pbft".into(), "hotstuff-ns".into()],
            nodes: vec![4, 7],
            delays: vec!["constant".into()],
            nets: vec!["none".into(), "full_mesh:churn=5,2,500,4000".into()],
            attacks: vec![0, 500],
            seeds: (10, 13),
            checkpoint_every: 4,
            max_actions: 48,
        }
    }

    #[test]
    fn grid_expands_deterministically_with_seed_fastest() {
        let m = small_manifest();
        assert_eq!(m.seeds_per_cell(), 3);
        assert_eq!(m.total_cells(), 16);
        assert_eq!(m.total_units(), 48);

        // Seed varies fastest: the first cell's units are contiguous.
        let u0 = m.unit(0);
        assert_eq!(
            (u0.protocol, u0.n, u0.delay, u0.net, u0.attack, u0.seed),
            ("pbft", 4, "constant", "none", 0, 10)
        );
        assert_eq!(u0.cell, 0);
        assert_eq!(m.unit(1).seed, 11);
        assert_eq!(m.unit(2).seed, 12);
        // Then the attack axis, then net, then n, then protocol.
        let u3 = m.unit(3);
        assert_eq!((u3.cell, u3.attack, u3.seed), (1, 500, 10));
        let u6 = m.unit(6);
        assert_eq!(u6.net, "full_mesh:churn=5,2,500,4000");
        let last = m.unit(47);
        assert_eq!(
            (last.protocol, last.n, last.attack, last.seed),
            ("hotstuff-ns", 7, 500, 12)
        );
        // Every index maps to a distinct combination.
        let combos: std::collections::HashSet<String> = (0..m.total_units())
            .map(|i| {
                let u = m.unit(i);
                format!(
                    "{}|{}|{}|{}|{}|{}",
                    u.protocol, u.n, u.delay, u.net, u.attack, u.seed
                )
            })
            .collect();
        assert_eq!(combos.len(), m.total_units());
    }

    #[test]
    fn manifest_round_trips_and_hash_pins_the_grid() {
        let m = small_manifest();
        let json = m.to_json();
        let back = Manifest::from_json(&json).unwrap();
        assert_eq!(back, m);
        let reparsed = Json::parse(&json.dump_pretty()).unwrap();
        assert_eq!(Manifest::from_json(&reparsed).unwrap(), m);

        assert_eq!(m.hash(), back.hash(), "hash is a pure function");
        let mut edited = m.clone();
        edited.seeds = (10, 14);
        assert_ne!(m.hash(), edited.hash(), "an edited grid must re-hash");

        // Strictness: unknown fields and empty axes are rejected.
        let mut junk = json.clone();
        if let Json::Obj(fields) = &mut junk {
            fields.push(("threads".into(), Json::from(4u64)));
        }
        assert!(Manifest::from_json(&junk)
            .unwrap_err()
            .contains("unknown field"));
        let mut empty = m.clone();
        empty.protocols.clear();
        assert!(Manifest::from_json(&empty.to_json()).is_err());
        let mut inverted = m.clone();
        inverted.seeds = (5, 5);
        assert!(Manifest::from_json(&inverted.to_json()).is_err());
    }

    #[test]
    fn mix_seed_is_stable_and_stream_separated() {
        // Pinned values: the unit → scenario mapping must never drift.
        assert_eq!(mix_seed(0, 0), 0xe220_a839_7b1d_cdaf);
        assert_ne!(mix_seed(7, 0), mix_seed(7, 1));
        assert_ne!(mix_seed(7, 0), mix_seed(8, 0));
    }

    fn record(index: usize, latency: Option<u64>) -> UnitRecord {
        UnitRecord {
            index,
            outcome: UnitOutcome::Clean,
            events: 100 + index as u64,
            decisions: 10,
            honest_messages: 50,
            latency_micros: latency,
        }
    }

    #[test]
    fn unit_record_round_trips_every_outcome() {
        let clean = record(3, Some(1_000));
        assert_eq!(UnitRecord::from_json(&clean.to_json()).unwrap(), clean);

        let violated = UnitRecord {
            outcome: UnitOutcome::Violated {
                violations: vec!["[agreement] slot 0: n1 decided 2 but n0 decided 1".into()],
                repro: Some("out/repro-unit7-agreement.json".into()),
            },
            ..record(7, None)
        };
        assert_eq!(
            UnitRecord::from_json(&violated.to_json()).unwrap(),
            violated
        );

        let panicked = UnitRecord {
            outcome: UnitOutcome::Panicked {
                message: "index out of bounds".into(),
            },
            events: 0,
            decisions: 0,
            honest_messages: 0,
            latency_micros: None,
            index: 9,
        };
        assert_eq!(
            UnitRecord::from_json(&panicked.to_json()).unwrap(),
            panicked
        );

        // Outcome-specific fields must match the declared outcome.
        let mut mismatched = clean.to_json();
        if let Json::Obj(fields) = &mut mismatched {
            fields.push(("panic".into(), Json::from("boom")));
        }
        assert!(UnitRecord::from_json(&mismatched).is_err());
    }

    #[test]
    fn checkpoint_round_trips_and_saves_atomically() {
        let m = small_manifest();
        let mut ck = Checkpoint::new(m.hash(), (0, 1));
        ck.records.push(record(0, Some(500)));
        ck.records.push(record(1, None));
        ck.delivery_latency.record(SimDuration::from_micros(123));
        ck.decision_interval.record(SimDuration::from_micros(456));
        let back = Checkpoint::from_json(&ck.to_json()).unwrap();
        assert_eq!(back, ck);

        // Records must be strictly ascending.
        let mut reordered = ck.clone();
        reordered.records.swap(0, 1);
        assert!(Checkpoint::from_json(&reordered.to_json())
            .unwrap_err()
            .contains("out of order"));

        let dir =
            std::env::temp_dir().join(format!("bft-sim-campaign-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        ck.save_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // Overwriting goes through the same temp-and-rename path.
        ck.records.push(record(2, Some(900)));
        ck.save_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shards_partition_the_units() {
        let m = small_manifest();
        let a = shard_units(&m, (0, 3)).unwrap();
        let b = shard_units(&m, (1, 3)).unwrap();
        let c = shard_units(&m, (2, 3)).unwrap();
        let mut all: Vec<usize> = a.iter().chain(&b).chain(&c).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..m.total_units()).collect::<Vec<_>>());
        assert!(shard_units(&m, (3, 3)).is_err());
        assert!(shard_units(&m, (0, 0)).is_err());
        assert_eq!(shard_units(&m, (0, 1)).unwrap().len(), m.total_units());
    }

    #[test]
    fn merged_shards_report_identically_to_a_straight_run() {
        let m = small_manifest();
        let hash = m.hash();
        let total = m.total_units();

        // A synthetic "straight through" checkpoint covering every unit.
        let mut straight = Checkpoint::new(hash.clone(), (0, 1));
        for i in 0..total {
            let mut r = record(i, (i % 3 != 0).then(|| 1_000 + i as u64));
            if i == 5 {
                r.outcome = UnitOutcome::Violated {
                    violations: vec!["[termination] run stopped".into()],
                    repro: None,
                };
            }
            if i == 9 {
                r.outcome = UnitOutcome::Panicked {
                    message: "boom".into(),
                };
                r.latency_micros = None;
            }
            straight
                .delivery_latency
                .record(SimDuration::from_micros(i as u64 * 10));
            straight.records.push(r);
        }

        // The same records dealt round-robin onto two shards.
        let mut shard0 = Checkpoint::new(hash.clone(), (0, 2));
        let mut shard1 = Checkpoint::new(hash.clone(), (1, 2));
        for r in &straight.records {
            let target = if r.index % 2 == 0 {
                &mut shard0
            } else {
                &mut shard1
            };
            target.records.push(r.clone());
            target
                .delivery_latency
                .record(SimDuration::from_micros(r.index as u64 * 10));
        }

        let merged = merge_checkpoints(&m, &[shard0.clone(), shard1.clone()]).unwrap();
        let a = final_report(&m, &straight).unwrap().dump_pretty();
        let b = final_report(&m, &merged).unwrap().dump_pretty();
        assert_eq!(a, b, "sharded+merged report must match the straight run");
        // Merge order does not matter either.
        let swapped = merge_checkpoints(&m, &[shard1.clone(), shard0.clone()]).unwrap();
        assert_eq!(final_report(&m, &swapped).unwrap().dump_pretty(), a);

        // The report carries the tallies and the first panic.
        let report = final_report(&m, &straight).unwrap();
        assert_eq!(report.get("violated").and_then(Json::as_u64), Some(1));
        assert_eq!(report.get("panicked").and_then(Json::as_u64), Some(1));
        assert_eq!(
            report
                .get("first_panic")
                .and_then(|p| p.get("unit"))
                .and_then(Json::as_u64),
            Some(9)
        );
        assert_eq!(
            report
                .get("violations")
                .and_then(|v| v.get("termination"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            report.get("cells").and_then(Json::as_arr).unwrap().len(),
            m.total_cells()
        );

        // Incomplete coverage is an error, not a silent partial report.
        let incomplete = merge_checkpoints(&m, &[shard0.clone()]);
        assert!(incomplete.unwrap_err().contains("units completed"));
        // Duplicate units are rejected.
        let dup = merge_checkpoints(&m, &[shard0.clone(), shard0.clone(), shard1]);
        assert!(dup.unwrap_err().contains("more than one checkpoint"));
        // A checkpoint from an edited grid is rejected by hash.
        let mut edited = m.clone();
        edited.max_actions = 99;
        assert!(final_report(&edited, &straight)
            .unwrap_err()
            .contains("does not match"));
    }
}
