//! A fast, deterministic hasher for engine-internal maps.
//!
//! The engine and schedulers key several hot maps by small integers (timer
//! ids, event sequence numbers, packed `(src, dst)` pairs). The standard
//! `RandomState`/SipHash combination is both slower than necessary for
//! integer keys and randomly seeded per map, so switching to this
//! multiplicative hasher removes per-lookup overhead *and* makes iteration
//! order a pure function of the inserted keys — one less source of
//! accidental nondeterminism.
//!
//! Not DoS-resistant by design: every key hashed here is simulator-internal
//! and never attacker-controlled.

use core::hash::{BuildHasherDefault, Hasher};
use std::collections::{HashMap, HashSet};

/// A multiplicative `u64` hasher (Fibonacci hashing with an xor-shift
/// finalizer). Deterministic: no per-instance random state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

/// 2^64 / φ — the classic Fibonacci-hashing multiplier.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        // xor-shift finalizer so low bits (which HashMap uses for bucket
        // selection) depend on every input bit.
        let mut h = self.state;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.state = (self.state ^ v).wrapping_mul(GOLDEN);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` keyed by the deterministic [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// A `HashSet` keyed by the deterministic [`FastHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_integer_keys() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn nearby_keys_spread_in_low_bits() {
        // Bucket selection uses the low bits; sequential ids must not
        // collide there wholesale.
        let low = |v: u64| {
            let mut h = FastHasher::default();
            h.write_u64(v);
            h.finish() & 0xFF
        };
        let distinct: std::collections::HashSet<u64> = (0..256).map(low).collect();
        assert!(
            distinct.len() > 128,
            "only {} distinct low bytes",
            distinct.len()
        );
    }

    #[test]
    fn write_bytes_matches_padded_words() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FastHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn set_alias_works() {
        let mut s: FastSet<u32> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }
}
