//! The value type agreed upon by consensus.

use core::fmt;

/// An opaque consensus value (e.g. a block digest or a binary vote).
///
/// The simulator does not interpret values; it only checks that honest nodes
/// decide *equal* values for equal slots. Protocols that agree on bits use
/// [`Value::ZERO`] / [`Value::ONE`]; block-based protocols typically use a
/// digest from `bft-sim-crypto`.
///
/// # Examples
///
/// ```
/// use bft_sim_core::value::Value;
///
/// assert_ne!(Value::ZERO, Value::ONE);
/// assert_eq!(Value::new(42).as_u64(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(u64);

impl Value {
    /// The binary value `0`.
    pub const ZERO: Value = Value(0);
    /// The binary value `1`.
    pub const ONE: Value = Value(1);

    /// Creates a value from a raw 64-bit payload.
    pub const fn new(v: u64) -> Self {
        Value(v)
    }

    /// Creates a binary value from a boolean.
    pub const fn from_bit(bit: bool) -> Self {
        if bit {
            Value::ONE
        } else {
            Value::ZERO
        }
    }

    /// Returns the raw 64-bit payload.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Interprets the value as a bit (`!= 0`).
    pub const fn as_bit(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_values() {
        assert!(!Value::ZERO.as_bit());
        assert!(Value::ONE.as_bit());
        assert_eq!(Value::from_bit(true), Value::ONE);
        assert_eq!(Value::from_bit(false), Value::ZERO);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Value::new(255).to_string(), "v0xff");
    }
}
