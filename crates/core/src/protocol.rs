//! The consensus-module interface.
//!
//! To simulate a custom protocol, implement [`Protocol`]: the engine calls
//! [`on_message`](Protocol::on_message) when a message event for this node is
//! dispatched and [`on_timer`](Protocol::on_timer) when a registered time
//! event fires — exactly the `onMsgEvent` / `onTimeEvent` pair of §III-A3.
//! Results are reported through the [`Context`] (the paper's
//! `reportToSystem`).

use crate::context::Context;
use crate::event::Timer;
use crate::ids::NodeId;
use crate::message::Message;

/// The core logic of one honest node.
///
/// All adversarial behaviour lives in the attacker module
/// ([`Adversary`](crate::adversary::Adversary)); a `Protocol` implementation
/// only ever describes honest behaviour.
///
/// # Examples
///
/// A protocol that decides a constant immediately:
///
/// ```
/// use bft_sim_core::prelude::*;
///
/// #[derive(Debug)]
/// struct Trivial;
///
/// impl Protocol for Trivial {
///     fn init(&mut self, ctx: &mut Context<'_>) {
///         ctx.decide(Value::new(7));
///     }
///     fn on_message(&mut self, _msg: &Message, _ctx: &mut Context<'_>) {}
///     fn on_timer(&mut self, _timer: &Timer, _ctx: &mut Context<'_>) {}
/// }
/// ```
pub trait Protocol: core::fmt::Debug + Send {
    /// Called once at simulation start (time 0) before any event dispatch.
    fn init(&mut self, ctx: &mut Context<'_>);

    /// Called when a message event addressed to this node is dispatched.
    fn on_message(&mut self, msg: &Message, ctx: &mut Context<'_>);

    /// Called when a time event registered by this node fires.
    fn on_timer(&mut self, timer: &Timer, ctx: &mut Context<'_>);

    /// Human-readable protocol name, used in results and traces.
    fn name(&self) -> &'static str {
        "protocol"
    }
}

/// Builds one protocol instance per node. A plain closure works:
///
/// ```
/// use bft_sim_core::prelude::*;
///
/// #[derive(Debug)]
/// struct Trivial;
/// # impl Protocol for Trivial {
/// #     fn init(&mut self, ctx: &mut Context<'_>) {}
/// #     fn on_message(&mut self, _m: &Message, _c: &mut Context<'_>) {}
/// #     fn on_timer(&mut self, _t: &Timer, _c: &mut Context<'_>) {}
/// # }
///
/// let factory = |_id: NodeId| -> Box<dyn Protocol> { Box::new(Trivial) };
/// ```
pub trait ProtocolFactory {
    /// Creates the protocol instance for node `id`.
    fn create(&self, id: NodeId) -> Box<dyn Protocol>;
}

impl<F> ProtocolFactory for F
where
    F: Fn(NodeId) -> Box<dyn Protocol>,
{
    fn create(&self, id: NodeId) -> Box<dyn Protocol> {
        self(id)
    }
}

impl ProtocolFactory for Box<dyn ProtocolFactory> {
    fn create(&self, id: NodeId) -> Box<dyn Protocol> {
        (**self).create(id)
    }
}

impl ProtocolFactory for Box<dyn ProtocolFactory + Send> {
    fn create(&self, id: NodeId) -> Box<dyn Protocol> {
        (**self).create(id)
    }
}

/// Placeholder protocol used internally while a node's real instance is
/// checked out for dispatch; it must never observe events.
#[derive(Debug)]
pub(crate) struct Vacant;

impl Protocol for Vacant {
    fn init(&mut self, _ctx: &mut Context<'_>) {
        unreachable!("vacant slot dispatched");
    }

    fn on_message(&mut self, _msg: &Message, _ctx: &mut Context<'_>) {
        unreachable!("vacant slot dispatched");
    }

    fn on_timer(&mut self, _timer: &Timer, _ctx: &mut Context<'_>) {
        unreachable!("vacant slot dispatched");
    }

    fn name(&self) -> &'static str {
        "vacant"
    }
}
