//! The interface a protocol uses to interact with the simulation — sending
//! messages, registering time events, and reporting results (the paper's
//! `reportToSystem`).

use std::borrow::Cow;
use std::sync::Arc;

use rand::rngs::SmallRng;

use crate::ids::{NodeId, TimerId};
use crate::payload::{Payload, PayloadCell};
use crate::smallstr::SmallStr;
use crate::time::{SimDuration, SimTime};
use crate::value::Value;

/// Buffered effects of one protocol callback; the engine applies them after
/// the callback returns (which keeps the callback free of engine borrows).
///
/// Point-to-point sends, self-sends and timers carry a [`PayloadCell`], so
/// small payloads ride inline without touching the heap; broadcasts keep the
/// one shared `Arc` that all n − 1 destinations alias.
#[derive(Debug)]
pub(crate) enum Action {
    Send {
        dst: NodeId,
        payload: PayloadCell,
    },
    Broadcast {
        payload: Arc<dyn Payload>,
        include_self: bool,
    },
    SendSelf {
        payload: PayloadCell,
        delay: SimDuration,
    },
    SetTimer {
        id: TimerId,
        delay: SimDuration,
        payload: PayloadCell,
    },
    CancelTimer(TimerId),
    Decide(Value),
    EnterView(u64),
    Custom {
        label: Cow<'static, str>,
        detail: SmallStr,
    },
}

/// Handle passed to every [`Protocol`](crate::protocol::Protocol) callback.
///
/// Mirrors the consensus-module interface of §III-A3: messages go out through
/// the network module, time events are registered with the controller, and
/// decisions are reported back to the system.
#[derive(Debug)]
pub struct Context<'a> {
    node: NodeId,
    now: SimTime,
    n: usize,
    f: usize,
    lambda: SimDuration,
    rng: &'a mut SmallRng,
    actions: &'a mut Vec<Action>,
    next_timer_id: &'a mut u64,
}

impl<'a> Context<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        node: NodeId,
        now: SimTime,
        n: usize,
        f: usize,
        lambda: SimDuration,
        rng: &'a mut SmallRng,
        actions: &'a mut Vec<Action>,
        next_timer_id: &'a mut u64,
    ) -> Self {
        Context {
            node,
            now,
            n,
            f,
            lambda,
            rng,
            actions,
            next_timer_id,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of nodes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Fault budget `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The configured network-delay estimate λ (the protocol timeout
    /// parameter from the paper's evaluation).
    pub fn lambda(&self) -> SimDuration {
        self.lambda
    }

    /// The run's deterministic RNG. All protocol randomness must come from
    /// here to keep runs reproducible.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `payload` to `dst` through the network module. The message is
    /// assigned a delay by the network model and passes through the attacker
    /// module before delivery. Small payloads (see
    /// [`fits_inline`](crate::payload::fits_inline)) travel inline — no
    /// allocation per send.
    pub fn send<P: Payload + Clone + 'static>(&mut self, dst: NodeId, payload: P) {
        self.actions.push(Action::Send {
            dst,
            payload: PayloadCell::of(payload),
        });
    }

    /// Sends `payload` to every *other* node (n − 1 transmissions). The
    /// payload is allocated once and shared by refcount across all
    /// destinations — broadcasting performs no per-destination deep clone.
    pub fn broadcast<P: Payload + Clone + 'static>(&mut self, payload: P) {
        self.actions.push(Action::Broadcast {
            payload: Arc::new(payload),
            include_self: false,
        });
    }

    /// Sends `payload` to every node including itself. The self-copy is
    /// delivered locally at the current time without traversing the network
    /// (and is not counted as a transmitted message).
    pub fn broadcast_all<P: Payload + Clone + 'static>(&mut self, payload: P) {
        self.actions.push(Action::Broadcast {
            payload: Arc::new(payload),
            include_self: true,
        });
    }

    /// Delivers `payload` back to this node at the current time. Useful for
    /// protocol-internal state transitions expressed as messages.
    pub fn send_self<P: Payload + Clone + 'static>(&mut self, payload: P) {
        self.actions.push(Action::SendSelf {
            payload: PayloadCell::of(payload),
            delay: SimDuration::ZERO,
        });
    }

    /// Registers a time event `delay` from now; the controller will call
    /// `on_timer` with the given payload. Returns an id usable with
    /// [`cancel_timer`](Context::cancel_timer).
    pub fn set_timer<P: Payload + Clone + 'static>(
        &mut self,
        delay: SimDuration,
        payload: P,
    ) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer {
            id,
            delay,
            payload: PayloadCell::of(payload),
        });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }

    /// Reports that this node decided `value` for its next consensus slot
    /// (slots are decided in order; the controller assigns the index).
    pub fn decide(&mut self, value: Value) {
        self.actions.push(Action::Decide(value));
    }

    /// Reports that this node entered view/round `view` — recorded in the
    /// trace and used for the paper's view-synchronisation analysis (Fig. 9).
    pub fn enter_view(&mut self, view: u64) {
        self.actions.push(Action::EnterView(view));
    }

    /// Records a protocol-defined trace event (e.g. `"pre-prepare"`), the
    /// hook used for cross-validation against ground-truth traces.
    ///
    /// Labels are almost always `&'static str` and details short — both are
    /// stored without allocating in that case. For formatted details prefer
    /// [`report_fmt`](Context::report_fmt), which skips the intermediate
    /// `String` entirely.
    pub fn report(&mut self, label: impl Into<Cow<'static, str>>, detail: impl Into<SmallStr>) {
        self.actions.push(Action::Custom {
            label: label.into(),
            detail: detail.into(),
        });
    }

    /// Records a protocol-defined trace event with a formatted detail,
    /// writing the format arguments straight into inline storage:
    ///
    /// ```ignore
    /// ctx.report_fmt("commit", format_args!("view={view}"));
    /// ```
    ///
    /// Equivalent to `report(label, format!(…))` but allocation-free for
    /// details of up to [`SmallStr::INLINE_CAP`] bytes.
    pub fn report_fmt(&mut self, label: &'static str, args: core::fmt::Arguments<'_>) {
        self.actions.push(Action::Custom {
            label: Cow::Borrowed(label),
            detail: SmallStr::format(args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u8);

    fn with_ctx<R>(f: impl FnOnce(&mut Context<'_>) -> R) -> (R, Vec<Action>) {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut next_timer = 0;
        let mut ctx = Context::new(
            NodeId::new(2),
            SimTime::from_millis(7),
            16,
            5,
            SimDuration::from_millis(1000.0),
            &mut rng,
            &mut actions,
            &mut next_timer,
        );
        let r = f(&mut ctx);
        (r, actions)
    }

    #[test]
    fn identity_accessors() {
        let ((), _) = with_ctx(|ctx| {
            assert_eq!(ctx.id(), NodeId::new(2));
            assert_eq!(ctx.now(), SimTime::from_millis(7));
            assert_eq!(ctx.n(), 16);
            assert_eq!(ctx.f(), 5);
            assert_eq!(ctx.lambda().as_millis_f64(), 1000.0);
        });
    }

    #[test]
    fn actions_are_buffered_in_order() {
        let ((), actions) = with_ctx(|ctx| {
            ctx.send(NodeId::new(1), P(1));
            ctx.broadcast(P(2));
            ctx.decide(Value::ONE);
            ctx.enter_view(3);
        });
        assert_eq!(actions.len(), 4);
        assert!(matches!(actions[0], Action::Send { .. }));
        assert!(matches!(
            actions[1],
            Action::Broadcast {
                include_self: false,
                ..
            }
        ));
        assert!(matches!(actions[2], Action::Decide(Value::ONE)));
        assert!(matches!(actions[3], Action::EnterView(3)));
    }

    #[test]
    fn timer_ids_are_unique_and_sequential() {
        let ((a, b), actions) = with_ctx(|ctx| {
            let a = ctx.set_timer(SimDuration::from_millis(10.0), P(0));
            let b = ctx.set_timer(SimDuration::from_millis(20.0), P(1));
            ctx.cancel_timer(a);
            (a, b)
        });
        assert_ne!(a, b);
        assert!(matches!(actions[2], Action::CancelTimer(id) if id == a));
    }
}
