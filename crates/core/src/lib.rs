//! # bft-sim-core
//!
//! The discrete-event simulation engine at the heart of the BFT simulator — a
//! Rust reproduction of *"An Efficient and Flexible Simulator for Byzantine
//! Fault-Tolerant Protocols"* (DSN 2022).
//!
//! The engine mirrors the paper's five-component architecture (§III-A):
//!
//! * **Controller + event queue** — [`engine::Simulation`] pops timestamped
//!   events from a deterministic priority queue and advances a virtual clock;
//!   no wall-clock time is ever consulted.
//! * **Consensus module** — implement [`protocol::Protocol`]
//!   (`on_message` / `on_timer`, reporting through [`context::Context`]) to
//!   simulate any BFT protocol. The eight protocols evaluated in the paper
//!   live in the `bft-sim-protocols` crate.
//! * **Network module** — [`network::NetworkModel`] assigns each message a
//!   delay sampled from a configurable [`dist::Dist`]; rich models (bounds,
//!   GST, partitions) live in `bft-sim-net`.
//! * **Attacker module** — a single *global* [`adversary::Adversary`]
//!   intercepts every message (rushing by construction) and may drop, delay,
//!   modify or inject messages and adaptively corrupt up to `f` nodes.
//! * **Validator module** — [`validator::Validator`] replays recorded
//!   delivery schedules and cross-checks decisions between independent
//!   simulators.
//!
//! ## Quickstart
//!
//! ```
//! use bft_sim_core::prelude::*;
//! use bft_sim_core::network::ConstantNetwork;
//!
//! // A toy "protocol": every node decides the constant 7 immediately.
//! #[derive(Debug)]
//! struct Fixed;
//! impl Protocol for Fixed {
//!     fn init(&mut self, ctx: &mut Context<'_>) { ctx.decide(Value::new(7)); }
//!     fn on_message(&mut self, _m: &Message, _c: &mut Context<'_>) {}
//!     fn on_timer(&mut self, _t: &Timer, _c: &mut Context<'_>) {}
//! }
//!
//! let result = SimulationBuilder::new(RunConfig::new(4).with_seed(1))
//!     .network(ConstantNetwork::new(SimDuration::from_millis(100.0)))
//!     .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::new(Fixed) })
//!     .build()
//!     .expect("config is valid")
//!     .run();
//!
//! assert_eq!(result.decisions_completed(), 1);
//! assert!(result.safety_violation.is_none());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod buggify;
pub mod campaign;
pub mod config;
pub mod context;
pub mod dist;
pub mod engine;
pub mod error;
pub mod event;
pub mod exec;
pub mod fasthash;
pub mod ids;
pub mod json;
pub mod message;
pub mod metrics;
pub mod network;
pub mod obs;
pub mod oracle;
pub mod payload;
pub mod protocol;
pub mod scheduler;
pub mod smallstr;
pub mod sweep;
pub mod time;
pub mod trace;
pub mod validator;
pub mod value;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::adversary::{Adversary, AdversaryApi, Fate, NullAdversary};
    pub use crate::buggify::{FaultAction, FaultInjector, FaultKind, FaultPreset, FaultStats};
    pub use crate::config::RunConfig;
    pub use crate::context::Context;
    pub use crate::dist::Dist;
    pub use crate::engine::{Simulation, SimulationBuilder, StepObserver};
    pub use crate::error::SimError;
    pub use crate::event::Timer;
    pub use crate::ids::{NodeId, TimerId};
    pub use crate::message::Message;
    pub use crate::metrics::{RunResult, Summary};
    pub use crate::network::{Delivery, LinkDecision, NetworkModel};
    pub use crate::obs::{Histogram, ObsConfig, ObsRing, Observability, PhaseClassifier};
    pub use crate::oracle::{
        Expectations, Oracle, OracleInput, OracleObserver, OracleSuite, OracleViolation,
        OutageWindow, ValueDomain,
    };
    pub use crate::protocol::{Protocol, ProtocolFactory};
    pub use crate::scheduler::{Scheduler, SchedulerKind, SchedulerStats};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceEvent, TraceKind};
    pub use crate::validator::{DeliverySchedule, Validator};
    pub use crate::value::Value;
}
