//! Type-erased protocol message payloads.
//!
//! Each protocol defines its own message enum; the engine moves payloads
//! around as `Box<dyn Payload>` trait objects. The global attacker can
//! [`downcast`](crate::message::Message::downcast_ref) payloads of protocols
//! it understands in order to observe or tamper with them — this is what
//! makes rushing and adaptive attacks expressible (§III-C of the paper).

use core::any::Any;
use core::fmt;

/// A protocol message or timer payload.
///
/// This trait is blanket-implemented for every `'static` type that is
/// `Debug + Send + Clone`, so protocols never implement it by hand:
///
/// ```
/// use bft_sim_core::payload::{Payload, boxed};
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum PingMsg { Ping(u64), Pong(u64) }
///
/// let b = boxed(PingMsg::Ping(7));
/// assert_eq!(b.as_any().downcast_ref::<PingMsg>(), Some(&PingMsg::Ping(7)));
/// ```
pub trait Payload: fmt::Debug + Send {
    /// Upcasts to [`Any`] for downcasting to the concrete message type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast, used by attackers that modify messages in flight.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Clones the payload behind the trait object.
    fn clone_box(&self) -> Box<dyn Payload>;

    /// Name of the concrete payload type, for traces and debugging.
    fn payload_type(&self) -> &'static str;
}

impl<T> Payload for T
where
    T: Any + fmt::Debug + Send + Clone,
{
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Payload> {
        Box::new(self.clone())
    }

    fn payload_type(&self) -> &'static str {
        core::any::type_name::<T>()
    }
}

// NOTE: do NOT implement `Clone for Box<dyn Payload>`. Doing so would make
// `Box<dyn Payload>` itself satisfy the blanket impl above (it would be
// `Any + Debug + Send + Clone`), so method resolution on a boxed payload
// would pick the *box's* `as_any`/`clone_box` instead of the inner value's —
// breaking downcasts and recursing infinitely on clone. Callers clone via
// `payload.clone_box()`, which auto-derefs to the inner trait object.

/// Boxes a concrete payload as a trait object.
pub fn boxed<P: Payload + 'static>(payload: P) -> Box<dyn Payload> {
    Box::new(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Dummy(u32);

    #[test]
    fn downcast_round_trip() {
        let b = boxed(Dummy(5));
        assert_eq!(b.as_any().downcast_ref::<Dummy>(), Some(&Dummy(5)));
        assert!(b.as_any().downcast_ref::<String>().is_none());
    }

    #[test]
    fn clone_preserves_value() {
        let b = boxed(Dummy(9));
        let c = b.clone_box();
        assert_eq!(c.as_any().downcast_ref::<Dummy>(), Some(&Dummy(9)));
    }

    #[test]
    fn mutation_through_any_mut() {
        let mut b = boxed(Dummy(1));
        b.as_any_mut().downcast_mut::<Dummy>().unwrap().0 = 2;
        assert_eq!(b.as_any().downcast_ref::<Dummy>(), Some(&Dummy(2)));
    }

    #[test]
    fn payload_type_names_concrete_type() {
        let b = boxed(Dummy(0));
        assert!(b.payload_type().contains("Dummy"));
    }
}
