//! Type-erased protocol message payloads.
//!
//! Each protocol defines its own message enum; the engine moves payloads
//! around as `Arc<dyn Payload>` trait objects so a broadcast to n−1 peers
//! clones one refcount per destination instead of deep-cloning the payload.
//! The global attacker can
//! [`downcast`](crate::message::Message::downcast_ref) payloads of protocols
//! it understands in order to observe or tamper with them — this is what
//! makes rushing and adaptive attacks expressible (§III-C of the paper).
//! Mutation goes through copy-on-write (see
//! [`Message::downcast_mut`](crate::message::Message::downcast_mut)), so the
//! honest fan-out path stays zero-copy.

use core::any::Any;
use core::fmt;
use std::sync::Arc;

/// A protocol message or timer payload.
///
/// This trait is blanket-implemented for every `'static` type that is
/// `Debug + Send + Sync + Clone`, so protocols never implement it by hand:
///
/// ```
/// use bft_sim_core::payload::{Payload, boxed};
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum PingMsg { Ping(u64), Pong(u64) }
///
/// let b = boxed(PingMsg::Ping(7));
/// assert_eq!(b.as_any().downcast_ref::<PingMsg>(), Some(&PingMsg::Ping(7)));
/// ```
pub trait Payload: fmt::Debug + Send + Sync {
    /// Upcasts to [`Any`] for downcasting to the concrete message type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast, used by attackers that modify messages in flight.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Clones the payload behind the trait object into a fresh box.
    fn clone_box(&self) -> Box<dyn Payload>;

    /// Clones the payload behind the trait object into a fresh shared
    /// allocation. This is a *deep* clone; use `Arc::clone` on an existing
    /// `Arc<dyn Payload>` for the O(1) refcount bump.
    fn clone_arc(&self) -> Arc<dyn Payload>;

    /// Name of the concrete payload type, for traces and debugging.
    fn payload_type(&self) -> &'static str;
}

impl<T> Payload for T
where
    T: Any + fmt::Debug + Send + Sync + Clone,
{
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Payload> {
        Box::new(self.clone())
    }

    fn clone_arc(&self) -> Arc<dyn Payload> {
        Arc::new(self.clone())
    }

    fn payload_type(&self) -> &'static str {
        core::any::type_name::<T>()
    }
}

// NOTE: `Box<dyn Payload>` and `Arc<dyn Payload>` would themselves satisfy
// the blanket impl above if they were `Clone` (the Arc is). Method resolution
// on an `Arc<dyn Payload>` therefore picks the *Arc's* `as_any`/`clone_*`
// instead of the inner value's — breaking downcasts. Inside this crate, every
// call on a shared payload goes through `.as_ref()` first to force dispatch
// on the inner `dyn Payload`; do the same in downstream code.

/// Boxes a concrete payload as a trait object.
pub fn boxed<P: Payload + 'static>(payload: P) -> Box<dyn Payload> {
    Box::new(payload)
}

/// Wraps a concrete payload in a shared trait object, ready for broadcast.
pub fn shared<P: Payload + 'static>(payload: P) -> Arc<dyn Payload> {
    Arc::new(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Dummy(u32);

    #[test]
    fn downcast_round_trip() {
        let b = boxed(Dummy(5));
        assert_eq!(b.as_any().downcast_ref::<Dummy>(), Some(&Dummy(5)));
        assert!(b.as_any().downcast_ref::<String>().is_none());
    }

    #[test]
    fn clone_preserves_value() {
        let b = boxed(Dummy(9));
        let c = b.clone_box();
        assert_eq!(c.as_any().downcast_ref::<Dummy>(), Some(&Dummy(9)));
    }

    #[test]
    fn shared_clone_arc_is_deep() {
        let a = shared(Dummy(3));
        let b = a.as_ref().clone_arc();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.as_ref().as_any().downcast_ref::<Dummy>(), Some(&Dummy(3)));
    }

    #[test]
    fn arc_refcount_clone_is_shallow() {
        let a = shared(Dummy(4));
        let b = Arc::clone(&a);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn mutation_through_any_mut() {
        let mut b = boxed(Dummy(1));
        b.as_any_mut().downcast_mut::<Dummy>().unwrap().0 = 2;
        assert_eq!(b.as_any().downcast_ref::<Dummy>(), Some(&Dummy(2)));
    }

    #[test]
    fn payload_type_names_concrete_type() {
        let b = boxed(Dummy(0));
        assert!(b.payload_type().contains("Dummy"));
    }
}
