//! Type-erased protocol message payloads.
//!
//! Each protocol defines its own message enum; the engine moves payloads
//! around as `Arc<dyn Payload>` trait objects so a broadcast to n−1 peers
//! clones one refcount per destination instead of deep-cloning the payload.
//! The global attacker can
//! [`downcast`](crate::message::Message::downcast_ref) payloads of protocols
//! it understands in order to observe or tamper with them — this is what
//! makes rushing and adaptive attacks expressible (§III-C of the paper).
//! Mutation goes through copy-on-write (see
//! [`Message::downcast_mut`](crate::message::Message::downcast_mut)), so the
//! honest fan-out path stays zero-copy.

use core::any::Any;
use core::fmt;
use std::sync::Arc;

/// A protocol message or timer payload.
///
/// This trait is blanket-implemented for every `'static` type that is
/// `Debug + Send + Sync + Clone`, so protocols never implement it by hand:
///
/// ```
/// use bft_sim_core::payload::{Payload, boxed};
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum PingMsg { Ping(u64), Pong(u64) }
///
/// let b = boxed(PingMsg::Ping(7));
/// assert_eq!(b.as_any().downcast_ref::<PingMsg>(), Some(&PingMsg::Ping(7)));
/// ```
pub trait Payload: fmt::Debug + Send + Sync {
    /// Upcasts to [`Any`] for downcasting to the concrete message type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast, used by attackers that modify messages in flight.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Clones the payload behind the trait object into a fresh box.
    fn clone_box(&self) -> Box<dyn Payload>;

    /// Clones the payload behind the trait object into a fresh shared
    /// allocation. This is a *deep* clone; use `Arc::clone` on an existing
    /// `Arc<dyn Payload>` for the O(1) refcount bump.
    fn clone_arc(&self) -> Arc<dyn Payload>;

    /// Name of the concrete payload type, for traces and debugging.
    fn payload_type(&self) -> &'static str;

    /// Approximate size of the payload on the wire, in bytes.
    ///
    /// The network model charges serialization time for these bytes against
    /// per-link bandwidth. The blanket impl reports the in-memory size of
    /// the concrete type — a deterministic, allocation-free proxy for a real
    /// encoding (protocol enums are as large as their largest variant, which
    /// is exactly the conservative bound a capacity model wants).
    fn wire_size(&self) -> usize;
}

impl<T> Payload for T
where
    T: Any + fmt::Debug + Send + Sync + Clone,
{
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Payload> {
        Box::new(self.clone())
    }

    fn clone_arc(&self) -> Arc<dyn Payload> {
        Arc::new(self.clone())
    }

    fn payload_type(&self) -> &'static str {
        core::any::type_name::<T>()
    }

    fn wire_size(&self) -> usize {
        core::mem::size_of::<T>()
    }
}

// NOTE: `Box<dyn Payload>` and `Arc<dyn Payload>` would themselves satisfy
// the blanket impl above if they were `Clone` (the Arc is). Method resolution
// on an `Arc<dyn Payload>` therefore picks the *Arc's* `as_any`/`clone_*`
// instead of the inner value's — breaking downcasts. Inside this crate, every
// call on a shared payload goes through `.as_ref()` first to force dispatch
// on the inner `dyn Payload`; do the same in downstream code.

/// Boxes a concrete payload as a trait object.
pub fn boxed<P: Payload + 'static>(payload: P) -> Box<dyn Payload> {
    Box::new(payload)
}

/// Wraps a concrete payload in a shared trait object, ready for broadcast.
pub fn shared<P: Payload + 'static>(payload: P) -> Arc<dyn Payload> {
    Arc::new(payload)
}

/// Number of `u64` words in the inline payload buffer.
const INLINE_WORDS: usize = 12;

/// Maximum payload size (bytes) stored inline by [`PayloadCell`] — sized so
/// every built-in protocol's wire enum fits (enums are as large as their
/// largest variant; HotStuff's `Proposal` is the current high-water mark).
pub const INLINE_PAYLOAD_BYTES: usize = INLINE_WORDS * 8;

/// Whether values of type `T` are stored inline by [`PayloadCell::of`].
pub const fn fits_inline<T>() -> bool {
    core::mem::size_of::<T>() <= INLINE_PAYLOAD_BYTES && core::mem::align_of::<T>() <= 8
}

type InlineBuf = [u64; INLINE_WORDS];

/// Hand-rolled vtable for payloads stored inline: plain fn pointers over
/// the raw buffer, monomorphised per concrete type by [`VtFor`].
struct InlineVt {
    as_dyn: unsafe fn(&InlineBuf) -> &dyn Payload,
    as_dyn_mut: unsafe fn(&mut InlineBuf) -> &mut dyn Payload,
    clone_into: unsafe fn(&InlineBuf, &mut InlineBuf),
    clone_arc: unsafe fn(&InlineBuf) -> Arc<dyn Payload>,
    drop_in_place: unsafe fn(&mut InlineBuf),
}

// SAFETY (all five): callers guarantee `buf` holds a valid, initialised `T`
// written by `InlinePayload::new::<T>` with `fits_inline::<T>()` true, so
// the buffer is large enough and sufficiently aligned for `T`.
unsafe fn as_dyn_impl<T: Payload + 'static>(buf: &InlineBuf) -> &dyn Payload {
    unsafe { &*(buf.as_ptr() as *const T) }
}

unsafe fn as_dyn_mut_impl<T: Payload + 'static>(buf: &mut InlineBuf) -> &mut dyn Payload {
    unsafe { &mut *(buf.as_mut_ptr() as *mut T) }
}

unsafe fn clone_into_impl<T: Payload + Clone + 'static>(src: &InlineBuf, dst: &mut InlineBuf) {
    let value = unsafe { (*(src.as_ptr() as *const T)).clone() };
    unsafe { core::ptr::write(dst.as_mut_ptr() as *mut T, value) };
}

unsafe fn clone_arc_impl<T: Payload + Clone + 'static>(buf: &InlineBuf) -> Arc<dyn Payload> {
    Arc::new(unsafe { (*(buf.as_ptr() as *const T)).clone() })
}

unsafe fn drop_in_place_impl<T: Payload + 'static>(buf: &mut InlineBuf) {
    unsafe { core::ptr::drop_in_place(buf.as_mut_ptr() as *mut T) };
}

/// Const holder that promotes one [`InlineVt`] per concrete payload type.
struct VtFor<T>(core::marker::PhantomData<T>);

impl<T: Payload + Clone + 'static> VtFor<T> {
    const VT: InlineVt = InlineVt {
        as_dyn: as_dyn_impl::<T>,
        as_dyn_mut: as_dyn_mut_impl::<T>,
        clone_into: clone_into_impl::<T>,
        clone_arc: clone_arc_impl::<T>,
        drop_in_place: drop_in_place_impl::<T>,
    };
}

/// A payload stored inline in a fixed buffer — no heap allocation for the
/// value, no refcount. Cloning deep-copies into a fresh buffer (still no
/// allocation unless the payload itself owns heap data).
pub struct InlinePayload {
    vt: &'static InlineVt,
    buf: InlineBuf,
}

impl InlinePayload {
    fn new<T: Payload + Clone + 'static>(value: T) -> Self {
        debug_assert!(fits_inline::<T>());
        let mut buf = [0u64; INLINE_WORDS];
        // SAFETY: `fits_inline::<T>()` holds (checked by the only caller,
        // `PayloadCell::of`), so the buffer is large and aligned enough.
        unsafe { core::ptr::write(buf.as_mut_ptr() as *mut T, value) };
        InlinePayload {
            vt: &VtFor::<T>::VT,
            buf,
        }
    }

    /// Borrows the payload as a trait object.
    pub fn as_dyn(&self) -> &dyn Payload {
        // SAFETY: `buf` holds the `T` the vtable was monomorphised for.
        unsafe { (self.vt.as_dyn)(&self.buf) }
    }

    /// Mutably borrows the payload as a trait object.
    pub fn as_dyn_mut(&mut self) -> &mut dyn Payload {
        // SAFETY: as above; the cell owns the value exclusively.
        unsafe { (self.vt.as_dyn_mut)(&mut self.buf) }
    }

    /// Deep-clones the payload into a fresh shared allocation.
    pub fn clone_arc(&self) -> Arc<dyn Payload> {
        // SAFETY: as above.
        unsafe { (self.vt.clone_arc)(&self.buf) }
    }
}

// SAFETY: the stored value is `Send + Sync` (every `Payload` is), and the
// vtable is a `'static` shared reference to plain fn pointers.
unsafe impl Send for InlinePayload {}
unsafe impl Sync for InlinePayload {}

impl Clone for InlinePayload {
    fn clone(&self) -> Self {
        let mut buf = [0u64; INLINE_WORDS];
        // SAFETY: `self.buf` holds the vtable's `T`; `buf` is uninitialised
        // destination space of the same size and alignment.
        unsafe { (self.vt.clone_into)(&self.buf, &mut buf) };
        InlinePayload { vt: self.vt, buf }
    }
}

impl Drop for InlinePayload {
    fn drop(&mut self) {
        // SAFETY: `buf` holds the vtable's `T`, dropped exactly once here.
        unsafe { (self.vt.drop_in_place)(&mut self.buf) };
    }
}

impl fmt::Debug for InlinePayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_dyn().fmt(f)
    }
}

enum CellRepr {
    Inline(InlinePayload),
    Shared(Arc<dyn Payload>),
}

/// The engine's unified payload slot: small payloads live inline (zero
/// allocations on the point-to-point send and timer hot paths), large or
/// broadcast payloads stay behind an `Arc` (one allocation shared by every
/// destination).
///
/// Cloning is always cheap: an inline byte copy or a refcount bump.
#[derive(Debug, Clone)]
pub struct PayloadCell {
    repr: CellRepr,
}

impl fmt::Debug for CellRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellRepr::Inline(p) => p.fmt(f),
            CellRepr::Shared(p) => p.as_ref().fmt(f),
        }
    }
}

impl Clone for CellRepr {
    fn clone(&self) -> Self {
        match self {
            CellRepr::Inline(p) => CellRepr::Inline(p.clone()),
            CellRepr::Shared(p) => CellRepr::Shared(Arc::clone(p)),
        }
    }
}

impl PayloadCell {
    /// Wraps a concrete payload, choosing inline storage when it fits (see
    /// [`fits_inline`]) and a shared allocation otherwise.
    pub fn of<P: Payload + Clone + 'static>(payload: P) -> Self {
        if fits_inline::<P>() {
            PayloadCell {
                repr: CellRepr::Inline(InlinePayload::new(payload)),
            }
        } else {
            PayloadCell {
                repr: CellRepr::Shared(Arc::new(payload)),
            }
        }
    }

    /// Borrows the payload as a trait object.
    pub fn as_dyn(&self) -> &dyn Payload {
        match &self.repr {
            CellRepr::Inline(p) => p.as_dyn(),
            CellRepr::Shared(p) => p.as_ref(),
        }
    }

    /// Mutably borrows the payload. Inline payloads are uniquely owned and
    /// mutate in place; shared payloads are copy-on-write (deep-cloned first
    /// if other handles alias the allocation).
    pub fn as_dyn_mut(&mut self) -> &mut dyn Payload {
        match &mut self.repr {
            CellRepr::Inline(p) => p.as_dyn_mut(),
            CellRepr::Shared(p) => {
                if Arc::get_mut(p).is_none() {
                    *p = p.as_ref().clone_arc();
                }
                Arc::get_mut(p).expect("freshly cloned payload arc is unique")
            }
        }
    }

    /// The shared handle, if the payload is `Arc`-backed. Inline payloads
    /// return `None`; promote them with [`PayloadCell::clone_arc`].
    pub fn arc(&self) -> Option<&Arc<dyn Payload>> {
        match &self.repr {
            CellRepr::Inline(_) => None,
            CellRepr::Shared(p) => Some(p),
        }
    }

    /// A shared handle to the payload: a refcount bump for `Arc`-backed
    /// payloads, a deep clone into a fresh allocation for inline ones.
    pub fn clone_arc(&self) -> Arc<dyn Payload> {
        match &self.repr {
            CellRepr::Inline(p) => p.clone_arc(),
            CellRepr::Shared(p) => Arc::clone(p),
        }
    }

    /// Whether the payload is stored inline (no allocation, no refcount).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, CellRepr::Inline(_))
    }

    /// The payload's wire size in bytes (see [`Payload::wire_size`]).
    /// Dispatches through the trait object — no allocation, no copy.
    pub fn wire_size(&self) -> usize {
        self.as_dyn().wire_size()
    }
}

impl From<Arc<dyn Payload>> for PayloadCell {
    fn from(p: Arc<dyn Payload>) -> Self {
        PayloadCell {
            repr: CellRepr::Shared(p),
        }
    }
}

impl From<Box<dyn Payload>> for PayloadCell {
    fn from(p: Box<dyn Payload>) -> Self {
        PayloadCell {
            repr: CellRepr::Shared(Arc::from(p)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Dummy(u32);

    #[test]
    fn downcast_round_trip() {
        let b = boxed(Dummy(5));
        assert_eq!(b.as_any().downcast_ref::<Dummy>(), Some(&Dummy(5)));
        assert!(b.as_any().downcast_ref::<String>().is_none());
    }

    #[test]
    fn clone_preserves_value() {
        let b = boxed(Dummy(9));
        let c = b.clone_box();
        assert_eq!(c.as_any().downcast_ref::<Dummy>(), Some(&Dummy(9)));
    }

    #[test]
    fn shared_clone_arc_is_deep() {
        let a = shared(Dummy(3));
        let b = a.as_ref().clone_arc();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.as_ref().as_any().downcast_ref::<Dummy>(), Some(&Dummy(3)));
    }

    #[test]
    fn arc_refcount_clone_is_shallow() {
        let a = shared(Dummy(4));
        let b = Arc::clone(&a);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn mutation_through_any_mut() {
        let mut b = boxed(Dummy(1));
        b.as_any_mut().downcast_mut::<Dummy>().unwrap().0 = 2;
        assert_eq!(b.as_any().downcast_ref::<Dummy>(), Some(&Dummy(2)));
    }

    #[test]
    fn payload_type_names_concrete_type() {
        let b = boxed(Dummy(0));
        assert!(b.payload_type().contains("Dummy"));
    }

    #[test]
    fn wire_size_reports_concrete_size_for_both_cell_shapes() {
        #[derive(Debug, Clone, PartialEq)]
        struct Big([u64; INLINE_WORDS + 1]);
        let small = PayloadCell::of(Dummy(7));
        assert!(small.is_inline());
        assert_eq!(small.wire_size(), core::mem::size_of::<Dummy>());
        let big = PayloadCell::of(Big([0; INLINE_WORDS + 1]));
        assert!(!big.is_inline());
        assert_eq!(big.wire_size(), core::mem::size_of::<Big>());
        // The trait-object path agrees with the cell accessor.
        assert_eq!(small.as_dyn().wire_size(), small.wire_size());
    }

    #[test]
    fn cell_inlines_small_payloads_and_spills_large_ones() {
        #[derive(Debug, Clone, PartialEq)]
        struct Big([u64; INLINE_WORDS + 1]);
        assert!(fits_inline::<Dummy>());
        assert!(!fits_inline::<Big>());
        let small = PayloadCell::of(Dummy(7));
        assert!(small.is_inline());
        assert!(small.arc().is_none());
        assert_eq!(
            small.as_dyn().as_any().downcast_ref::<Dummy>(),
            Some(&Dummy(7))
        );
        let big = PayloadCell::of(Big([3; INLINE_WORDS + 1]));
        assert!(!big.is_inline());
        assert!(big.arc().is_some());
        assert!(big.as_dyn().as_any().downcast_ref::<Big>().is_some());
    }

    #[test]
    fn inline_cell_clone_is_deep_and_drop_runs() {
        // A payload that owns heap data: clone must deep-copy it, and both
        // copies must drop without leaking or double-freeing.
        #[derive(Debug, Clone, PartialEq)]
        struct Owned(Vec<u64>);
        assert!(fits_inline::<Owned>());
        let a = PayloadCell::of(Owned(vec![1, 2, 3]));
        assert!(a.is_inline());
        let mut b = a.clone();
        b.as_dyn_mut()
            .as_any_mut()
            .downcast_mut::<Owned>()
            .unwrap()
            .0
            .push(4);
        assert_eq!(
            a.as_dyn().as_any().downcast_ref::<Owned>(),
            Some(&Owned(vec![1, 2, 3]))
        );
        assert_eq!(
            b.as_dyn().as_any().downcast_ref::<Owned>(),
            Some(&Owned(vec![1, 2, 3, 4]))
        );
        drop(a);
        drop(b);
    }

    #[test]
    fn inline_cell_promotes_to_arc_on_demand() {
        let cell = PayloadCell::of(Dummy(9));
        let arc = cell.clone_arc();
        assert_eq!(
            arc.as_ref().as_any().downcast_ref::<Dummy>(),
            Some(&Dummy(9))
        );
        // Promoting again yields an independent allocation.
        assert!(!Arc::ptr_eq(&arc, &cell.clone_arc()));
    }

    #[test]
    fn shared_cell_mutation_is_copy_on_write() {
        let arc: Arc<dyn Payload> = shared(Dummy(1));
        let mut cell = PayloadCell::from(Arc::clone(&arc));
        cell.as_dyn_mut()
            .as_any_mut()
            .downcast_mut::<Dummy>()
            .unwrap()
            .0 = 2;
        // The original handle is untouched; the cell re-homed the payload.
        assert_eq!(
            arc.as_ref().as_any().downcast_ref::<Dummy>(),
            Some(&Dummy(1))
        );
        assert_eq!(
            cell.as_dyn().as_any().downcast_ref::<Dummy>(),
            Some(&Dummy(2))
        );
    }

    #[test]
    fn cell_from_box_and_arc() {
        let from_box = PayloadCell::from(boxed(Dummy(3)));
        assert_eq!(
            from_box.as_dyn().as_any().downcast_ref::<Dummy>(),
            Some(&Dummy(3))
        );
        let a = shared(Dummy(4));
        let from_arc = PayloadCell::from(Arc::clone(&a));
        assert!(Arc::ptr_eq(from_arc.arc().unwrap(), &a));
    }
}
