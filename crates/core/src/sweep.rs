//! Deterministic parallel sweep engine.
//!
//! Experiment sweeps — `bft-sim fuzz`, `bench-baseline`, the repetition
//! machinery behind every figure — consist of many *independent* seeded
//! runs: each run is a pure function of its seed *and nothing else* — PR 1/
//! PR 2 guarantee bit-identical [`RunResult`](crate::metrics::RunResult)s
//! per seed, and the scheduler determinism contract
//! ([`crate::scheduler`]) extends that to every queue backend — so a sweep
//! can be sharded across cores without any cross-run coordination, and its
//! output is identical at any thread count under any
//! [`SchedulerKind`](crate::scheduler::SchedulerKind).
//!
//! [`sweep`] does exactly that with `std::thread` + channels only (the
//! repository is offline and dependency-free by design): a shared atomic
//! job counter hands out indices to `min(threads, jobs)` workers
//! (work-stealing, so an unlucky shard of slow scenarios cannot straggle
//! the sweep), every worker sends `(index, result)` over an mpsc channel,
//! and the collector reassembles the results **in job order**. Because
//! each job is deterministic and results are keyed by index, the output
//! vector — and anything serialised from it — is byte-identical regardless
//! of the thread count.
//!
//! Per-job panics are isolated with [`std::panic::catch_unwind`]: one
//! poisoned scenario surfaces as an `Err(`[`SweepPanic`]`)` in its slot
//! instead of killing a 10k-seed sweep. (The process-global panic hook
//! still runs, so the usual panic message appears on stderr when it
//! fires; callers that expect panics may want to report the collected
//! [`SweepPanic`]s instead of re-raising.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One job's panic, caught and reported instead of aborting the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPanic {
    /// Index of the job that panicked.
    pub job: usize,
    /// The panic payload, when it was a string (the overwhelmingly common
    /// case); a placeholder otherwise.
    pub message: String,
}

impl core::fmt::Display for SweepPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "job {} panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for SweepPanic {}

/// The host's available parallelism (1 if it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Resolves a user-supplied thread count: `0` means "use all cores"
/// ([`available_threads`]); anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Runs `jobs` independent jobs on `min(threads, jobs)` worker threads and
/// returns their results **in job order** — element `i` is `run(i)`'s
/// outcome. `threads == 0` means [`available_threads`]. Each job runs under
/// [`catch_unwind`], so a panicking job yields `Err(SweepPanic)` in its
/// slot while every other job still completes.
///
/// Output is byte-identical for every thread count as long as `run` is
/// deterministic per index (jobs must not share mutable state — which is
/// also what makes them safe to shard).
///
/// # Examples
///
/// ```
/// use bft_sim_core::sweep::sweep;
///
/// let squares = sweep(5, 2, |i| i * i);
/// let values: Vec<usize> = squares.into_iter().map(Result::unwrap).collect();
/// assert_eq!(values, vec![0, 1, 4, 9, 16]);
/// ```
pub fn sweep<T, F>(jobs: usize, threads: usize, run: F) -> Vec<Result<T, SweepPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_caught = |job: usize| -> Result<T, SweepPanic> {
        catch_unwind(AssertUnwindSafe(|| run(job))).map_err(|payload| SweepPanic {
            job,
            message: panic_message(payload.as_ref()),
        })
    };

    let threads = resolve_threads(threads).min(jobs.max(1));
    if threads <= 1 {
        return (0..jobs).map(run_caught).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, SweepPanic>)>();
    let mut slots: Vec<Option<Result<T, SweepPanic>>> = (0..jobs).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let run_caught = &run_caught;
            scope.spawn(move || loop {
                let job = next.fetch_add(1, Ordering::Relaxed);
                if job >= jobs {
                    break;
                }
                if tx.send((job, run_caught(job))).is_err() {
                    break; // collector is gone; nothing left to report to
                }
            });
        }
        drop(tx); // the collector's recv() ends once every worker is done
        for (job, result) in rx {
            slots[job] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every job index was dispatched exactly once"))
        .collect()
}

/// Extracts a human-readable message from a panic payload (as returned by
/// `std::panic::catch_unwind`). Public so harnesses that catch panics
/// themselves — e.g. the fuzzer's observability-enabled runs, which must
/// salvage the event ring of a crashing simulation — report messages in the
/// same format as [`sweep`] does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order_for_every_thread_count() {
        for threads in [0, 1, 2, 3, 4, 8] {
            let results = sweep(17, threads, |i| i * 10);
            let values: Vec<usize> = results.into_iter().map(Result::unwrap).collect();
            assert_eq!(
                values,
                (0..17).map(|i| i * 10).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn output_is_identical_regardless_of_thread_count() {
        // A mildly uneven workload: per-job output depends only on the index.
        let job = |i: usize| -> String {
            let mut acc = i as u64;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            format!("{i}:{acc}")
        };
        let serial: Vec<_> = sweep(64, 1, job).into_iter().map(Result::unwrap).collect();
        for threads in [2, 4, 7] {
            let parallel: Vec<_> = sweep(64, threads, job)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn a_panicking_job_does_not_abort_the_sweep() {
        for threads in [1, 4] {
            let results = sweep(8, threads, |i| {
                assert!(i != 3, "poisoned scenario {i}");
                i
            });
            for (i, r) in results.iter().enumerate() {
                if i == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.job, 3);
                    assert!(p.message.contains("poisoned scenario 3"), "{p}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i, "threads = {threads}");
                }
            }
        }
    }

    #[test]
    fn zero_jobs_and_oversubscription_are_fine() {
        assert!(sweep(0, 4, |i| i).is_empty());
        let one: Vec<_> = sweep(1, 16, |i| i)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn resolve_threads_treats_zero_as_auto() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(3), 3);
        assert!(available_threads() >= 1);
    }
}
