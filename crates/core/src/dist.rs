//! Probability distributions for sampling network delays.
//!
//! The paper samples message delays from configurable distributions (normal,
//! Poisson, …). We implement the samplers from scratch rather than pulling in
//! `rand_distr`, both to keep the dependency set minimal and because delay
//! sampling is on the simulator's hot path.
//!
//! All parameters are in **milliseconds**; [`Dist::sample_delay`] converts to
//! a non-negative [`SimDuration`].

use rand::Rng;

use crate::time::SimDuration;

/// A delay distribution, parameterised in milliseconds.
///
/// # Examples
///
/// ```
/// use bft_sim_core::dist::Dist;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// // The paper's default network: N(250, 50).
/// let d = Dist::normal(250.0, 50.0).sample_delay(&mut rng);
/// assert!(d.as_millis_f64() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dist {
    /// Always returns the same value.
    Constant {
        /// The constant delay (ms).
        value: f64,
    },
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound (ms).
        lo: f64,
        /// Exclusive upper bound (ms).
        hi: f64,
    },
    /// Gaussian with the given mean and standard deviation, the paper's
    /// `N(mu, sigma)` notation. Sampled with the Box–Muller transform.
    Normal {
        /// Mean (ms).
        mu: f64,
        /// Standard deviation (ms).
        sigma: f64,
    },
    /// Log-normal: `exp(N(mu_log, sigma_log))`, a common heavy-tailed model of
    /// Internet round-trip times.
    LogNormal {
        /// Mean of the underlying normal (log-ms).
        mu_log: f64,
        /// Standard deviation of the underlying normal.
        sigma_log: f64,
    },
    /// Exponential with the given mean (ms); memoryless delays.
    Exponential {
        /// Mean (ms). The rate is `1 / mean`.
        mean: f64,
    },
    /// Poisson with the given mean (ms), as suggested in §III-A4 of the
    /// paper. Produces integer millisecond counts.
    Poisson {
        /// Mean (ms).
        mean: f64,
    },
}

impl Dist {
    /// Constant distribution.
    pub fn constant(value: f64) -> Dist {
        Dist::Constant { value }
    }

    /// Uniform over `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        Dist::Uniform { lo, hi }
    }

    /// The paper's `N(mu, sigma)` Gaussian.
    pub fn normal(mu: f64, sigma: f64) -> Dist {
        Dist::Normal { mu, sigma }
    }

    /// Log-normal with the given log-space parameters.
    pub fn log_normal(mu_log: f64, sigma_log: f64) -> Dist {
        Dist::LogNormal { mu_log, sigma_log }
    }

    /// Exponential with the given mean.
    pub fn exponential(mean: f64) -> Dist {
        Dist::Exponential { mean }
    }

    /// Poisson with the given mean.
    pub fn poisson(mean: f64) -> Dist {
        Dist::Poisson { mean }
    }

    /// Draws one raw sample in milliseconds. May be negative for `Normal`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => {
                // NaN or infinite bounds must never reach `gen_range`: the
                // float uniform sampler asserts on (or loops over) non-finite
                // ranges. Degenerate ranges collapse to `lo`; sample_delay
                // clamps a NaN `lo` to zero downstream.
                if !lo.is_finite() || !hi.is_finite() || hi <= lo {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            Dist::Normal { mu, sigma } => mu + sigma * standard_normal(rng),
            Dist::LogNormal { mu_log, sigma_log } => {
                (mu_log + sigma_log * standard_normal(rng)).exp()
            }
            Dist::Exponential { mean } => {
                // The NaN check matters: a NaN mean would otherwise poison
                // the whole sample.
                if mean.is_nan() || mean <= 0.0 {
                    0.0
                } else {
                    // Inverse-CDF sampling; 1-u avoids ln(0).
                    let u: f64 = rng.gen();
                    -mean * (1.0 - u).ln()
                }
            }
            Dist::Poisson { mean } => poisson(rng, mean) as f64,
        }
    }

    /// Draws one delay, clamped to be non-negative, as a [`SimDuration`].
    pub fn sample_delay<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        SimDuration::from_millis(self.sample(rng).max(0.0))
    }

    /// The distribution's mean in milliseconds (the value the paper reports
    /// as `mu`).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Normal { mu, .. } => mu,
            Dist::LogNormal { mu_log, sigma_log } => (mu_log + sigma_log * sigma_log / 2.0).exp(),
            Dist::Exponential { mean } => mean,
            Dist::Poisson { mean } => mean,
        }
    }
}

/// One standard-normal sample via the Box–Muller transform.
///
/// We deliberately use the non-cached variant: caching the second deviate
/// would make sample order-dependent state, complicating reproducibility
/// reasoning for interleaved streams.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Poisson sampler: Knuth's product method for small means, normal
/// approximation (with continuity correction) for large means where the
/// product method would need O(mean) uniforms.
///
/// Degenerate means are clamped rather than propagated: zero, negative,
/// `NaN` and infinite means all yield 0 (matching the clamping contract of
/// [`SimDuration::from_millis`]). A `NaN` mean previously slipped past the
/// `mean <= 0.0` guard into the normal-approximation branch and silently
/// produced 0 by accident; an infinite mean saturated to `u64::MAX` — an
/// absurd ~584-millennia delay — instead of being rejected.
fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if !mean.is_finite() || mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let limit = (-mean).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // For huge finite means the f64 arithmetic stays finite and the
        // float→int cast saturates at u64::MAX (Rust guarantees saturating
        // `as` casts) — no wrap-around is possible.
        let sample = mean + mean.sqrt() * standard_normal(rng) + 0.5;
        sample.max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn stats(dist: Dist, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn constant_is_constant() {
        let (mean, sd) = stats(Dist::constant(42.0), 100, 1);
        assert_eq!(mean, 42.0);
        assert_eq!(sd, 0.0);
    }

    #[test]
    fn normal_moments_match() {
        let (mean, sd) = stats(Dist::normal(250.0, 50.0), 20_000, 2);
        assert!((mean - 250.0).abs() < 2.0, "mean {mean}");
        assert!((sd - 50.0).abs() < 2.0, "sd {sd}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let dist = Dist::uniform(100.0, 200.0);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = dist.sample(&mut rng);
            assert!((100.0..200.0).contains(&x));
        }
        let (mean, _) = stats(dist, 20_000, 4);
        assert!((mean - 150.0).abs() < 2.0);
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(Dist::uniform(10.0, 10.0).sample(&mut rng), 10.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let (mean, _) = stats(Dist::exponential(100.0), 40_000, 6);
        assert!((mean - 100.0).abs() < 3.0, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let (mean, sd) = stats(Dist::poisson(5.0), 40_000, 7);
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
        assert!((sd - 5f64.sqrt()).abs() < 0.2, "sd {sd}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let (mean, sd) = stats(Dist::poisson(400.0), 20_000, 8);
        assert!((mean - 400.0).abs() < 2.0, "mean {mean}");
        assert!((sd - 20.0).abs() < 1.5, "sd {sd}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = SmallRng::seed_from_u64(9);
        let dist = Dist::log_normal(3.0, 1.0);
        for _ in 0..1_000 {
            assert!(dist.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn sample_delay_clamps_negatives() {
        // N(0, 1000) produces many negatives; delays must not.
        let mut rng = SmallRng::seed_from_u64(10);
        let dist = Dist::normal(0.0, 1000.0);
        for _ in 0..1_000 {
            let _ = dist.sample_delay(&mut rng); // from_millis clamps
        }
    }

    #[test]
    fn means_reported() {
        assert_eq!(Dist::constant(5.0).mean(), 5.0);
        assert_eq!(Dist::uniform(0.0, 10.0).mean(), 5.0);
        assert_eq!(Dist::normal(250.0, 50.0).mean(), 250.0);
        assert_eq!(Dist::exponential(9.0).mean(), 9.0);
        assert_eq!(Dist::poisson(9.0).mean(), 9.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = stats(Dist::normal(100.0, 10.0), 100, 42);
        let b = stats(Dist::normal(100.0, 10.0), 100, 42);
        assert_eq!(a, b);
    }

    /// Parameter values that historically exposed cast/guard bugs.
    const EDGE_PARAMS: [f64; 8] = [
        0.0,
        -1.0,
        -1e300,
        1e300,
        1e18,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ];

    /// Every `Dist` variant, across every edge parameter (and every pair for
    /// two-parameter variants), must sample without panicking and produce a
    /// well-defined delay.
    #[test]
    fn every_variant_survives_degenerate_parameters() {
        let mut rng = SmallRng::seed_from_u64(99);
        for &a in &EDGE_PARAMS {
            for &b in &EDGE_PARAMS {
                let dists = [
                    Dist::constant(a),
                    Dist::uniform(a, b),
                    Dist::normal(a, b),
                    Dist::log_normal(a, b),
                    Dist::exponential(a),
                    Dist::poisson(a),
                ];
                for dist in dists {
                    for _ in 0..50 {
                        // Must not panic; the delay is a plain u64 of micros,
                        // so any returned value is structurally valid.
                        let _ = dist.sample_delay(&mut rng);
                    }
                }
            }
        }
    }

    #[test]
    fn poisson_degenerate_means_yield_zero_delay() {
        let mut rng = SmallRng::seed_from_u64(11);
        for mean in [
            0.0,
            -1.0,
            -1e300,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            for _ in 0..100 {
                assert_eq!(
                    Dist::poisson(mean).sample_delay(&mut rng),
                    SimDuration::ZERO,
                    "mean {mean}"
                );
            }
        }
    }

    #[test]
    fn poisson_huge_finite_mean_saturates_without_wrapping() {
        // 1e18 ms is far beyond what the normal approximation can represent
        // exactly; the sample must stay near the mean (never wrap to a small
        // value) and the delay conversion must not panic.
        let mut rng = SmallRng::seed_from_u64(12);
        let dist = Dist::poisson(1e18);
        for _ in 0..200 {
            let raw = dist.sample(&mut rng);
            assert!(raw >= 1e17, "wrapped or collapsed: {raw}");
            let _ = dist.sample_delay(&mut rng);
        }
    }

    #[test]
    fn uniform_with_nan_bounds_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(13);
        // NaN in either bound degrades to the degenerate branch.
        let _ = Dist::uniform(f64::NAN, 10.0).sample_delay(&mut rng);
        let _ = Dist::uniform(0.0, f64::NAN).sample_delay(&mut rng);
        let _ = Dist::uniform(f64::NAN, f64::NAN).sample_delay(&mut rng);
        // Inverted bounds return lo.
        assert_eq!(Dist::uniform(10.0, 5.0).sample(&mut rng), 10.0);
    }

    #[test]
    fn exponential_nan_mean_yields_zero() {
        let mut rng = SmallRng::seed_from_u64(14);
        assert_eq!(Dist::exponential(f64::NAN).sample(&mut rng), 0.0);
        assert_eq!(
            Dist::exponential(f64::NAN).sample_delay(&mut rng),
            SimDuration::ZERO
        );
    }

    #[test]
    fn delays_are_finite_for_ordinary_parameters() {
        // Sanity: across the ordinary parameter space, sample_delay returns
        // plausible micros (non-negative by type, bounded by the cast).
        let mut rng = SmallRng::seed_from_u64(15);
        let dists = [
            Dist::constant(250.0),
            Dist::uniform(10.0, 20.0),
            Dist::normal(250.0, 50.0),
            Dist::log_normal(3.0, 0.5),
            Dist::exponential(100.0),
            Dist::poisson(100.0),
        ];
        for dist in dists {
            for _ in 0..1_000 {
                let d = dist.sample_delay(&mut rng);
                assert!(d.as_micros() < 10_000_000_000, "{dist:?} gave {d:?}");
            }
        }
    }
}
