//! A minimal JSON value type, parser and writer.
//!
//! The build environment is offline, so instead of `serde`/`serde_json` the
//! simulator carries this small self-contained module. It covers everything
//! the repository serialises: golden traces, delivery schedules, CLI config
//! files, CLI reports and the perf baseline (`BENCH_baseline.json`).
//!
//! Objects preserve insertion order so output is deterministic; the pretty
//! printer matches `serde_json`'s two-space style, which keeps the committed
//! golden traces diffable.

use core::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Stored as `f64`; integral values print without a
    /// fractional part (exact for magnitudes below 2⁵³).
    Num(f64),
    /// A non-negative integer literal, exact across the full `u64` range.
    /// Decided values are 64-bit hashes, so the traces need all 64 bits —
    /// an `f64` would silently round above 2⁵³.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a key in an object, mutably — the editing counterpart of
    /// [`Json::get`], used e.g. by tests that hand-mutate committed traces.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (numbers only; floats round to nearest).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serialises compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation (the `serde_json` pretty style).
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no Inf/NaN; null is serde_json's lossy convention too.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Non-negative integer literals keep full u64 precision.
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    /// Reads the four hex digits of a `\uXXXX` escape (the `\u` itself has
    /// already been consumed) and returns the code unit.
    fn unicode_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| core::str::from_utf8(h).ok())
            .ok_or("truncated \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape '{hex}'"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.unicode_escape()?;
                            let code = if (0xD800..=0xDBFF).contains(&code)
                                && self.bytes.get(self.pos) == Some(&b'\\')
                                && self.bytes.get(self.pos + 1) == Some(&b'u')
                            {
                                // A high surrogate followed by another \u
                                // escape: decode the pair (external writers
                                // encode non-BMP chars this way).
                                let mark = self.pos;
                                self.pos += 2;
                                let low = self.unicode_escape()?;
                                if (0xDC00..=0xDFFF).contains(&low) {
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    // Not a low surrogate: rewind and let the
                                    // second escape decode on its own.
                                    self.pos = mark;
                                    code
                                }
                            } else {
                                code
                            };
                            // Lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|w| core::str::from_utf8(w).ok())
                        .ok_or("invalid UTF-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_mut_edits_objects_in_place() {
        let mut v = Json::obj([("n", Json::from(4u64))]);
        *v.get_mut("n").unwrap() = Json::from(7u64);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(7));
        assert!(v.get_mut("missing").is_none());
        assert!(Json::from(1u64).get_mut("n").is_none());
    }

    #[test]
    fn round_trips_compound_values() {
        let v = Json::obj([
            ("name", Json::from("pbft")),
            ("n", Json::from(16u64)),
            ("ratio", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
        ]);
        let text = v.dump();
        assert_eq!(Json::parse(&text).unwrap(), v);
        let pretty = v.dump_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"name\": \"pbft\""));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(250_000u64).dump(), "250000");
        assert_eq!(Json::from(0.25).dump(), "0.25");
    }

    #[test]
    fn u64_values_keep_full_precision() {
        // Above 2^53: an f64 would round this (decided values are hashes).
        let v = Json::from(0xf40c_0724_6da4_cc91u64);
        assert_eq!(v.dump(), "17585438498014678161");
        let back = Json::parse(&v.dump()).unwrap();
        assert_eq!(back.as_u64(), Some(0xf40c_0724_6da4_cc91));
        assert_eq!(back, v);
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
        let back = Json::parse(&v.dump()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn decodes_surrogate_pairs_and_tolerates_lone_surrogates() {
        // External writers encode non-BMP characters as surrogate pairs.
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
        // A high surrogate with no following escape degrades to U+FFFD.
        let v = Json::parse("\"\\ud83dx\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{FFFD}x");
        // A high surrogate followed by a non-low-surrogate escape: both
        // decode independently (the parser rewinds after peeking).
        let v = Json::parse("\"\\ud83d\\u0041\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{FFFD}A");
        // A lone low surrogate degrades to U+FFFD.
        let v = Json::parse("\"\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{FFFD}");
        // Truncated second escape is a hard error, not a panic.
        assert!(Json::parse("\"\\ud83d\\u00\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"k": [1, "s", false]}"#).unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("s"));
        assert_eq!(arr[2].as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }
}
