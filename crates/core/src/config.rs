//! Run configuration.

use crate::error::SimError;
use crate::time::SimDuration;

/// Configuration of a single simulation run — the Rust analogue of the
/// paper's user-supplied configuration file (§III-A1).
///
/// Construct with [`RunConfig::new`] and customise with the builder-style
/// setters:
///
/// ```
/// use bft_sim_core::config::RunConfig;
/// use bft_sim_core::time::SimDuration;
///
/// let cfg = RunConfig::new(16)
///     .with_seed(42)
///     .with_lambda(SimDuration::from_millis(1000.0))
///     .with_target_decisions(10);
/// assert_eq!(cfg.n, 16);
/// assert_eq!(cfg.f, 5); // floor((16 - 1) / 3)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Total number of nodes `n`.
    pub n: usize,
    /// Fault budget `f`: the maximum number of nodes the adversary may
    /// corrupt. Defaults to `floor((n - 1) / 3)`, the partially-synchronous
    /// optimum; synchronous protocols may raise it to `floor((n - 1) / 2)`.
    pub f: usize,
    /// RNG seed; same seed + same config ⇒ identical run.
    pub seed: u64,
    /// The protocol's estimated network-delay upper bound λ (the paper's
    /// timeout parameter, §IV). Defaults to 1000 ms.
    pub lambda: SimDuration,
    /// Number of consensus decisions after which the run stops. `1` for
    /// single-shot protocols; the paper uses `10` for the pipelined
    /// HotStuff+NS and LibraBFT.
    pub target_decisions: u64,
    /// Hard cap on simulated time; a run that reaches it is reported as a
    /// liveness timeout rather than looping forever. Defaults to 1 hour of
    /// simulated time.
    pub time_cap: SimDuration,
    /// Record per-message trace events (expensive; off by default).
    pub record_messages: bool,
}

impl RunConfig {
    /// Creates a configuration for `n` nodes with default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a simulation needs at least one node");
        RunConfig {
            n,
            f: (n.saturating_sub(1)) / 3,
            seed: 0,
            lambda: SimDuration::from_millis(1000.0),
            target_decisions: 1,
            time_cap: SimDuration::from_secs(3600.0),
            record_messages: false,
        }
    }

    /// Sets the fault budget `f`.
    pub fn with_f(mut self, f: usize) -> Self {
        self.f = f;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the timeout parameter λ.
    pub fn with_lambda(mut self, lambda: SimDuration) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets λ from milliseconds.
    pub fn with_lambda_ms(mut self, ms: f64) -> Self {
        self.lambda = SimDuration::from_millis(ms);
        self
    }

    /// Sets the number of decisions to run for.
    pub fn with_target_decisions(mut self, k: u64) -> Self {
        self.target_decisions = k;
        self
    }

    /// Sets the simulated-time cap.
    pub fn with_time_cap(mut self, cap: SimDuration) -> Self {
        self.time_cap = cap;
        self
    }

    /// Enables per-message trace recording.
    pub fn with_message_recording(mut self, on: bool) -> Self {
        self.record_messages = on;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `n` is zero or not
    /// representable as a `u32` node id, `f >= n`, no decisions are
    /// requested, or λ is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n == 0 {
            return Err(SimError::invalid_config("n must be positive"));
        }
        if self.n > u32::MAX as usize {
            return Err(SimError::invalid_config(format!(
                "n={} exceeds the maximum node count {}",
                self.n,
                u32::MAX
            )));
        }
        if self.f >= self.n {
            return Err(SimError::invalid_config(format!(
                "fault budget f={} must be smaller than n={}",
                self.f, self.n
            )));
        }
        if self.target_decisions == 0 {
            return Err(SimError::invalid_config(
                "target_decisions must be at least 1",
            ));
        }
        if self.lambda == SimDuration::ZERO {
            return Err(SimError::invalid_config("lambda must be positive"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let cfg = RunConfig::new(16);
        assert_eq!(cfg.f, 5);
        assert_eq!(cfg.target_decisions, 1);
        assert_eq!(cfg.lambda, SimDuration::from_millis(1000.0));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn classic_sizes_follow_three_f_plus_one() {
        assert_eq!(RunConfig::new(4).f, 1);
        assert_eq!(RunConfig::new(7).f, 2);
        assert_eq!(RunConfig::new(10).f, 3);
        assert_eq!(RunConfig::new(512).f, 170);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(RunConfig::new(4).with_f(4).validate().is_err());
        assert!(RunConfig::new(4)
            .with_target_decisions(0)
            .validate()
            .is_err());
        assert!(RunConfig::new(4)
            .with_lambda(SimDuration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn validation_rejects_unrepresentable_node_counts() {
        if usize::BITS > 32 {
            let cfg = RunConfig::new(u32::MAX as usize + 1);
            assert!(matches!(cfg.validate(), Err(SimError::InvalidConfig(_))));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = RunConfig::new(0);
    }

    #[test]
    fn builder_chains() {
        let cfg = RunConfig::new(7)
            .with_f(3)
            .with_seed(9)
            .with_lambda_ms(150.0)
            .with_target_decisions(10)
            .with_time_cap(SimDuration::from_secs(100.0))
            .with_message_recording(true);
        assert_eq!(cfg.f, 3);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.lambda.as_millis_f64(), 150.0);
        assert_eq!(cfg.target_decisions, 10);
        assert!(cfg.record_messages);
    }
}
