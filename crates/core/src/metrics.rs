//! Performance metrics: time usage and message usage (§II-C), decision
//! tracking and the safety checker.

use crate::ids::{NodeId, NodeSet};
use crate::obs::Observability;
use crate::scheduler::SchedulerStats;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;
use crate::value::Value;

/// Live decision/message bookkeeping inside the engine.
#[derive(Debug)]
pub(crate) struct MetricsCollector {
    /// Per-node decided `(time, value)` sequences, in slot order.
    decided: Vec<Vec<(SimTime, Value)>>,
    /// Completion time of slot `k` (all live honest nodes decided `k`).
    completions: Vec<SimTime>,
    honest_messages: u64,
    adversary_messages: u64,
    dropped_messages: u64,
    events_processed: u64,
    skipped_cancelled_timers: u64,
    skipped_excluded_nodes: u64,
    broadcasts: u64,
    /// Messages sent per node (signing work proxy).
    sent_per_node: Vec<u64>,
    /// Messages delivered per node (verification work proxy).
    delivered_per_node: Vec<u64>,
    safety_violation: Option<String>,
}

impl MetricsCollector {
    /// Creates a collector with no decision-count hint (tests only; the
    /// engine always knows its target and calls
    /// [`with_expected_decisions`](Self::with_expected_decisions)).
    #[cfg(test)]
    pub fn new(n: usize) -> Self {
        MetricsCollector::with_expected_decisions(n, 0)
    }

    /// Like `new`, but pre-sizes the per-node decision
    /// sequences and the completion log for `expected` slots, so runs with
    /// a known `target_decisions` never grow them mid-simulation. The
    /// expectation is a capacity hint only — runs may decide more or fewer
    /// slots.
    pub fn with_expected_decisions(n: usize, expected: u64) -> Self {
        // Decision targets are small (tens); cap the hint so a pathological
        // config cannot pre-reserve unbounded memory.
        let cap = expected.min(1024) as usize;
        MetricsCollector {
            decided: (0..n).map(|_| Vec::with_capacity(cap)).collect(),
            completions: Vec::with_capacity(cap),
            honest_messages: 0,
            adversary_messages: 0,
            dropped_messages: 0,
            events_processed: 0,
            skipped_cancelled_timers: 0,
            skipped_excluded_nodes: 0,
            broadcasts: 0,
            sent_per_node: vec![0; n],
            delivered_per_node: vec![0; n],
            safety_violation: None,
        }
    }

    pub fn count_honest_message(&mut self, src: NodeId) {
        self.honest_messages += 1;
        self.sent_per_node[src.index()] += 1;
    }

    pub fn count_delivery(&mut self, dst: NodeId) {
        self.delivered_per_node[dst.index()] += 1;
    }

    pub fn count_adversary_message(&mut self) {
        self.adversary_messages += 1;
    }

    pub fn count_dropped_message(&mut self) {
        self.dropped_messages += 1;
    }

    pub fn count_event(&mut self) {
        self.events_processed += 1;
    }

    /// Counts a pending timer that was cancelled (taken at cancel time, so
    /// the count is identical under every scheduler backend).
    pub fn count_cancelled_timer(&mut self) {
        self.skipped_cancelled_timers += 1;
    }

    /// Counts an event popped but not dispatched because its destination
    /// node is crashed or corrupted.
    pub fn count_skipped_excluded(&mut self) {
        self.skipped_excluded_nodes += 1;
    }

    pub fn count_broadcast(&mut self) {
        self.broadcasts += 1;
    }

    /// Records a decision; returns the slot index it filled.
    pub fn record_decision(&mut self, node: NodeId, time: SimTime, value: Value) -> u64 {
        let seq = &mut self.decided[node.index()];
        seq.push((time, value));
        (seq.len() - 1) as u64
    }

    /// Cross-checks `node`'s newest decision against every other honest
    /// node's decision for the same slot; records the first violation.
    pub fn check_safety(&mut self, node: NodeId, excluded: &NodeSet) {
        if self.safety_violation.is_some() {
            return;
        }
        let seq = &self.decided[node.index()];
        let slot = seq.len() - 1;
        let (_, value) = seq[slot];
        for (other_idx, other_seq) in self.decided.iter().enumerate() {
            let other = NodeId::new(other_idx as u32);
            if other == node || excluded.contains(other) {
                continue;
            }
            if let Some(&(_, other_value)) = other_seq.get(slot) {
                if other_value != value {
                    self.safety_violation = Some(format!(
                        "slot {slot}: {node} decided {value} but {other} decided {other_value}"
                    ));
                    return;
                }
            }
        }
    }

    /// Re-derives completion times given the current live-honest set; returns
    /// the number of fully completed slots. Called after every decision and
    /// after crash/corruption changes.
    pub fn update_completions(&mut self, now: SimTime, excluded: &NodeSet) -> u64 {
        loop {
            let k = self.completions.len();
            let mut all = true;
            let mut any_live = false;
            for (idx, seq) in self.decided.iter().enumerate() {
                if excluded.contains(NodeId::new(idx as u32)) {
                    continue;
                }
                any_live = true;
                if seq.len() <= k {
                    all = false;
                    break;
                }
            }
            if all && any_live {
                self.completions.push(now);
            } else {
                return self.completions.len() as u64;
            }
        }
    }

    pub fn into_result(
        self,
        end_time: SimTime,
        timed_out: bool,
        trace: Trace,
        queue_high_water: usize,
        scheduler: SchedulerStats,
        observability: Option<Observability>,
    ) -> RunResult {
        RunResult {
            end_time,
            timed_out,
            completions: self.completions,
            honest_messages: self.honest_messages,
            adversary_messages: self.adversary_messages,
            dropped_messages: self.dropped_messages,
            events_processed: self.events_processed,
            skipped_cancelled_timers: self.skipped_cancelled_timers,
            skipped_excluded_nodes: self.skipped_excluded_nodes,
            broadcasts: self.broadcasts,
            sent_per_node: self.sent_per_node,
            delivered_per_node: self.delivered_per_node,
            safety_violation: self.safety_violation,
            decided: self.decided,
            trace,
            queue_high_water,
            scheduler,
            observability,
        }
    }
}

/// The outcome of one simulation run.
///
/// # Message accounting
///
/// All message counters follow the paper's convention of counting **wire
/// messages only**: a message a node addresses to itself (`send_self`, the
/// self-copy of `broadcast_all`, or a literal send to its own id) is excluded
/// from *both* [`honest_messages`](RunResult::honest_messages) /
/// [`sent_per_node`](RunResult::sent_per_node) *and*
/// [`delivered_per_node`](RunResult::delivered_per_node), keeping the two
/// sides symmetric. Adversary-injected messages are always counted (in
/// [`adversary_messages`](RunResult::adversary_messages)), even when forged
/// to look self-addressed.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Simulation time at which the run stopped.
    pub end_time: SimTime,
    /// `true` if the run hit the configured time cap before reaching the
    /// target number of decisions — a liveness failure under the tested
    /// conditions.
    pub timed_out: bool,
    /// Completion time of each consensus slot: `completions[k]` is when every
    /// live honest node had decided slot `k`.
    pub completions: Vec<SimTime>,
    /// Messages transmitted by honest nodes (message usage, §II-C).
    pub honest_messages: u64,
    /// Messages injected by the adversary.
    pub adversary_messages: u64,
    /// Messages dropped by the adversary.
    pub dropped_messages: u64,
    /// Number of events actually dispatched to a node or the engine (simulator
    /// work, not a protocol metric). Suppressed events go to the per-cause
    /// counters [`skipped_cancelled_timers`](RunResult::skipped_cancelled_timers)
    /// and [`skipped_excluded_nodes`](RunResult::skipped_excluded_nodes)
    /// instead, so events/sec throughput figures reflect dispatched work only.
    pub events_processed: u64,
    /// Timers cancelled while still pending. Counted at cancel time — the
    /// scheduler then removes (wheel) or suppresses (heap) the entry, so the
    /// timer never dispatches and the count is identical under every backend.
    /// How the backend disposed of the entry shows up in
    /// [`scheduler`](RunResult::scheduler).
    pub skipped_cancelled_timers: u64,
    /// Events popped from the queue but *not* dispatched because they were
    /// addressed to a crashed/corrupted (excluded) node.
    pub skipped_excluded_nodes: u64,
    /// Number of `broadcast`/`broadcast_all` actions applied; with the shared
    /// payload fan-out this is also the number of payload allocations the
    /// broadcast hot path performs.
    pub broadcasts: u64,
    /// Messages sent per node — a proxy for per-node signing work, used by
    /// computation-cost estimation (the paper's §III-A3 suggestion).
    pub sent_per_node: Vec<u64>,
    /// Messages delivered per node — a proxy for verification work.
    pub delivered_per_node: Vec<u64>,
    /// `Some(description)` if honest nodes decided conflicting values.
    pub safety_violation: Option<String>,
    /// Per-node decided `(time, value)` sequences.
    pub decided: Vec<Vec<(SimTime, Value)>>,
    /// Recorded trace (decisions, views, corruptions; messages if enabled).
    pub trace: Trace,
    /// Maximum number of *live* events in the queue at once (memory proxy for
    /// Fig. 2). Live-entry accounting makes this identical under every
    /// scheduler backend; resident peaks including tombstones are in
    /// [`scheduler`](RunResult::scheduler).
    pub queue_high_water: usize,
    /// Diagnostics from the scheduler backend that ran the event queue. This
    /// is the only backend-dependent field of a run result: every other field
    /// is byte-identical under any [`SchedulerKind`](crate::scheduler::SchedulerKind).
    pub scheduler: SchedulerStats,
    /// Run-level observability snapshot (histograms, flow matrix, view
    /// timings, recent events); `None` unless the run was built with
    /// [`SimulationBuilder::observability`](crate::engine::SimulationBuilder::observability).
    /// Derives exclusively from simulated quantities, so — like every field
    /// except [`scheduler`](RunResult::scheduler) — it is byte-identical
    /// across scheduler backends and sweep thread counts.
    pub observability: Option<Observability>,
}

impl RunResult {
    /// Number of fully completed consensus slots.
    pub fn decisions_completed(&self) -> u64 {
        self.completions.len() as u64
    }

    /// Total suppressed events: cancelled timers plus deliveries/timers to
    /// excluded nodes.
    pub fn events_skipped(&self) -> u64 {
        self.skipped_cancelled_timers + self.skipped_excluded_nodes
    }

    /// Time usage until the first consensus completed (the paper's latency
    /// metric for non-pipelined protocols). `None` if no consensus completed.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completions.first().map(|&t| t - SimTime::ZERO)
    }

    /// Mean latency per decision over the first `k` decisions (the paper's
    /// metric for pipelined protocols, with `k = 10`). `None` if fewer than
    /// `k` decisions completed.
    pub fn avg_latency_per_decision(&self, k: usize) -> Option<SimDuration> {
        if k == 0 || self.completions.len() < k {
            return None;
        }
        let total = self.completions[k - 1] - SimTime::ZERO;
        // Rounding contract: the mean is computed in f64 and rounded to the
        // nearest microsecond (ties away from zero), so the returned duration
        // is within 0.5 µs of the exact mean.
        let mean = total.as_micros() as f64 / k as f64;
        Some(SimDuration::from_micros(mean.round() as u64))
    }

    /// Honest messages per completed decision. `None` if nothing completed.
    pub fn messages_per_decision(&self) -> Option<f64> {
        let k = self.decisions_completed();
        if k == 0 {
            None
        } else {
            Some(self.honest_messages as f64 / k as f64)
        }
    }

    /// Convenience: `true` when the run completed its target without safety
    /// violations or timeout.
    pub fn is_clean(&self) -> bool {
        !self.timed_out && self.safety_violation.is_none()
    }
}

/// Aggregate statistics over repeated runs (the paper reports mean and
/// standard deviation over 100 repetitions).
///
/// Std-dev convention: [`std_dev`](Summary::std_dev) is the **sample**
/// standard deviation (Bessel-corrected, n−1 divisor) — the conventional
/// estimator for "mean ± std over repetitions" reporting. A single sample
/// has a std-dev of 0.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples aggregated.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample (n−1) standard deviation; 0 when `count < 2`.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice of samples. Returns the default (all zeros) for an
    /// empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary::default();
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.std_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completions_require_all_live_honest_nodes() {
        let mut m = MetricsCollector::new(3);
        let excluded = NodeSet::new();
        m.record_decision(NodeId::new(0), SimTime::from_millis(10), Value::ONE);
        assert_eq!(m.update_completions(SimTime::from_millis(10), &excluded), 0);
        m.record_decision(NodeId::new(1), SimTime::from_millis(12), Value::ONE);
        assert_eq!(m.update_completions(SimTime::from_millis(12), &excluded), 0);
        m.record_decision(NodeId::new(2), SimTime::from_millis(15), Value::ONE);
        assert_eq!(m.update_completions(SimTime::from_millis(15), &excluded), 1);
    }

    #[test]
    fn excluded_nodes_do_not_block_completion() {
        let mut m = MetricsCollector::new(3);
        let excluded: NodeSet = [NodeId::new(2)].into_iter().collect();
        m.record_decision(NodeId::new(0), SimTime::from_millis(10), Value::ONE);
        m.record_decision(NodeId::new(1), SimTime::from_millis(11), Value::ONE);
        assert_eq!(m.update_completions(SimTime::from_millis(11), &excluded), 1);
    }

    #[test]
    fn safety_checker_flags_conflicts() {
        let mut m = MetricsCollector::new(2);
        let excluded = NodeSet::new();
        m.record_decision(NodeId::new(0), SimTime::from_millis(1), Value::ZERO);
        m.check_safety(NodeId::new(0), &excluded);
        assert!(m.safety_violation.is_none());
        m.record_decision(NodeId::new(1), SimTime::from_millis(2), Value::ONE);
        m.check_safety(NodeId::new(1), &excluded);
        assert!(m.safety_violation.is_some());
    }

    #[test]
    fn safety_checker_ignores_excluded_nodes() {
        let mut m = MetricsCollector::new(2);
        let excluded: NodeSet = [NodeId::new(0)].into_iter().collect();
        m.record_decision(NodeId::new(0), SimTime::from_millis(1), Value::ZERO);
        m.record_decision(NodeId::new(1), SimTime::from_millis(2), Value::ONE);
        m.check_safety(NodeId::new(1), &excluded);
        assert!(m.safety_violation.is_none());
    }

    #[test]
    fn latency_metrics() {
        let mut m = MetricsCollector::new(1);
        let excluded = NodeSet::new();
        for k in 0..10u64 {
            m.record_decision(
                NodeId::new(0),
                SimTime::from_millis((k + 1) * 100),
                Value::ONE,
            );
            m.update_completions(SimTime::from_millis((k + 1) * 100), &excluded);
        }
        let r = m.into_result(
            SimTime::from_millis(1000),
            false,
            Trace::new(),
            0,
            SchedulerStats::default(),
            None,
        );
        assert_eq!(r.decisions_completed(), 10);
        assert_eq!(r.latency().unwrap().as_millis_f64(), 100.0);
        assert_eq!(
            r.avg_latency_per_decision(10).unwrap().as_millis_f64(),
            100.0
        );
        assert!(r.avg_latency_per_decision(11).is_none());
        assert!(r.is_clean());
    }

    #[test]
    fn avg_latency_rounds_instead_of_truncating() {
        let mut m = MetricsCollector::new(1);
        let excluded = NodeSet::new();
        // Three completions; the last at 1000 µs. 1000 / 3 = 333.33…, which
        // integer division used to truncate to 333 µs; rounding keeps 333 but
        // a total of 1001 µs must give 334, not 333.
        for (slot, at) in [(0u64, 1u64), (1, 2), (2, 1001)] {
            let _ = slot;
            m.record_decision(
                NodeId::new(0),
                SimTime::ZERO + SimDuration::from_micros(at),
                Value::ONE,
            );
            m.update_completions(SimTime::ZERO + SimDuration::from_micros(at), &excluded);
        }
        let r = m.into_result(
            SimTime::ZERO + SimDuration::from_micros(1001),
            false,
            Trace::new(),
            0,
            SchedulerStats::default(),
            None,
        );
        assert_eq!(r.avg_latency_per_decision(3).unwrap().as_micros(), 334);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        // Sample (n−1) std-dev: sqrt(5/3) ≈ 1.2910.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn summary_of_single_sample_has_zero_std_dev() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }
}
