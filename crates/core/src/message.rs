//! Network messages exchanged between simulated nodes.

use core::any::Any;
use core::fmt;
use std::sync::Arc;

use crate::ids::NodeId;
use crate::payload::{Payload, PayloadCell};
use crate::time::SimTime;

/// A point-to-point message in flight between two nodes.
///
/// Every message carries its claimed *source*, its *destination*, the time it
/// was sent, and a type-erased protocol payload. All messages traverse the
/// network module (which assigns a delay) and then the attacker module (which
/// may observe, drop, delay, modify or replace them) before delivery — see
/// §III-A of the paper.
///
/// The payload is a [`PayloadCell`]: broadcast fan-out shares one `Arc`
/// allocation across all destinations (cloning bumps a refcount), while
/// small point-to-point payloads ride inline and never touch the heap.
/// Mutation via [`Message::downcast_mut`] is copy-on-write, so tampering
/// with one delivery never aliases into another destination's copy.
#[derive(Debug, Clone)]
pub struct Message {
    src: NodeId,
    dst: NodeId,
    sent_at: SimTime,
    injected: bool,
    payload: PayloadCell,
}

impl Message {
    /// Creates a new honest message. Library users normally go through
    /// [`Context::send`](crate::context::Context::send) instead.
    ///
    /// Accepts a [`PayloadCell`], a `Box<dyn Payload>` (e.g. from
    /// [`boxed`](crate::payload::boxed)) or an `Arc<dyn Payload>` (e.g. from
    /// [`shared`](crate::payload::shared)); boxes convert without copying.
    pub fn new(
        src: NodeId,
        dst: NodeId,
        sent_at: SimTime,
        payload: impl Into<PayloadCell>,
    ) -> Self {
        Message {
            src,
            dst,
            sent_at,
            injected: false,
            payload: payload.into(),
        }
    }

    /// Creates an adversary-injected message. The `src` field is the node the
    /// adversary *impersonates*; honest receivers cannot tell the difference
    /// (the paper's attacker "inserts new messages").
    pub fn injected(
        src: NodeId,
        dst: NodeId,
        sent_at: SimTime,
        payload: impl Into<PayloadCell>,
    ) -> Self {
        Message {
            src,
            dst,
            sent_at,
            injected: true,
            payload: payload.into(),
        }
    }

    /// The (claimed) sender.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Simulation time at which the message entered the network.
    pub fn sent_at(&self) -> SimTime {
        self.sent_at
    }

    /// Whether the adversary inserted this message (as opposed to an honest
    /// node sending it). Honest protocol logic must not read this — it exists
    /// for metrics and traces.
    pub fn is_injected(&self) -> bool {
        self.injected
    }

    /// Borrows the type-erased payload.
    pub fn payload(&self) -> &dyn Payload {
        self.payload.as_dyn()
    }

    /// The payload's wire size in bytes (see
    /// [`Payload::wire_size`](crate::payload::Payload::wire_size)); what the
    /// network model charges against link bandwidth.
    pub fn wire_size(&self) -> u64 {
        self.payload.wire_size() as u64
    }

    /// Borrows the shared payload handle, if the payload is `Arc`-backed
    /// (broadcasts always are; small point-to-point payloads are inline and
    /// return `None`). Mainly useful for asserting zero-copy fan-out
    /// (`Arc::ptr_eq`) in tests and tooling.
    pub fn payload_arc(&self) -> Option<&Arc<dyn Payload>> {
        self.payload.arc()
    }

    /// A shared handle to the payload: a refcount bump when it is already
    /// `Arc`-backed, a deep clone into a fresh allocation when inline.
    pub fn clone_payload_arc(&self) -> Arc<dyn Payload> {
        self.payload.clone_arc()
    }

    /// Attempts to view the payload as concrete type `T`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bft_sim_core::{ids::NodeId, message::Message, payload::boxed, time::SimTime};
    ///
    /// #[derive(Debug, Clone, PartialEq)]
    /// struct Vote(u64);
    ///
    /// let m = Message::new(NodeId::new(0), NodeId::new(1), SimTime::ZERO, boxed(Vote(3)));
    /// assert_eq!(m.downcast_ref::<Vote>(), Some(&Vote(3)));
    /// ```
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.payload.as_dyn().as_any().downcast_ref::<T>()
    }

    /// Attempts to view the payload mutably as concrete type `T`. Used by
    /// attackers that tamper with messages in flight.
    ///
    /// Copy-on-write: if the payload is still shared with other deliveries
    /// of the same broadcast, it is deep-cloned first, so the mutation is
    /// confined to this message (inline payloads are uniquely owned and
    /// mutate in place). The type check happens *before* the clone, so a
    /// failed downcast costs nothing.
    pub fn downcast_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.payload.as_dyn().as_any().downcast_ref::<T>()?;
        self.payload.as_dyn_mut().as_any_mut().downcast_mut::<T>()
    }

    /// Replaces the payload wholesale (attacker capability).
    pub fn replace_payload(&mut self, payload: impl Into<PayloadCell>) {
        self.payload = payload.into();
    }

    /// Rewrites the claimed source (attacker capability: forgery in systems
    /// without authenticated channels).
    pub fn forge_src(&mut self, src: NodeId) {
        self.src = src;
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} @ {} [{}]",
            self.src,
            self.dst,
            self.sent_at,
            self.payload.as_dyn().payload_type()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::{boxed, shared};

    #[derive(Debug, Clone, PartialEq)]
    struct P(u8);

    #[test]
    fn accessors() {
        let m = Message::new(
            NodeId::new(1),
            NodeId::new(2),
            SimTime::from_millis(5),
            boxed(P(9)),
        );
        assert_eq!(m.src(), NodeId::new(1));
        assert_eq!(m.dst(), NodeId::new(2));
        assert_eq!(m.sent_at(), SimTime::from_millis(5));
        assert!(!m.is_injected());
        assert_eq!(m.downcast_ref::<P>(), Some(&P(9)));
        assert_eq!(m.wire_size(), core::mem::size_of::<P>() as u64);
    }

    #[test]
    fn tampering() {
        let mut m = Message::new(NodeId::new(0), NodeId::new(1), SimTime::ZERO, boxed(P(1)));
        m.downcast_mut::<P>().unwrap().0 = 7;
        assert_eq!(m.downcast_ref::<P>(), Some(&P(7)));
        m.replace_payload(boxed(P(42)));
        assert_eq!(m.downcast_ref::<P>(), Some(&P(42)));
        m.forge_src(NodeId::new(3));
        assert_eq!(m.src(), NodeId::new(3));
    }

    #[test]
    fn injected_flag() {
        let m = Message::injected(NodeId::new(0), NodeId::new(1), SimTime::ZERO, boxed(P(0)));
        assert!(m.is_injected());
    }

    #[test]
    fn clone_shares_payload_allocation() {
        let m = Message::new(NodeId::new(0), NodeId::new(1), SimTime::ZERO, shared(P(5)));
        let c = m.clone();
        assert!(Arc::ptr_eq(
            m.payload_arc().unwrap(),
            c.payload_arc().unwrap()
        ));
    }

    #[test]
    fn downcast_mut_is_copy_on_write() {
        let m = Message::new(NodeId::new(0), NodeId::new(1), SimTime::ZERO, shared(P(5)));
        let mut tampered = m.clone();
        tampered.downcast_mut::<P>().unwrap().0 = 99;
        // The original delivery is unaffected and no longer aliased.
        assert_eq!(m.downcast_ref::<P>(), Some(&P(5)));
        assert_eq!(tampered.downcast_ref::<P>(), Some(&P(99)));
        assert!(!Arc::ptr_eq(
            m.payload_arc().unwrap(),
            tampered.payload_arc().unwrap()
        ));
    }

    #[test]
    fn failed_downcast_mut_does_not_unshare() {
        let m = Message::new(NodeId::new(0), NodeId::new(1), SimTime::ZERO, shared(P(5)));
        let mut c = m.clone();
        assert!(c.downcast_mut::<String>().is_none());
        assert!(Arc::ptr_eq(
            m.payload_arc().unwrap(),
            c.payload_arc().unwrap()
        ));
    }

    #[test]
    fn unique_downcast_mut_mutates_in_place() {
        let mut m = Message::new(NodeId::new(0), NodeId::new(1), SimTime::ZERO, shared(P(1)));
        let before = Arc::as_ptr(m.payload_arc().unwrap());
        m.downcast_mut::<P>().unwrap().0 = 2;
        assert_eq!(Arc::as_ptr(m.payload_arc().unwrap()), before);
        assert_eq!(m.downcast_ref::<P>(), Some(&P(2)));
    }

    #[test]
    fn inline_payloads_have_no_arc_and_mutate_in_place() {
        use crate::payload::PayloadCell;
        let mut m = Message::new(
            NodeId::new(0),
            NodeId::new(1),
            SimTime::ZERO,
            PayloadCell::of(P(5)),
        );
        assert!(
            m.payload_arc().is_none(),
            "inline payload is not Arc-backed"
        );
        m.downcast_mut::<P>().unwrap().0 = 6;
        assert_eq!(m.downcast_ref::<P>(), Some(&P(6)));
        // Promotion yields a real shared handle carrying the same value.
        let arc = m.clone_payload_arc();
        assert_eq!(arc.as_ref().as_any().downcast_ref::<P>(), Some(&P(6)));
    }
}
