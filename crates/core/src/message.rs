//! Network messages exchanged between simulated nodes.

use core::any::Any;
use core::fmt;

use crate::ids::NodeId;
use crate::payload::Payload;
use crate::time::SimTime;

/// A point-to-point message in flight between two nodes.
///
/// Every message carries its claimed *source*, its *destination*, the time it
/// was sent, and a type-erased protocol payload. All messages traverse the
/// network module (which assigns a delay) and then the attacker module (which
/// may observe, drop, delay, modify or replace them) before delivery — see
/// §III-A of the paper.
#[derive(Debug)]
pub struct Message {
    src: NodeId,
    dst: NodeId,
    sent_at: SimTime,
    injected: bool,
    payload: Box<dyn Payload>,
}

impl Message {
    /// Creates a new honest message. Library users normally go through
    /// [`Context::send`](crate::context::Context::send) instead.
    pub fn new(src: NodeId, dst: NodeId, sent_at: SimTime, payload: Box<dyn Payload>) -> Self {
        Message {
            src,
            dst,
            sent_at,
            injected: false,
            payload,
        }
    }

    /// Creates an adversary-injected message. The `src` field is the node the
    /// adversary *impersonates*; honest receivers cannot tell the difference
    /// (the paper's attacker "inserts new messages").
    pub fn injected(src: NodeId, dst: NodeId, sent_at: SimTime, payload: Box<dyn Payload>) -> Self {
        Message {
            src,
            dst,
            sent_at,
            injected: true,
            payload,
        }
    }

    /// The (claimed) sender.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// The destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Simulation time at which the message entered the network.
    pub fn sent_at(&self) -> SimTime {
        self.sent_at
    }

    /// Whether the adversary inserted this message (as opposed to an honest
    /// node sending it). Honest protocol logic must not read this — it exists
    /// for metrics and traces.
    pub fn is_injected(&self) -> bool {
        self.injected
    }

    /// Borrows the type-erased payload.
    pub fn payload(&self) -> &dyn Payload {
        self.payload.as_ref()
    }

    /// Attempts to view the payload as concrete type `T`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bft_sim_core::{ids::NodeId, message::Message, payload::boxed, time::SimTime};
    ///
    /// #[derive(Debug, Clone, PartialEq)]
    /// struct Vote(u64);
    ///
    /// let m = Message::new(NodeId::new(0), NodeId::new(1), SimTime::ZERO, boxed(Vote(3)));
    /// assert_eq!(m.downcast_ref::<Vote>(), Some(&Vote(3)));
    /// ```
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.payload.as_any().downcast_ref::<T>()
    }

    /// Attempts to view the payload mutably as concrete type `T`. Used by
    /// attackers that tamper with messages in flight.
    pub fn downcast_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.payload.as_any_mut().downcast_mut::<T>()
    }

    /// Replaces the payload wholesale (attacker capability).
    pub fn replace_payload(&mut self, payload: Box<dyn Payload>) {
        self.payload = payload;
    }

    /// Rewrites the claimed source (attacker capability: forgery in systems
    /// without authenticated channels).
    pub fn forge_src(&mut self, src: NodeId) {
        self.src = src;
    }
}

impl Clone for Message {
    fn clone(&self) -> Self {
        Message {
            src: self.src,
            dst: self.dst,
            sent_at: self.sent_at,
            injected: self.injected,
            payload: self.payload.clone_box(),
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} @ {} [{}]",
            self.src,
            self.dst,
            self.sent_at,
            self.payload.payload_type()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::boxed;

    #[derive(Debug, Clone, PartialEq)]
    struct P(u8);

    #[test]
    fn accessors() {
        let m = Message::new(NodeId::new(1), NodeId::new(2), SimTime::from_millis(5), boxed(P(9)));
        assert_eq!(m.src(), NodeId::new(1));
        assert_eq!(m.dst(), NodeId::new(2));
        assert_eq!(m.sent_at(), SimTime::from_millis(5));
        assert!(!m.is_injected());
        assert_eq!(m.downcast_ref::<P>(), Some(&P(9)));
    }

    #[test]
    fn tampering() {
        let mut m = Message::new(NodeId::new(0), NodeId::new(1), SimTime::ZERO, boxed(P(1)));
        m.downcast_mut::<P>().unwrap().0 = 7;
        assert_eq!(m.downcast_ref::<P>(), Some(&P(7)));
        m.replace_payload(boxed(P(42)));
        assert_eq!(m.downcast_ref::<P>(), Some(&P(42)));
        m.forge_src(NodeId::new(3));
        assert_eq!(m.src(), NodeId::new(3));
    }

    #[test]
    fn injected_flag() {
        let m = Message::injected(NodeId::new(0), NodeId::new(1), SimTime::ZERO, boxed(P(0)));
        assert!(m.is_injected());
    }
}
