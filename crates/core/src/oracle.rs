//! First-class correctness oracles.
//!
//! The validator module (§III-A6) replays a *known* ground truth; oracles
//! judge *arbitrary* runs — including adversarial ones a fuzzer discovers —
//! against protocol-independent correctness properties:
//!
//! * **agreement** — no two correct nodes decide different values for the
//!   same consensus slot;
//! * **validity** — decided values lie in the protocol's declared domain
//!   (binary for binary BA, non-zero proposal digests for SMR protocols);
//! * **no-revocation** — per-node decision logs are append-only: slots are
//!   decided exactly once, in order, and never change after the fact;
//! * **termination** — runs expected to terminate (benign conditions, or a
//!   protocol whose model tolerates the scenario) did so by the deadline;
//! * **metrics sanity** — the engine's own accounting is consistent
//!   (deliveries never exceed transmissions, the clock never runs backward).
//!
//! Oracles read an [`OracleInput`], built either from a finished
//! [`RunResult`] (optionally enriched with per-step observations from an
//! [`OracleObserver`] installed via
//! [`SimulationBuilder::observer`](crate::engine::SimulationBuilder::observer))
//! or from a bare [`Trace`] such as the committed golden traces.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use crate::engine::StepObserver;
use crate::ids::NodeId;
use crate::metrics::RunResult;
use crate::time::SimTime;
use crate::trace::{Trace, TraceKind};
use crate::value::Value;

/// One oracle's verdict on one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// The oracle that fired (its [`Oracle::name`]).
    pub oracle: &'static str,
    /// Human-readable description naming the offending nodes/slots/values.
    pub detail: String,
}

impl core::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// The set of values a protocol may legitimately decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDomain {
    /// Anything goes (used when no stronger statement is available).
    Any,
    /// Binary agreement: decisions must be 0 or 1.
    Binary,
    /// Digest-valued proposals: a decision of literal zero means an
    /// uninitialised or forged value slipped through.
    NonZero,
}

impl ValueDomain {
    /// Whether `value` is a member of the domain.
    pub fn contains(self, value: Value) -> bool {
        match self {
            ValueDomain::Any => true,
            ValueDomain::Binary => value.as_u64() <= 1,
            ValueDomain::NonZero => value.as_u64() != 0,
        }
    }
}

/// One scheduled node-offline interval, as the oracles see it: `node` is
/// offline (its links drop traffic) during `[start, end)`.
///
/// This mirrors the network layer's churn `DownWindow` but lives in core so
/// [`Expectations`] can carry a churn schedule without core depending on the
/// network crate. The harness that builds the churned network converts its
/// plan into these windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The node that goes offline.
    pub node: u32,
    /// When it goes down (inclusive).
    pub start: SimTime,
    /// When it comes back (exclusive).
    pub end: SimTime,
}

/// What a particular scenario entitles the oracles to assume.
///
/// Protocol-specific facts come from `ProtocolKind::expectations` in
/// `bft-sim-protocols`; scenario-specific facts (was the run benign enough
/// that termination is owed? which nodes have scheduled downtime?) are set by
/// the harness driving the run.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectations {
    /// The run's decision target (`RunConfig::target_decisions`).
    pub target_decisions: u64,
    /// The protocol's decision-value domain.
    pub value_domain: ValueDomain,
    /// Whether the scenario obliges the protocol to terminate: true for
    /// benign runs within the protocol's network model, false when the
    /// adversary or the network is allowed to stall it.
    pub must_terminate: bool,
    /// Scheduled node-offline windows (churn). When non-empty, the
    /// termination oracle suspends decision debt for nodes with scheduled
    /// downtime: their deadline extends across their down-windows, so a
    /// shortfall attributable only to churned nodes is not a violation.
    /// Empty for churn-free scenarios, where termination keeps its strict
    /// every-node-owes-the-target reading.
    pub outages: Vec<OutageWindow>,
}

impl Expectations {
    /// Permissive defaults: any value, one decision, termination not owed.
    pub fn lenient() -> Self {
        Expectations {
            target_decisions: 1,
            value_domain: ValueDomain::Any,
            must_terminate: false,
            outages: Vec::new(),
        }
    }
}

/// Per-step facts gathered while a run executes, via [`OracleObserver`].
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// Events the observer saw (must equal `RunResult::events_processed`).
    pub events: u64,
    /// Times the clock moved backwards between events (must be zero).
    pub clock_regressions: u64,
    /// The clock value at the last observed event.
    pub last_clock: SimTime,
    /// Every decision in the order the engine applied it.
    pub decisions: Vec<(SimTime, NodeId, u64, Value)>,
}

impl Default for ObservedRun {
    fn default() -> Self {
        ObservedRun {
            events: 0,
            clock_regressions: 0,
            last_clock: SimTime::ZERO,
            decisions: Vec::new(),
        }
    }
}

/// A [`StepObserver`] that records the facts the oracles need.
///
/// Cloning shares the underlying log, so keep one handle and give the other
/// to [`SimulationBuilder::observer`](crate::engine::SimulationBuilder::observer):
///
/// ```
/// use bft_sim_core::oracle::OracleObserver;
/// let probe = OracleObserver::new();
/// let handle = probe.clone(); // goes to SimulationBuilder::observer(probe)
/// assert_eq!(handle.snapshot().events, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OracleObserver {
    shared: Arc<Mutex<ObservedRun>>,
}

impl OracleObserver {
    /// Creates an observer with an empty log.
    pub fn new() -> Self {
        OracleObserver::default()
    }

    /// A copy of everything observed so far.
    pub fn snapshot(&self) -> ObservedRun {
        self.shared.lock().expect("observer lock").clone()
    }
}

impl StepObserver for OracleObserver {
    fn on_event(&mut self, now: SimTime) {
        let mut log = self.shared.lock().expect("observer lock");
        log.events += 1;
        if now < log.last_clock {
            log.clock_regressions += 1;
        }
        log.last_clock = now;
    }

    fn on_decision(&mut self, now: SimTime, node: NodeId, slot: u64, value: Value) {
        let mut log = self.shared.lock().expect("observer lock");
        log.decisions.push((now, node, slot, value));
    }
}

/// Everything an oracle may look at, assembled once per checked run.
#[derive(Debug)]
pub struct OracleInput<'a> {
    /// The finished run, when the check targets a live simulation. `None`
    /// for trace-only checks (e.g. committed golden traces).
    pub result: Option<&'a RunResult>,
    /// All decisions, in recording order, as `(time, node, slot, value)`.
    pub decisions: Vec<(SimTime, NodeId, u64, Value)>,
    /// Nodes the adversary corrupted or crashed (exempt from correctness).
    pub excluded: HashSet<NodeId>,
    /// Per-step observations, when an [`OracleObserver`] was installed.
    pub observed: Option<ObservedRun>,
    /// What this scenario entitles the oracles to assume.
    pub expect: Expectations,
}

impl<'a> OracleInput<'a> {
    /// Builds the input from a finished run (and optional observations).
    pub fn from_result(
        result: &'a RunResult,
        observed: Option<ObservedRun>,
        expect: Expectations,
    ) -> Self {
        let mut input = Self::from_trace_inner(&result.trace, expect);
        input.result = Some(result);
        input.observed = observed;
        input
    }

    /// Builds a trace-only input (golden traces, externally produced logs).
    pub fn from_trace(trace: &Trace, expect: Expectations) -> OracleInput<'a> {
        Self::from_trace_inner(trace, expect)
    }

    fn from_trace_inner(trace: &Trace, expect: Expectations) -> OracleInput<'a> {
        let decisions = trace.decisions().collect();
        let excluded = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Corrupted | TraceKind::Crashed))
            .map(|e| e.node)
            .collect();
        OracleInput {
            result: None,
            decisions,
            excluded,
            observed: None,
            expect,
        }
    }

    /// Decisions by nodes that stayed correct for the whole run.
    fn correct_decisions(&self) -> impl Iterator<Item = &(SimTime, NodeId, u64, Value)> {
        self.decisions
            .iter()
            .filter(|(_, node, _, _)| !self.excluded.contains(node))
    }
}

/// A correctness property checked after (or across) a run.
pub trait Oracle: Send + Sync {
    /// Short name, used in reports and repro files.
    fn name(&self) -> &'static str;

    /// Checks the property.
    ///
    /// # Errors
    ///
    /// Returns the first [`OracleViolation`] found.
    fn check(&self, input: &OracleInput<'_>) -> Result<(), OracleViolation>;
}

/// Agreement: no two correct nodes decide different values for one slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgreementOracle;

impl Oracle for AgreementOracle {
    fn name(&self) -> &'static str {
        "agreement"
    }

    fn check(&self, input: &OracleInput<'_>) -> Result<(), OracleViolation> {
        let mut first: HashMap<u64, (NodeId, Value)> = HashMap::new();
        for &(_, node, slot, value) in input.correct_decisions() {
            match first.get(&slot) {
                None => {
                    first.insert(slot, (node, value));
                }
                Some(&(other, other_value)) if other_value != value => {
                    return Err(OracleViolation {
                        oracle: self.name(),
                        detail: format!(
                            "slot {slot}: {node} decided {value} but {other} decided {other_value}"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        Ok(())
    }
}

/// Validity: decided values lie in the protocol's declared domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidityOracle;

impl Oracle for ValidityOracle {
    fn name(&self) -> &'static str {
        "validity"
    }

    fn check(&self, input: &OracleInput<'_>) -> Result<(), OracleViolation> {
        let domain = input.expect.value_domain;
        for &(_, node, slot, value) in input.correct_decisions() {
            if !domain.contains(value) {
                return Err(OracleViolation {
                    oracle: self.name(),
                    detail: format!(
                        "{node} slot {slot}: decided {value}, outside the {domain:?} domain"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// No revocation: per-node decision logs are append-only — slots appear
/// exactly once, in order, and the final [`RunResult`] still contains every
/// decision that was observed being made.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRevocationOracle;

impl Oracle for NoRevocationOracle {
    fn name(&self) -> &'static str {
        "no-revocation"
    }

    fn check(&self, input: &OracleInput<'_>) -> Result<(), OracleViolation> {
        // Slot sequences must be 0, 1, 2, … per node — no gap, dup or reorder.
        let mut next_slot: HashMap<NodeId, u64> = HashMap::new();
        for &(_, node, slot, _) in &input.decisions {
            let expected = next_slot.entry(node).or_insert(0);
            if slot != *expected {
                return Err(OracleViolation {
                    oracle: self.name(),
                    detail: format!(
                        "{node}: decided slot {slot} out of order (expected slot {expected})"
                    ),
                });
            }
            *expected += 1;
        }
        // Every decision made during the run must survive into the result
        // unchanged (the engine must never rewrite history).
        if let Some(result) = input.result {
            for &(_, node, slot, value) in &input.decisions {
                let kept = result
                    .decided
                    .get(node.index())
                    .and_then(|seq| seq.get(slot as usize))
                    .map(|&(_, v)| v);
                if kept != Some(value) {
                    return Err(OracleViolation {
                        oracle: self.name(),
                        detail: format!(
                            "{node} slot {slot}: decided {value} during the run but the \
                             final result records {kept:?}"
                        ),
                    });
                }
            }
            // And the engine-reported observations must agree with the trace.
            if let Some(obs) = &input.observed {
                if obs.decisions != input.decisions {
                    return Err(OracleViolation {
                        oracle: self.name(),
                        detail: format!(
                            "observer saw {} decisions but the trace records {}",
                            obs.decisions.len(),
                            input.decisions.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Termination: when the scenario obliges the protocol to finish, it did.
///
/// When [`Expectations::outages`] is non-empty, decision debt is suspended
/// for nodes with scheduled downtime: a node's decision deadline extends
/// across its down-windows, and since the run ends at its time cap — before
/// any extended deadline — residual debt on a churned node is never charged.
/// Global completion counters stall as soon as *one* live honest node misses
/// a slot while offline (completion requires every live honest node), so
/// without this suspension every churn scenario that clipped a decision
/// round would report a false liveness violation. Nodes with no scheduled
/// downtime keep the full obligation: a shortfall on them is a real
/// violation even in a churn scenario.
#[derive(Debug, Clone, Copy, Default)]
pub struct TerminationOracle;

impl Oracle for TerminationOracle {
    fn name(&self) -> &'static str {
        "termination"
    }

    fn check(&self, input: &OracleInput<'_>) -> Result<(), OracleViolation> {
        if !input.expect.must_terminate {
            return Ok(());
        }
        let target = input.expect.target_decisions;
        let churned: HashSet<u32> = input.expect.outages.iter().map(|w| w.node).collect();
        if let Some(result) = input.result {
            let stalled = result.timed_out || result.decisions_completed() < target;
            if !stalled {
                return Ok(());
            }
            if churned.is_empty() {
                if result.timed_out {
                    return Err(OracleViolation {
                        oracle: self.name(),
                        detail: format!(
                            "benign run timed out at {} with {}/{target} decisions completed",
                            result.end_time,
                            result.decisions_completed()
                        ),
                    });
                }
                return Err(OracleViolation {
                    oracle: self.name(),
                    detail: format!(
                        "run stopped with only {}/{target} decisions completed",
                        result.decisions_completed()
                    ),
                });
            }
            // Churn-aware: the stall is excused iff every correct node that
            // fell short of the target has scheduled downtime to blame.
            for (index, seq) in result.decided.iter().enumerate() {
                let node = NodeId::new(index as u32);
                let count = seq.len() as u64;
                if count >= target
                    || input.excluded.contains(&node)
                    || churned.contains(&node.as_u32())
                {
                    continue;
                }
                return Err(OracleViolation {
                    oracle: self.name(),
                    detail: format!(
                        "{node} decided only {count}/{target} slots with no scheduled \
                         downtime to excuse it"
                    ),
                });
            }
            return Ok(());
        }
        // Trace-only: every correct node must have decided `target` slots,
        // except nodes whose shortfall is covered by scheduled downtime.
        let mut per_node: HashMap<NodeId, u64> = HashMap::new();
        for &(_, node, _, _) in input.correct_decisions() {
            *per_node.entry(node).or_insert(0) += 1;
        }
        if per_node.is_empty() {
            return Err(OracleViolation {
                oracle: self.name(),
                detail: "no correct node decided anything".into(),
            });
        }
        let mut short: Vec<(NodeId, u64)> = per_node
            .into_iter()
            .filter(|(node, count)| *count < target && !churned.contains(&node.as_u32()))
            .collect();
        short.sort_by_key(|&(node, _)| node.as_u32());
        if let Some(&(node, count)) = short.first() {
            return Err(OracleViolation {
                oracle: self.name(),
                detail: format!("{node} decided only {count}/{target} slots"),
            });
        }
        Ok(())
    }
}

/// Metrics sanity: the engine's own accounting must be internally
/// consistent — deliveries never exceed transmissions, drops never exceed
/// honest sends, decision times never exceed the end time, and (when
/// observed) the clock is monotone and the event counts agree.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricsSanityOracle;

impl Oracle for MetricsSanityOracle {
    fn name(&self) -> &'static str {
        "metrics-sanity"
    }

    fn check(&self, input: &OracleInput<'_>) -> Result<(), OracleViolation> {
        let fail = |detail: String| OracleViolation {
            oracle: "metrics-sanity",
            detail,
        };
        // Trace times must be non-decreasing even without a RunResult.
        for (i, &(time, node, slot, _)) in input.decisions.iter().enumerate() {
            if let Some(&(prev, ..)) = i.checked_sub(1).and_then(|p| input.decisions.get(p)) {
                if time < prev {
                    return Err(fail(format!(
                        "decision clock ran backwards at {node} slot {slot}: {time} < {prev}"
                    )));
                }
            }
        }
        let Some(result) = input.result else {
            return Ok(());
        };
        let delivered: u64 = result.delivered_per_node.iter().sum();
        let sent = result.honest_messages + result.adversary_messages;
        if delivered > sent {
            return Err(fail(format!(
                "delivered {delivered} messages but only {sent} were sent"
            )));
        }
        if result.dropped_messages > result.honest_messages {
            return Err(fail(format!(
                "dropped {} messages out of {} honest transmissions",
                result.dropped_messages, result.honest_messages
            )));
        }
        for &(time, node, slot, _) in &input.decisions {
            if time > result.end_time {
                return Err(fail(format!(
                    "{node} slot {slot} decided at {time}, after the run ended at {}",
                    result.end_time
                )));
            }
        }
        if let Some(obs) = &input.observed {
            if obs.clock_regressions > 0 {
                return Err(fail(format!(
                    "clock ran backwards {} time(s) during the run",
                    obs.clock_regressions
                )));
            }
            if obs.events != result.events_processed {
                return Err(fail(format!(
                    "observer saw {} events but the engine reports {}",
                    obs.events, result.events_processed
                )));
            }
        }
        Ok(())
    }
}

/// The standard oracle battery, checked in severity order.
pub struct OracleSuite {
    oracles: Vec<Box<dyn Oracle>>,
}

impl core::fmt::Debug for OracleSuite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("OracleSuite")
            .field("oracles", &self.names())
            .finish()
    }
}

impl Default for OracleSuite {
    fn default() -> Self {
        Self::standard()
    }
}

impl OracleSuite {
    /// All five standard oracles: agreement, validity, no-revocation,
    /// termination, metrics sanity.
    pub fn standard() -> Self {
        OracleSuite {
            oracles: vec![
                Box::new(AgreementOracle),
                Box::new(ValidityOracle),
                Box::new(NoRevocationOracle),
                Box::new(TerminationOracle),
                Box::new(MetricsSanityOracle),
            ],
        }
    }

    /// The oracles' names, in check order.
    pub fn names(&self) -> Vec<&'static str> {
        self.oracles.iter().map(|o| o.name()).collect()
    }

    /// Runs every oracle; returns all violations (empty = clean run).
    pub fn check(&self, input: &OracleInput<'_>) -> Vec<OracleViolation> {
        self.oracles
            .iter()
            .filter_map(|o| o.check(input).err())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(ms: u64, node: u32, slot: u64, value: u64) -> (SimTime, NodeId, u64, Value) {
        (
            SimTime::from_millis(ms),
            NodeId::new(node),
            slot,
            Value::new(value),
        )
    }

    fn input(decisions: Vec<(SimTime, NodeId, u64, Value)>) -> OracleInput<'static> {
        OracleInput {
            result: None,
            decisions,
            excluded: HashSet::new(),
            observed: None,
            expect: Expectations::lenient(),
        }
    }

    #[test]
    fn agreement_flags_conflicting_slots() {
        let ok = input(vec![decision(1, 0, 0, 7), decision(2, 1, 0, 7)]);
        assert!(AgreementOracle.check(&ok).is_ok());

        let bad = input(vec![decision(1, 0, 0, 7), decision(2, 1, 0, 8)]);
        let v = AgreementOracle.check(&bad).unwrap_err();
        assert_eq!(v.oracle, "agreement");
        assert!(v.detail.contains("slot 0"), "{}", v.detail);
        assert!(v.detail.contains("n1"), "{}", v.detail);
    }

    #[test]
    fn agreement_exempts_excluded_nodes() {
        let mut bad = input(vec![decision(1, 0, 0, 7), decision(2, 1, 0, 8)]);
        bad.excluded.insert(NodeId::new(1));
        assert!(AgreementOracle.check(&bad).is_ok());
    }

    #[test]
    fn validity_enforces_domains() {
        let mut i = input(vec![decision(1, 0, 0, 2)]);
        assert!(ValidityOracle.check(&i).is_ok());
        i.expect.value_domain = ValueDomain::Binary;
        assert!(ValidityOracle.check(&i).is_err());
        i.decisions = vec![decision(1, 0, 0, 0)];
        i.expect.value_domain = ValueDomain::NonZero;
        let v = ValidityOracle.check(&i).unwrap_err();
        assert!(v.detail.contains("NonZero"), "{}", v.detail);
    }

    #[test]
    fn no_revocation_requires_ordered_unique_slots() {
        let ok = input(vec![
            decision(1, 0, 0, 7),
            decision(2, 0, 1, 8),
            decision(2, 1, 0, 7),
        ]);
        assert!(NoRevocationOracle.check(&ok).is_ok());

        let dup = input(vec![decision(1, 0, 0, 7), decision(2, 0, 0, 7)]);
        assert!(NoRevocationOracle.check(&dup).is_err());

        let gap = input(vec![decision(1, 0, 0, 7), decision(2, 0, 2, 8)]);
        let v = NoRevocationOracle.check(&gap).unwrap_err();
        assert!(v.detail.contains("slot 2"), "{}", v.detail);
        assert!(v.detail.contains("expected slot 1"), "{}", v.detail);
    }

    #[test]
    fn termination_only_fires_when_owed() {
        let empty = input(Vec::new());
        assert!(TerminationOracle.check(&empty).is_ok(), "not owed: ok");

        let mut owed = input(Vec::new());
        owed.expect.must_terminate = true;
        let v = TerminationOracle.check(&owed).unwrap_err();
        assert_eq!(v.oracle, "termination");

        let mut partial = input(vec![decision(1, 0, 0, 7)]);
        partial.expect.must_terminate = true;
        partial.expect.target_decisions = 2;
        let v = TerminationOracle.check(&partial).unwrap_err();
        assert!(v.detail.contains("1/2"), "{}", v.detail);
    }

    /// A minimal timed-out [`RunResult`] whose per-node decision counts are
    /// given; only the fields the termination oracle reads are meaningful.
    fn timed_out_result(per_node_decisions: &[u64], completed: u64, end_ms: u64) -> RunResult {
        let decided: Vec<Vec<(SimTime, Value)>> = per_node_decisions
            .iter()
            .map(|&k| (0..k).map(|_| (SimTime::ZERO, Value::new(7))).collect())
            .collect();
        let n = decided.len();
        RunResult {
            end_time: SimTime::from_millis(end_ms),
            timed_out: true,
            completions: (0..completed)
                .map(|i| SimTime::from_millis(i + 1))
                .collect(),
            honest_messages: 0,
            adversary_messages: 0,
            dropped_messages: 0,
            events_processed: 0,
            skipped_cancelled_timers: 0,
            skipped_excluded_nodes: 0,
            broadcasts: 0,
            sent_per_node: vec![0; n],
            delivered_per_node: vec![0; n],
            safety_violation: None,
            decided,
            trace: crate::trace::Trace::new(),
            queue_high_water: 0,
            scheduler: crate::scheduler::SchedulerStats::default(),
            observability: None,
        }
    }

    fn window(node: u32, start_ms: u64, end_ms: u64) -> OutageWindow {
        OutageWindow {
            node,
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
        }
    }

    #[test]
    fn termination_suspends_debt_across_down_windows() {
        // Node 2 misses its second decision because a scheduled down-window
        // straddles the moment the decision was due (slot 1 completed around
        // t=2ms on the other nodes; node 2 is offline over [1ms, 5s)).
        // Global completions stall at 1/2 and the run times out.
        let result = timed_out_result(&[2, 2, 1], 1, 900_000);
        let mut owed = OracleInput::from_result(&result, None, Expectations::lenient());
        owed.expect.must_terminate = true;
        owed.expect.target_decisions = 2;

        // Churn-blind reading: a false liveness violation.
        let v = TerminationOracle.check(&owed).unwrap_err();
        assert!(v.detail.contains("timed out"), "{}", v.detail);

        // The straddling window excuses exactly that node's debt.
        owed.expect.outages = vec![window(2, 1, 5_000)];
        assert!(
            TerminationOracle.check(&owed).is_ok(),
            "churned node's shortfall must be excused"
        );

        // A window on some *other* node excuses nothing: node 2 still owes
        // its decisions and the violation names it.
        owed.expect.outages = vec![window(1, 1, 5_000)];
        let v = TerminationOracle.check(&owed).unwrap_err();
        assert!(v.detail.contains("n2"), "{}", v.detail);
        assert!(v.detail.contains("1/2"), "{}", v.detail);
        assert!(v.detail.contains("no scheduled downtime"), "{}", v.detail);

        // Excluded (crashed/corrupted) nodes stay exempt as before.
        owed.excluded.insert(NodeId::new(2));
        assert!(TerminationOracle.check(&owed).is_ok());
    }

    #[test]
    fn termination_trace_only_respects_down_windows() {
        let mut short = input(vec![
            decision(1, 0, 0, 7),
            decision(2, 0, 1, 7),
            decision(1, 1, 0, 7),
        ]);
        short.expect.must_terminate = true;
        short.expect.target_decisions = 2;
        let v = TerminationOracle.check(&short).unwrap_err();
        assert!(v.detail.contains("n1"), "{}", v.detail);

        short.expect.outages = vec![window(1, 1, 10)];
        assert!(TerminationOracle.check(&short).is_ok());

        // Outages never excuse a trace where nothing was decided at all.
        let mut nothing = input(Vec::new());
        nothing.expect.must_terminate = true;
        nothing.expect.outages = vec![window(0, 1, 10)];
        assert!(TerminationOracle.check(&nothing).is_err());
    }

    #[test]
    fn metrics_sanity_checks_decision_clock() {
        let ok = input(vec![decision(1, 0, 0, 7), decision(2, 1, 0, 7)]);
        assert!(MetricsSanityOracle.check(&ok).is_ok());
        let bad = input(vec![decision(5, 0, 0, 7), decision(2, 1, 0, 7)]);
        let v = MetricsSanityOracle.check(&bad).unwrap_err();
        assert!(v.detail.contains("backwards"), "{}", v.detail);
    }

    #[test]
    fn suite_collects_all_violations() {
        let suite = OracleSuite::standard();
        assert_eq!(
            suite.names(),
            vec![
                "agreement",
                "validity",
                "no-revocation",
                "termination",
                "metrics-sanity"
            ]
        );
        let mut bad = input(vec![decision(1, 0, 0, 7), decision(2, 1, 0, 8)]);
        bad.expect.must_terminate = true;
        bad.expect.target_decisions = 5;
        let violations = suite.check(&bad);
        let names: Vec<_> = violations.iter().map(|v| v.oracle).collect();
        assert!(names.contains(&"agreement"), "{names:?}");
        assert!(names.contains(&"termination"), "{names:?}");
    }

    #[test]
    fn observer_records_events_and_decisions() {
        let probe = OracleObserver::new();
        let mut handle: Box<dyn StepObserver> = Box::new(probe.clone());
        handle.on_event(SimTime::from_millis(5));
        handle.on_event(SimTime::from_millis(3)); // regression
        handle.on_decision(SimTime::from_millis(3), NodeId::new(0), 0, Value::ONE);
        let snap = probe.snapshot();
        assert_eq!(snap.events, 2);
        assert_eq!(snap.clock_regressions, 1);
        assert_eq!(snap.decisions.len(), 1);
    }
}
