//! Run-level observability: structured instrumentation the engine emits into.
//!
//! This module is the *zero-cost-when-disabled* telemetry layer described in
//! DESIGN.md §12. A simulation built without an [`ObsConfig`] pays exactly one
//! `Option` discriminant check per hook site; a simulation built *with* one
//! collects:
//!
//! * per-node **delivery-latency histograms** (wire messages only, matching
//!   the metrics layer's accounting convention),
//! * per-node **decision-interval histograms** (gap between consecutive
//!   decisions on the same node; the first decision is measured from t=0),
//! * an **n×n message-flow matrix per protocol phase**, where the phase label
//!   comes from a protocol-supplied [`PhaseClassifier`],
//! * **per-view timing breakdowns** (first/last entry time and entry count
//!   for every view number any node entered), and
//! * a bounded **ring buffer of recent [`TraceEvent`]s** whose handle
//!   ([`ObsRing`]) survives a panic of the simulation, so fuzz harnesses can
//!   embed the last-K events of a crashing run in their failure reports.
//!
//! Everything recorded here derives exclusively from simulated quantities
//! (virtual clock, node ids, payload types), so the resulting
//! [`Observability`] snapshot — and its JSON — is byte-identical across
//! scheduler backends and sweep thread counts.
//!
//! Histograms use fixed log-2 buckets over microseconds: bucket 0 holds the
//! value 0, bucket *i* (for `i >= 1`) holds values in `[2^(i-1), 2^i)`. The
//! bucket array is a fixed-size inline array, so recording never allocates.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::error::SimError;
use crate::fasthash::FastMap;
use crate::ids::NodeId;
use crate::json::Json;
use crate::message::Message;
use crate::payload::Payload;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;

/// Maps message payloads to protocol phases.
///
/// A classifier is a static table of phase labels plus a function mapping a
/// payload to an *index* into that table (`None` for payloads it does not
/// understand — those are counted under [`UNCLASSIFIED_PHASE`]). Returning a
/// small integer instead of a label lets the recorder index its per-phase
/// flow accumulators directly — one array index per delivered message —
/// instead of linearly scanning a label list on the hot path.
///
/// Classifiers are `Copy` (a static slice and a plain `fn` pointer), so an
/// [`ObsConfig`] stays `Clone` and cheap to move across threads.
///
/// # Examples
///
/// ```
/// use bft_sim_core::obs::PhaseClassifier;
/// use bft_sim_core::payload::Payload;
///
/// const PHASES: &[&str] = &["proposal", "vote"];
/// fn classify(p: &dyn Payload) -> Option<u8> {
///     if p.as_any().is::<u64>() {
///         Some(1) // index into PHASES: "vote"
///     } else {
///         None
///     }
/// }
/// const CLASSIFIER: PhaseClassifier = PhaseClassifier::new(PHASES, classify);
/// assert_eq!(CLASSIFIER.phases()[1], "vote");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PhaseClassifier {
    phases: &'static [&'static str],
    classify: fn(&dyn Payload) -> Option<u8>,
}

impl PhaseClassifier {
    /// Builds a classifier from a phase-label table and an indexing function.
    /// Usable in `const` contexts, so protocols can expose their classifier
    /// as a constant.
    pub const fn new(
        phases: &'static [&'static str],
        classify: fn(&dyn Payload) -> Option<u8>,
    ) -> Self {
        PhaseClassifier { phases, classify }
    }

    /// The phase-label table; classification indices point into this slice.
    pub fn phases(&self) -> &'static [&'static str] {
        self.phases
    }

    /// Classifies `payload`, returning a valid index into
    /// [`phases`](PhaseClassifier::phases) or `None` (unclassified). An
    /// out-of-table index from the classify function is treated as
    /// unclassified rather than trusted.
    pub fn classify(&self, payload: &dyn Payload) -> Option<u8> {
        (self.classify)(payload).filter(|&i| (i as usize) < self.phases.len())
    }
}

/// Phase label used for payloads the [`PhaseClassifier`] does not recognise
/// (or when no classifier is configured at all).
pub const UNCLASSIFIED_PHASE: &str = "unclassified";

/// Largest node count for which per-phase flows keep a dense n×n matrix.
/// Above this the recorder switches to a sparse representation — at n = 1024
/// a *single* dense phase matrix would be 8 MiB, and protocols track several
/// phases. The JSON emitted for dense flows is unchanged, so reports for
/// runs at or below this size are byte-identical to earlier versions.
pub const DENSE_FLOW_MAX_NODES: usize = 64;

/// Number of log-2 buckets in a [`Histogram`].
///
/// Bucket 0 holds the value 0; bucket 40 holds everything at or above
/// `2^39` microseconds (~6.4 simulated days), which saturates the range.
pub const HISTOGRAM_BUCKETS: usize = 41;

/// Default ring-buffer capacity for recent trace events.
pub const DEFAULT_LAST_K: usize = 64;

/// A fixed-bucket log-2 histogram over microsecond durations.
///
/// Recording is allocation-free: the bucket array lives inline. Buckets are
/// `[0]`, `[1,2)`, `[2,4)`, … `[2^39, ∞)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_micros: u64,
    min_micros: u64,
    max_micros: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_micros: 0,
            min_micros: 0,
            max_micros: 0,
        }
    }

    /// The bucket index a microsecond value falls into.
    pub fn bucket_index(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            ((64 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of bucket `i` in microseconds.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let micros = d.as_micros();
        self.buckets[Self::bucket_index(micros)] += 1;
        if self.count == 0 || micros < self.min_micros {
            self.min_micros = micros;
        }
        if micros > self.max_micros {
            self.max_micros = micros;
        }
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values in microseconds (saturating).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Smallest recorded value in microseconds (0 when empty).
    pub fn min_micros(&self) -> u64 {
        self.min_micros
    }

    /// Largest recorded value in microseconds (0 when empty).
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Mean of recorded values in microseconds, or 0.0 when empty.
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min_micros < self.min_micros {
            self.min_micros = other.min_micros;
        }
        if other.max_micros > self.max_micros {
            self.max_micros = other.max_micros;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
    }

    /// Serialise to JSON. Buckets are emitted sparsely as `[index, count]`
    /// pairs so empty histograms stay tiny. `min_micros`/`max_micros` are
    /// omitted when the histogram is empty — a serialized 0 would otherwise
    /// be indistinguishable from a recorded 0.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(c)]))
            .collect();
        let mut fields = vec![
            ("count".to_string(), Json::UInt(self.count)),
            ("sum_micros".to_string(), Json::UInt(self.sum_micros)),
        ];
        if self.count > 0 {
            fields.push(("min_micros".to_string(), Json::UInt(self.min_micros)));
            fields.push(("max_micros".to_string(), Json::UInt(self.max_micros)));
        }
        fields.push(("buckets".to_string(), Json::Arr(buckets)));
        Json::Obj(fields)
    }

    /// Deserialise a histogram produced by [`to_json`](Histogram::to_json),
    /// validating internal consistency. Rejected as
    /// [`SimError::InvalidConfig`]:
    ///
    /// * unknown or missing fields, or non-integer values,
    /// * bucket entries that are not `[index, count]` pairs with
    ///   `index < HISTOGRAM_BUCKETS`, strictly ascending indices, and
    ///   `count > 0`,
    /// * `count` not equal to the bucket-count total,
    /// * an empty histogram (`count == 0`) carrying `min_micros`,
    ///   `max_micros`, a nonzero `sum_micros`, or populated buckets,
    /// * a populated histogram missing `min_micros`/`max_micros`, with
    ///   `min > max`, with min/max outside the lowest/highest populated
    ///   bucket, or with `sum_micros` outside `[count*min, count*max]`.
    pub fn from_json(json: &Json) -> Result<Histogram, SimError> {
        let bad = |msg: String| SimError::InvalidConfig(format!("histogram: {msg}"));
        let obj = match json {
            Json::Obj(fields) => fields,
            _ => return Err(bad("expected an object".into())),
        };
        let mut count = None;
        let mut sum_micros = None;
        let mut min_micros = None;
        let mut max_micros = None;
        let mut bucket_arr = None;
        for (key, value) in obj {
            match key.as_str() {
                "count" | "sum_micros" | "min_micros" | "max_micros" => {
                    let v = value
                        .as_u64()
                        .ok_or_else(|| bad(format!("field {key} is not an unsigned integer")))?;
                    let slot = match key.as_str() {
                        "count" => &mut count,
                        "sum_micros" => &mut sum_micros,
                        "min_micros" => &mut min_micros,
                        _ => &mut max_micros,
                    };
                    if slot.replace(v).is_some() {
                        return Err(bad(format!("duplicate field {key}")));
                    }
                }
                "buckets" => {
                    let arr = value
                        .as_arr()
                        .ok_or_else(|| bad("buckets is not an array".into()))?;
                    if bucket_arr.replace(arr).is_some() {
                        return Err(bad("duplicate field buckets".into()));
                    }
                }
                other => return Err(bad(format!("unknown field {other}"))),
            }
        }
        let count = count.ok_or_else(|| bad("missing field count".into()))?;
        let sum_micros = sum_micros.ok_or_else(|| bad("missing field sum_micros".into()))?;
        let bucket_arr = bucket_arr.ok_or_else(|| bad("missing field buckets".into()))?;

        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut bucket_total = 0u64;
        let mut last_index: Option<usize> = None;
        for entry in bucket_arr {
            let pair = entry
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| bad("bucket entry is not an [index, count] pair".into()))?;
            let index = pair[0]
                .as_u64()
                .filter(|&i| i < HISTOGRAM_BUCKETS as u64)
                .ok_or_else(|| {
                    bad(format!(
                        "bucket index out of range (max {})",
                        HISTOGRAM_BUCKETS - 1
                    ))
                })? as usize;
            if last_index.is_some_and(|prev| index <= prev) {
                return Err(bad("bucket indices must be strictly ascending".into()));
            }
            last_index = Some(index);
            let c = pair[1]
                .as_u64()
                .filter(|&c| c > 0)
                .ok_or_else(|| bad("bucket count must be a positive integer".into()))?;
            buckets[index] = c;
            bucket_total = bucket_total
                .checked_add(c)
                .ok_or_else(|| bad("bucket counts overflow u64".into()))?;
        }
        if count != bucket_total {
            return Err(bad(format!(
                "count {count} does not match bucket total {bucket_total}"
            )));
        }

        if count == 0 {
            if min_micros.is_some() || max_micros.is_some() {
                return Err(bad("empty histogram must omit min_micros/max_micros".into()));
            }
            if sum_micros != 0 {
                return Err(bad(format!(
                    "empty histogram has nonzero sum_micros {sum_micros}"
                )));
            }
            return Ok(Histogram::new());
        }

        let min_micros = min_micros.ok_or_else(|| bad("missing field min_micros".into()))?;
        let max_micros = max_micros.ok_or_else(|| bad("missing field max_micros".into()))?;
        if min_micros > max_micros {
            return Err(bad(format!(
                "min_micros {min_micros} exceeds max_micros {max_micros}"
            )));
        }
        let lowest = buckets.iter().position(|&c| c > 0).expect("count > 0");
        let highest = buckets.iter().rposition(|&c| c > 0).expect("count > 0");
        if Self::bucket_index(min_micros) != lowest {
            return Err(bad(format!(
                "min_micros {min_micros} falls outside the lowest populated bucket {lowest}"
            )));
        }
        if Self::bucket_index(max_micros) != highest {
            return Err(bad(format!(
                "max_micros {max_micros} falls outside the highest populated bucket {highest}"
            )));
        }
        // `record` saturates the sum, so only flag sums that are impossible
        // even without saturation: below count*min, or above count*max when
        // count*max itself does not overflow.
        let lo = (count as u128) * (min_micros as u128);
        let hi = (count as u128) * (max_micros as u128);
        let sum = sum_micros as u128;
        if sum < lo || (sum > hi && hi <= u64::MAX as u128) {
            return Err(bad(format!(
                "sum_micros {sum_micros} inconsistent with count {count} and min/max \
                 [{min_micros}, {max_micros}]"
            )));
        }
        Ok(Histogram {
            buckets,
            count,
            sum_micros,
            min_micros,
            max_micros,
        })
    }
}

/// A clonable handle to a bounded ring buffer of recent [`TraceEvent`]s.
///
/// The buffer lives behind an `Arc<Mutex<..>>`, so a handle taken *before* a
/// simulation runs still sees the recorded events after the simulation
/// panics — fuzz harnesses rely on this to dump the last-K events of a
/// crashing run.
#[derive(Debug, Clone)]
pub struct ObsRing {
    inner: Arc<Mutex<RingInner>>,
}

#[derive(Debug)]
struct RingInner {
    capacity: usize,
    events: VecDeque<TraceEvent>,
}

impl ObsRing {
    /// A ring that retains the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ObsRing {
            inner: Arc::new(Mutex::new(RingInner {
                capacity,
                events: VecDeque::with_capacity(capacity.min(1024)),
            })),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("obs ring poisoned");
        if inner.capacity == 0 {
            return;
        }
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(event);
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("obs ring poisoned").capacity
    }

    /// Copy out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("obs ring poisoned");
        inner.events.iter().cloned().collect()
    }
}

/// Configuration for run-level observability, passed to
/// [`SimulationBuilder::observability`](crate::engine::SimulationBuilder::observability).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    classifier: Option<PhaseClassifier>,
    ring: ObsRing,
    last_k: usize,
}

impl ObsConfig {
    /// Observability retaining the `last_k` most recent trace events.
    pub fn new(last_k: usize) -> Self {
        ObsConfig {
            classifier: None,
            ring: ObsRing::new(last_k),
            last_k,
        }
    }

    /// Attach a protocol-phase classifier for the message-flow matrix.
    pub fn with_classifier(mut self, classifier: PhaseClassifier) -> Self {
        self.classifier = Some(classifier);
        self
    }

    /// A handle to the event ring. Clone it *before* running the simulation
    /// to read the last-K events even if the run panics.
    pub fn ring(&self) -> ObsRing {
        self.ring.clone()
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::new(DEFAULT_LAST_K)
    }
}

/// First/last entry times and entry count for one view number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewTiming {
    /// The view number.
    pub view: u64,
    /// Simulated time the first node entered this view.
    pub first_entry: SimTime,
    /// Simulated time the last node entered this view.
    pub last_entry: SimTime,
    /// How many `EnterView` reports named this view (across all nodes).
    pub entries: u64,
}

impl ViewTiming {
    fn to_json(self) -> Json {
        Json::obj([
            ("view", Json::UInt(self.view)),
            (
                "first_entry_micros",
                Json::UInt(self.first_entry.as_micros()),
            ),
            ("last_entry_micros", Json::UInt(self.last_entry.as_micros())),
            ("entries", Json::UInt(self.entries)),
        ])
    }
}

/// Queueing statistics for one directed link that saw contention: how long
/// messages waited for the link to free up, and the deepest backlog
/// observed. Links that never queued produce no entry, so the list stays
/// proportional to actual bottlenecks — `bft-sim trace` sorts it to surface
/// the hottest links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkQueueStat {
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Queueing-delay histogram for messages that waited on this link.
    pub queued: Histogram,
    /// Deepest backlog (transmissions already serializing) seen on this link.
    pub peak_depth: u32,
}

impl LinkQueueStat {
    fn to_json(&self) -> Json {
        Json::obj([
            ("src", Json::UInt(self.src as u64)),
            ("dst", Json::UInt(self.dst as u64)),
            ("queued", self.queued.to_json()),
            ("peak_depth", Json::UInt(self.peak_depth as u64)),
        ])
    }
}

/// One nonzero cell of a message-flow matrix: `count` wire messages from
/// `src` delivered to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCell {
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Deliveries observed on this edge.
    pub count: u64,
}

/// How a [`PhaseFlow`] stores its counts.
///
/// Dense keeps the familiar row-major n×n matrix; sparse keeps only the
/// nonzero cells, sorted by `(src, dst)`. Protocols at n = 1024 touch a few
/// edges per phase out of the ~10⁶ possible, so the sparse form is what makes
/// observability affordable at scale.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FlowRepr {
    /// Row-major n×n delivery counts (`matrix[src * nodes + dst]`).
    Dense(Vec<u64>),
    /// Nonzero cells only, ascending by `(src, dst)`.
    Sparse(Vec<FlowCell>),
}

/// An n×n message-flow matrix for one protocol phase.
///
/// The storage is dense (row-major `Vec`) for runs of up to
/// [`DENSE_FLOW_MAX_NODES`] nodes and sparse (sorted nonzero cells) above
/// that; the accessors hide the difference. The JSON form of a dense flow is
/// unchanged from when `PhaseFlow` exposed the matrix directly, so reports
/// for small runs stay byte-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseFlow {
    /// The phase label (from the protocol's [`PhaseClassifier`], or
    /// [`UNCLASSIFIED_PHASE`]).
    pub phase: String,
    nodes: usize,
    total: u64,
    repr: FlowRepr,
}

impl PhaseFlow {
    /// The matrix dimension (number of nodes in the run).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total deliveries recorded in this phase (the sum over all cells).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the flow is stored as a dense matrix.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, FlowRepr::Dense(_))
    }

    /// Deliveries from `src` to `dst`; 0 when out of range.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        if src >= self.nodes || dst >= self.nodes {
            return 0;
        }
        match &self.repr {
            FlowRepr::Dense(matrix) => matrix[src * self.nodes + dst],
            FlowRepr::Sparse(cells) => {
                let key = (src as u32, dst as u32);
                match cells.binary_search_by_key(&key, |c| (c.src, c.dst)) {
                    Ok(i) => cells[i].count,
                    Err(_) => 0,
                }
            }
        }
    }

    /// The nonzero cells, ascending by `(src, dst)` regardless of storage.
    pub fn cells(&self) -> Vec<FlowCell> {
        match &self.repr {
            FlowRepr::Dense(matrix) => matrix
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &count)| FlowCell {
                    src: (i / self.nodes) as u32,
                    dst: (i % self.nodes) as u32,
                    count,
                })
                .collect(),
            FlowRepr::Sparse(cells) => cells.clone(),
        }
    }

    /// Number of nonzero cells, without materialising them.
    pub fn nonzero_cells(&self) -> usize {
        match &self.repr {
            FlowRepr::Dense(matrix) => matrix.iter().filter(|&&c| c > 0).count(),
            FlowRepr::Sparse(cells) => cells.len(),
        }
    }

    /// The row-major matrix when stored densely; `None` for sparse flows
    /// (materialising an n×n matrix at large n is exactly what the sparse
    /// form exists to avoid).
    pub fn dense(&self) -> Option<&[u64]> {
        match &self.repr {
            FlowRepr::Dense(matrix) => Some(matrix),
            FlowRepr::Sparse(_) => None,
        }
    }

    fn to_json(&self, n: usize) -> Json {
        match &self.repr {
            FlowRepr::Dense(matrix) => {
                let rows: Vec<Json> = matrix
                    .chunks(n.max(1))
                    .map(|row| Json::Arr(row.iter().map(|&c| Json::UInt(c)).collect()))
                    .collect();
                Json::obj([
                    ("phase", Json::Str(self.phase.clone())),
                    ("matrix", Json::Arr(rows)),
                ])
            }
            FlowRepr::Sparse(cells) => {
                let arr: Vec<Json> = cells
                    .iter()
                    .map(|c| {
                        Json::Arr(vec![
                            Json::UInt(c.src as u64),
                            Json::UInt(c.dst as u64),
                            Json::UInt(c.count),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("phase", Json::Str(self.phase.clone())),
                    ("cells", Json::Arr(arr)),
                ])
            }
        }
    }
}

/// The immutable observability snapshot attached to a
/// [`RunResult`](crate::metrics::RunResult) when observability was enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observability {
    /// Number of nodes in the run (matrix dimension).
    pub nodes: usize,
    /// Ring-buffer capacity the run was configured with.
    pub last_k: usize,
    /// Per-node wire-message delivery-latency histograms (indexed by node id).
    pub delivery_latency: Vec<Histogram>,
    /// Per-node decision-interval histograms (indexed by node id).
    pub decision_interval: Vec<Histogram>,
    /// Message-flow matrices, sorted by phase label.
    pub flows: Vec<PhaseFlow>,
    /// Per-view timing breakdowns, sorted by view number.
    pub views: Vec<ViewTiming>,
    /// Queueing delays across all links that saw contention (bandwidth
    /// models only; empty under delay-only models).
    pub link_queue_delay: Histogram,
    /// Per-link queueing stats, sorted by `(src, dst)`; only links that
    /// actually queued appear.
    pub link_queues: Vec<LinkQueueStat>,
    /// The last-K trace events of the run, oldest first.
    pub recent_events: Vec<TraceEvent>,
}

impl Observability {
    /// Serialise the snapshot via `core::json`.
    ///
    /// Key order and number formatting are fixed, so two runs that recorded
    /// the same data produce byte-identical JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", Json::UInt(self.nodes as u64)),
            ("last_k", Json::UInt(self.last_k as u64)),
            (
                "delivery_latency",
                Json::Arr(self.delivery_latency.iter().map(|h| h.to_json()).collect()),
            ),
            (
                "decision_interval",
                Json::Arr(self.decision_interval.iter().map(|h| h.to_json()).collect()),
            ),
            (
                "flows",
                Json::Arr(self.flows.iter().map(|f| f.to_json(self.nodes)).collect()),
            ),
            (
                "views",
                Json::Arr(self.views.iter().map(|v| v.to_json()).collect()),
            ),
            ("link_queue_delay", self.link_queue_delay.to_json()),
            (
                "link_queues",
                Json::Arr(self.link_queues.iter().map(|l| l.to_json()).collect()),
            ),
            (
                "recent_events",
                Json::Arr(self.recent_events.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }

    /// A compact behavior fingerprint of the run, hashed with the
    /// deterministic [`FastHasher`](crate::fasthash::FastHasher).
    ///
    /// The fingerprint is a *shape* signature, deliberately quantized:
    /// continuous quantities (latency sums, view-entry instants) enter only
    /// through their floor-log₂ bucket, so two runs that differ merely in
    /// sampled delays collapse to the same key, while structural differences
    /// — per-phase message totals and edge counts, which views were entered
    /// and by how many nodes, per-node delivery and decision counts — each
    /// produce a new one. `recent_events` and `last_k` are excluded: the
    /// ring is an execution option, not behavior. Everything hashed is a
    /// simulated quantity, so the fingerprint is identical across scheduler
    /// backends and `--threads` settings by construction.
    pub fn fingerprint(&self) -> u64 {
        use core::hash::Hasher;
        /// Floor-log₂ bucket (0 for 0, else `floor(log2(v)) + 1`).
        fn bucket(v: u64) -> u64 {
            64 - v.leading_zeros() as u64
        }
        let mut h = crate::fasthash::FastHasher::default();
        h.write_u64(self.nodes as u64);
        // Per-phase flow signature.
        h.write_u64(self.flows.len() as u64);
        for f in &self.flows {
            h.write(f.phase.as_bytes());
            h.write_u64(bucket(f.total()));
            h.write_u64(f.nonzero_cells() as u64);
        }
        // View-timeline shape.
        h.write_u64(self.views.len() as u64);
        for v in &self.views {
            h.write_u64(v.view);
            h.write_u64(v.entries);
            h.write_u64(bucket(v.first_entry.as_micros()));
            h.write_u64(bucket(
                v.last_entry.saturating_since(v.first_entry).as_micros(),
            ));
        }
        // Per-node delivery and decision shape.
        for hist in &self.delivery_latency {
            h.write_u64(bucket(hist.count()));
            h.write_u64(bucket(hist.mean_micros() as u64));
        }
        for hist in &self.decision_interval {
            h.write_u64(hist.count());
            h.write_u64(bucket(hist.mean_micros() as u64));
        }
        // Link-contention shape: which links queued, how deep, how long.
        // Delay-only runs contribute a constant (0, empty) here, so their
        // fingerprints are unchanged relative to each other.
        h.write_u64(bucket(self.link_queue_delay.count()));
        h.write_u64(self.link_queues.len() as u64);
        for l in &self.link_queues {
            h.write_u64((l.src as u64) << 32 | l.dst as u64);
            h.write_u64(bucket(l.queued.count()));
            h.write_u64(bucket(l.queued.mean_micros() as u64));
            h.write_u64(l.peak_depth as u64);
        }
        h.finish()
    }

    /// Total wire messages recorded in the flow matrices for `phase`.
    pub fn phase_total(&self, phase: &str) -> u64 {
        self.flows
            .iter()
            .filter(|f| f.phase == phase)
            .map(|f| f.total())
            .sum()
    }
}

/// Accumulating storage for one phase's flow counts while a run executes.
///
/// Dense accumulators are allocated upfront (n ≤ [`DENSE_FLOW_MAX_NODES`],
/// so at most a 32 KiB matrix per phase); sparse ones start as an empty map
/// and grow with the edges actually seen. `total` doubles as the emptiness
/// check at [`ObsRecorder::finish`] — phases never delivered into produce no
/// [`PhaseFlow`], exactly as when flows were created lazily per label.
#[derive(Debug)]
enum FlowAccum {
    /// Row-major n×n counts.
    Dense(Vec<u64>),
    /// `(src << 32 | dst)` → count.
    Sparse(FastMap<u64, u64>),
}

impl FlowAccum {
    fn record(&mut self, n: usize, src: usize, dst: usize) {
        match self {
            FlowAccum::Dense(matrix) => matrix[src * n + dst] += 1,
            FlowAccum::Sparse(map) => {
                let key = ((src as u64) << 32) | dst as u64;
                *map.entry(key).or_insert(0) += 1;
            }
        }
    }

    /// Folds the accumulator into its immutable snapshot form.
    fn finish(self, phase: &str, nodes: usize) -> PhaseFlow {
        match self {
            FlowAccum::Dense(matrix) => PhaseFlow {
                phase: phase.to_string(),
                nodes,
                total: matrix.iter().sum(),
                repr: FlowRepr::Dense(matrix),
            },
            FlowAccum::Sparse(map) => {
                let mut cells: Vec<FlowCell> = map
                    .into_iter()
                    .map(|(key, count)| FlowCell {
                        src: (key >> 32) as u32,
                        dst: key as u32,
                        count,
                    })
                    .collect();
                cells.sort_unstable_by_key(|c| (c.src, c.dst));
                PhaseFlow {
                    phase: phase.to_string(),
                    nodes,
                    total: cells.iter().map(|c| c.count).sum(),
                    repr: FlowRepr::Sparse(cells),
                }
            }
        }
    }
}

/// The engine-side recorder. Lives inside `Simulation` as an `Option`, so a
/// run without observability pays one discriminant check per hook.
#[derive(Debug)]
pub(crate) struct ObsRecorder {
    n: usize,
    last_k: usize,
    classifier: Option<PhaseClassifier>,
    delivery: Vec<Histogram>,
    decision: Vec<Histogram>,
    last_decision: Vec<Option<SimTime>>,
    /// Per-phase flow accumulators, indexed by the classifier's phase id;
    /// the extra last slot collects unclassified deliveries. Recording is a
    /// direct index — no per-message label scan.
    flows: Vec<FlowAccum>,
    /// Count of deliveries recorded into each accumulator, same indexing.
    flow_totals: Vec<u64>,
    /// View number → timing, kept sorted by view number.
    views: Vec<ViewTiming>,
    /// All queueing events across all links.
    link_queue_delay: Histogram,
    /// `(src << 32 | dst)` → (queue histogram, peak depth); populated only
    /// by links that actually queued, so delay-only runs keep it empty.
    link_queues: FastMap<u64, (Histogram, u32)>,
    ring: ObsRing,
}

impl ObsRecorder {
    /// Builds the recorder, validating that the flow bookkeeping for `n`
    /// nodes is representable.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when node indices would not fit the sparse
    /// cell key (n above `u32` range) or a dense matrix's `n * n` length
    /// would overflow `usize` — both structured errors where the previous
    /// dense-only code would have aborted on arithmetic overflow.
    pub(crate) fn new(n: usize, cfg: ObsConfig) -> Result<Self, SimError> {
        if n > u32::MAX as usize {
            return Err(SimError::invalid_config(format!(
                "observability supports at most {} nodes, got {n}",
                u32::MAX
            )));
        }
        let phase_slots = cfg.classifier.map_or(0, |c| c.phases().len()) + 1;
        let flows: Vec<FlowAccum> = if n <= DENSE_FLOW_MAX_NODES {
            let cells = n.checked_mul(n).ok_or_else(|| {
                SimError::invalid_config(format!("flow matrix size n*n overflows for n={n}"))
            })?;
            (0..phase_slots)
                .map(|_| FlowAccum::Dense(vec![0u64; cells]))
                .collect()
        } else {
            (0..phase_slots)
                .map(|_| FlowAccum::Sparse(FastMap::default()))
                .collect()
        };
        Ok(ObsRecorder {
            n,
            last_k: cfg.last_k,
            classifier: cfg.classifier,
            delivery: vec![Histogram::new(); n],
            decision: vec![Histogram::new(); n],
            last_decision: vec![None; n],
            flow_totals: vec![0; phase_slots],
            flows,
            views: Vec::new(),
            link_queue_delay: Histogram::new(),
            link_queues: FastMap::default(),
            ring: cfg.ring,
        })
    }

    pub(crate) fn push_event(&self, event: TraceEvent) {
        self.ring.push(event);
    }

    /// A wire message was delivered to `dst` at `now`.
    pub(crate) fn on_delivered(&mut self, now: SimTime, msg: &Message) {
        let dst = msg.dst().index();
        if let Some(h) = self.delivery.get_mut(dst) {
            h.record(now.saturating_since(msg.sent_at()));
        }
        let unclassified = self.flows.len() - 1;
        let id = match &self.classifier {
            Some(c) => c
                .classify(msg.payload())
                .map_or(unclassified, |i| i as usize),
            None => unclassified,
        };
        let src = msg.src().index();
        self.flows[id].record(self.n, src, dst);
        self.flow_totals[id] += 1;
    }

    /// `node` decided at `now`.
    pub(crate) fn on_decided(&mut self, now: SimTime, node: NodeId) {
        let idx = node.index();
        if let Some(h) = self.decision.get_mut(idx) {
            let since = self.last_decision[idx].unwrap_or(SimTime::ZERO);
            h.record(now.saturating_since(since));
            self.last_decision[idx] = Some(now);
        }
    }

    /// A message queued for `queued` behind `depth` earlier transmissions on
    /// the link `src → dst`. Called by the engine only when the network
    /// model reports actual queueing (`queued > 0`).
    pub(crate) fn on_link_queued(
        &mut self,
        src: NodeId,
        dst: NodeId,
        queued: SimDuration,
        depth: u32,
    ) {
        self.link_queue_delay.record(queued);
        let key = ((src.index() as u64) << 32) | dst.index() as u64;
        let entry = self
            .link_queues
            .entry(key)
            .or_insert_with(|| (Histogram::new(), 0));
        entry.0.record(queued);
        entry.1 = entry.1.max(depth);
    }

    /// `node` entered `view` at `now`.
    pub(crate) fn on_view(&mut self, now: SimTime, view: u64) {
        match self.views.binary_search_by_key(&view, |t| t.view) {
            Ok(i) => {
                let t = &mut self.views[i];
                if now < t.first_entry {
                    t.first_entry = now;
                }
                if now > t.last_entry {
                    t.last_entry = now;
                }
                t.entries += 1;
            }
            Err(i) => self.views.insert(
                i,
                ViewTiming {
                    view,
                    first_entry: now,
                    last_entry: now,
                    entries: 1,
                },
            ),
        }
    }

    /// Freeze the recorder into its final snapshot.
    pub(crate) fn finish(self) -> Observability {
        let phase_name = |id: usize| -> &'static str {
            match self.classifier {
                Some(c) if id < c.phases().len() => c.phases()[id],
                _ => UNCLASSIFIED_PHASE,
            }
        };
        let n = self.n;
        let totals = self.flow_totals;
        // Phases never delivered into are dropped, matching the lazy per-label
        // allocation the recorder used before accumulators were pre-sized.
        let mut flows: Vec<PhaseFlow> = self
            .flows
            .into_iter()
            .enumerate()
            .filter(|(id, _)| totals[*id] > 0)
            .map(|(id, accum)| accum.finish(phase_name(id), n))
            .collect();
        flows.sort_by(|a, b| a.phase.cmp(&b.phase));
        let mut link_queues: Vec<LinkQueueStat> = self
            .link_queues
            .into_iter()
            .map(|(key, (queued, peak_depth))| LinkQueueStat {
                src: (key >> 32) as u32,
                dst: key as u32,
                queued,
                peak_depth,
            })
            .collect();
        link_queues.sort_unstable_by_key(|l| (l.src, l.dst));
        Observability {
            nodes: self.n,
            last_k: self.last_k,
            delivery_latency: self.delivery,
            decision_interval: self.decision,
            flows,
            views: self.views,
            link_queue_delay: self.link_queue_delay,
            link_queues,
            recent_events: self.ring.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use crate::value::Value;

    #[test]
    fn bucket_index_is_log2_with_zero_bucket() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_the_line() {
        // Every value's bucket has lo <= value, and the next bucket's lo is
        // strictly above it (except the saturating last bucket).
        for v in [0u64, 1, 2, 3, 7, 8, 1_000_000, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_lo(i) <= v, "lo({i}) > {v}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert!(Histogram::bucket_lo(i + 1) > v, "lo({}) <= {v}", i + 1);
            }
        }
    }

    #[test]
    fn histogram_records_and_summarises() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_micros(), 0.0);
        for micros in [0u64, 5, 5, 1000] {
            h.record(SimDuration::from_micros(micros));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_micros(), 1010);
        assert_eq!(h.min_micros(), 0);
        assert_eq!(h.max_micros(), 1000);
        assert_eq!(h.mean_micros(), 252.5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[Histogram::bucket_index(5)], 2);
        assert_eq!(h.buckets()[Histogram::bucket_index(1000)], 1);
    }

    #[test]
    fn histogram_extreme_durations_land_in_first_and_last_buckets() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::MAX);
        // The zero duration occupies the dedicated first bucket and the
        // saturating maximum the last — never a panic, never an off-by-one
        // into a neighbouring bucket.
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(
            h.buckets().iter().sum::<u64>(),
            2,
            "no other bucket was touched"
        );
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_micros(), 0);
        assert_eq!(h.max_micros(), SimDuration::MAX.as_micros());
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum_micros(), SimDuration::MAX.as_micros());
        h.record(SimDuration::MAX);
        assert_eq!(
            h.sum_micros(),
            SimDuration::MAX.as_micros().saturating_mul(2)
        );
    }

    #[test]
    fn histogram_bucket_boundaries_around_powers_of_two() {
        // 2^k goes to bucket k+1; 2^k - 1 stays in bucket k (for k >= 1).
        for k in 1..(HISTOGRAM_BUCKETS - 2) {
            let lo = 1u64 << k;
            assert_eq!(Histogram::bucket_index(lo), k + 1, "2^{k}");
            assert_eq!(Histogram::bucket_index(lo - 1), k, "2^{k} - 1");
        }
        // At and beyond 2^39 everything saturates into the last bucket.
        assert_eq!(
            Histogram::bucket_index(1u64 << (HISTOGRAM_BUCKETS - 2)),
            HISTOGRAM_BUCKETS - 1
        );
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_merge_preserves_totals_with_extremes() {
        let mut a = Histogram::new();
        a.record(SimDuration::ZERO);
        a.record(SimDuration::from_micros(17));
        let mut b = Histogram::new();
        b.record(SimDuration::MAX);
        let (ca, cb) = (a.count(), b.count());
        let (sa, sb) = (a.sum_micros(), b.sum_micros());
        a.merge(&b);
        assert_eq!(a.count(), ca + cb);
        assert_eq!(a.sum_micros(), sa.saturating_add(sb));
        assert_eq!(a.min_micros(), 0);
        assert_eq!(a.max_micros(), SimDuration::MAX.as_micros());
        assert_eq!(a.buckets().iter().sum::<u64>(), ca + cb);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let values_a = [3u64, 0, 99, 12_345];
        let values_b = [7u64, 7, 2];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &values_a {
            a.record(SimDuration::from_micros(v));
            both.record(SimDuration::from_micros(v));
        }
        for &v in &values_b {
            b.record(SimDuration::from_micros(v));
            both.record(SimDuration::from_micros(v));
        }
        a.merge(&b);
        assert_eq!(a, both);

        // Merging an empty histogram is a no-op; merging into one adopts it.
        let mut empty = Histogram::new();
        empty.merge(&both);
        assert_eq!(empty, both);
        let snapshot = both.clone();
        both.merge(&Histogram::new());
        assert_eq!(both, snapshot);
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut h = Histogram::new();
        for micros in [0u64, 5, 5, 1000, 1 << 20] {
            h.record(SimDuration::from_micros(micros));
        }
        let json = h.to_json();
        let back = Histogram::from_json(&json).expect("round-trip");
        assert_eq!(back, h);
        // Through text too: dump + parse + from_json.
        let reparsed = Json::parse(&json.dump()).expect("parse");
        assert_eq!(Histogram::from_json(&reparsed).expect("round-trip"), h);
    }

    #[test]
    fn histogram_empty_json_omits_min_max_and_round_trips() {
        let h = Histogram::new();
        let json = h.to_json();
        assert!(json.get("min_micros").is_none(), "empty omits min");
        assert!(json.get("max_micros").is_none(), "empty omits max");
        let back = Histogram::from_json(&json).expect("round-trip");
        assert!(back.is_empty());
        assert_eq!(back, h);
        // A recorded zero, by contrast, serialises min/max explicitly.
        let mut z = Histogram::new();
        z.record(SimDuration::ZERO);
        let zj = z.to_json();
        assert_eq!(zj.get("min_micros").and_then(Json::as_u64), Some(0));
        assert_eq!(zj.get("max_micros").and_then(Json::as_u64), Some(0));
        assert_eq!(Histogram::from_json(&zj).expect("round-trip"), z);
    }

    #[test]
    fn histogram_from_json_rejects_inconsistencies() {
        let mut h = Histogram::new();
        for micros in [4u64, 5, 900] {
            h.record(SimDuration::from_micros(micros));
        }
        let good = h.to_json();
        assert!(Histogram::from_json(&good).is_ok());

        let rejects = |mutate: &dyn Fn(&mut Json)| {
            let mut j = good.clone();
            mutate(&mut j);
            assert!(
                matches!(Histogram::from_json(&j), Err(SimError::InvalidConfig(_))),
                "expected rejection of {}",
                j.dump()
            );
        };
        // count disagrees with the bucket total.
        rejects(&|j| *j.get_mut("count").unwrap() = Json::UInt(7));
        // sum below count*min / above count*max.
        rejects(&|j| *j.get_mut("sum_micros").unwrap() = Json::UInt(3));
        rejects(&|j| *j.get_mut("sum_micros").unwrap() = Json::UInt(10_000));
        // min/max outside their populated buckets, or inverted.
        rejects(&|j| *j.get_mut("min_micros").unwrap() = Json::UInt(100));
        rejects(&|j| *j.get_mut("max_micros").unwrap() = Json::UInt(5));
        rejects(&|j| {
            *j.get_mut("min_micros").unwrap() = Json::UInt(901);
            *j.get_mut("max_micros").unwrap() = Json::UInt(900);
        });
        // Unknown field.
        rejects(&|j| {
            if let Json::Obj(fields) = j {
                fields.push(("extra".into(), Json::UInt(1)));
            }
        });
        // Bucket index out of range, non-ascending order, zero count.
        rejects(&|j| {
            *j.get_mut("buckets").unwrap() = Json::Arr(vec![Json::Arr(vec![
                Json::UInt(HISTOGRAM_BUCKETS as u64),
                Json::UInt(3),
            ])]);
        });
        rejects(&|j| {
            *j.get_mut("buckets").unwrap() = Json::Arr(vec![
                Json::Arr(vec![Json::UInt(10), Json::UInt(1)]),
                Json::Arr(vec![Json::UInt(3), Json::UInt(2)]),
            ]);
        });
        rejects(&|j| {
            *j.get_mut("buckets").unwrap() = Json::Arr(vec![
                Json::Arr(vec![Json::UInt(3), Json::UInt(2)]),
                Json::Arr(vec![Json::UInt(10), Json::UInt(0)]),
            ]);
        });
        // Empty histogram carrying min/max or a nonzero sum.
        let mut empty = Histogram::new().to_json();
        if let Json::Obj(fields) = &mut empty {
            fields.insert(2, ("min_micros".into(), Json::UInt(0)));
        }
        assert!(Histogram::from_json(&empty).is_err());
        let mut empty = Histogram::new().to_json();
        *empty.get_mut("sum_micros").unwrap() = Json::UInt(9);
        assert!(Histogram::from_json(&empty).is_err());
    }

    #[test]
    fn ring_evicts_oldest_and_survives_capacity_zero() {
        let ring = ObsRing::new(2);
        let handle = ring.clone();
        for i in 0..4u64 {
            ring.push(TraceEvent {
                time: SimTime::from_micros(i),
                node: NodeId::new(0),
                kind: TraceKind::View { view: i },
            });
        }
        let events = handle.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::View { view: 2 });
        assert_eq!(events[1].kind, TraceKind::View { view: 3 });

        let none = ObsRing::new(0);
        none.push(TraceEvent {
            time: SimTime::ZERO,
            node: NodeId::new(0),
            kind: TraceKind::Crashed,
        });
        assert!(none.snapshot().is_empty());
    }

    #[test]
    fn recorder_decision_intervals_measure_gaps_per_node() {
        let mut rec = ObsRecorder::new(2, ObsConfig::new(8)).unwrap();
        rec.on_decided(SimTime::from_micros(100), NodeId::new(0));
        rec.on_decided(SimTime::from_micros(250), NodeId::new(0));
        rec.on_decided(SimTime::from_micros(400), NodeId::new(1));
        let obs = rec.finish();
        let h0 = &obs.decision_interval[0];
        assert_eq!(h0.count(), 2);
        assert_eq!(h0.min_micros(), 100); // first decision measured from t=0
        assert_eq!(h0.max_micros(), 150);
        let h1 = &obs.decision_interval[1];
        assert_eq!(h1.count(), 1);
        assert_eq!(h1.max_micros(), 400);
    }

    #[test]
    fn recorder_view_timings_fold_entries() {
        let mut rec = ObsRecorder::new(1, ObsConfig::new(8)).unwrap();
        rec.on_view(SimTime::from_micros(50), 3);
        rec.on_view(SimTime::from_micros(10), 3);
        rec.on_view(SimTime::from_micros(99), 3);
        rec.on_view(SimTime::from_micros(5), 1);
        let obs = rec.finish();
        assert_eq!(obs.views.len(), 2);
        assert_eq!(obs.views[0].view, 1);
        assert_eq!(obs.views[1].view, 3);
        assert_eq!(obs.views[1].first_entry, SimTime::from_micros(10));
        assert_eq!(obs.views[1].last_entry, SimTime::from_micros(99));
        assert_eq!(obs.views[1].entries, 3);
    }

    const TEST_PHASES: &[&str] = &["vote"];
    fn classify_votes(p: &dyn Payload) -> Option<u8> {
        p.as_any().downcast_ref::<u32>().map(|_| 0)
    }
    const TEST_CLASSIFIER: PhaseClassifier = PhaseClassifier::new(TEST_PHASES, classify_votes);

    #[test]
    fn recorder_flows_classify_and_fall_back() {
        let mut rec =
            ObsRecorder::new(2, ObsConfig::new(8).with_classifier(TEST_CLASSIFIER)).unwrap();
        let vote = Message::new(
            NodeId::new(0),
            NodeId::new(1),
            SimTime::from_micros(10),
            crate::payload::shared(7u32),
        );
        let other = Message::new(
            NodeId::new(1),
            NodeId::new(0),
            SimTime::from_micros(10),
            crate::payload::shared("hello"),
        );
        rec.on_delivered(SimTime::from_micros(30), &vote);
        rec.on_delivered(SimTime::from_micros(30), &vote);
        rec.on_delivered(SimTime::from_micros(45), &other);
        let obs = rec.finish();
        // Sorted by phase label.
        assert_eq!(obs.flows.len(), 2);
        assert_eq!(obs.flows[0].phase, UNCLASSIFIED_PHASE);
        assert!(obs.flows[0].is_dense());
        assert_eq!(obs.flows[0].dense().unwrap(), &[0, 0, 1, 0]);
        assert_eq!(obs.flows[1].phase, "vote");
        assert_eq!(obs.flows[1].dense().unwrap(), &[0, 2, 0, 0]);
        assert_eq!(obs.flows[1].get(0, 1), 2);
        assert_eq!(obs.flows[1].get(1, 0), 0);
        assert_eq!(obs.flows[1].total(), 2);
        assert_eq!(
            obs.flows[1].cells(),
            vec![FlowCell {
                src: 0,
                dst: 1,
                count: 2
            }]
        );
        assert_eq!(obs.phase_total("vote"), 2);
        // Latency = now - sent_at, recorded against the destination.
        assert_eq!(obs.delivery_latency[1].count(), 2);
        assert_eq!(obs.delivery_latency[1].max_micros(), 20);
        assert_eq!(obs.delivery_latency[0].count(), 1);
        assert_eq!(obs.delivery_latency[0].min_micros(), 35);
    }

    #[test]
    fn large_runs_use_sparse_flows_with_identical_semantics() {
        let n = DENSE_FLOW_MAX_NODES + 1;
        let mut rec =
            ObsRecorder::new(n, ObsConfig::new(8).with_classifier(TEST_CLASSIFIER)).unwrap();
        // Deliver votes on a few scattered edges, out of sorted order.
        let edges = [(64u32, 3u32), (0, 1), (64, 3), (7, 64), (0, 1), (0, 1)];
        for &(src, dst) in &edges {
            let m = Message::new(
                NodeId::new(src),
                NodeId::new(dst),
                SimTime::from_micros(10),
                crate::payload::shared(7u32),
            );
            rec.on_delivered(SimTime::from_micros(30), &m);
        }
        let obs = rec.finish();
        assert_eq!(obs.flows.len(), 1, "only the vote phase saw traffic");
        let flow = &obs.flows[0];
        assert!(!flow.is_dense());
        assert!(flow.dense().is_none());
        assert_eq!(flow.nodes(), n);
        assert_eq!(flow.total(), edges.len() as u64);
        assert_eq!(flow.get(0, 1), 3);
        assert_eq!(flow.get(64, 3), 2);
        assert_eq!(flow.get(7, 64), 1);
        assert_eq!(flow.get(1, 0), 0);
        assert_eq!(flow.get(n, 0), 0, "out of range reads 0");
        // Cells come out sorted by (src, dst) no matter the arrival order.
        let cells = flow.cells();
        let mut sorted = cells.clone();
        sorted.sort_unstable_by_key(|c| (c.src, c.dst));
        assert_eq!(cells, sorted);
        assert_eq!(cells.len(), 3);
        // JSON uses the sparse "cells" form, not an n×n matrix.
        let json = flow.to_json(n).dump_pretty();
        assert!(json.contains("\"cells\""), "{json}");
        assert!(!json.contains("\"matrix\""), "{json}");
    }

    #[test]
    fn dense_threshold_is_exact() {
        let at = ObsRecorder::new(DENSE_FLOW_MAX_NODES, ObsConfig::new(2)).unwrap();
        assert!(matches!(at.flows[0], FlowAccum::Dense(_)));
        let above = ObsRecorder::new(DENSE_FLOW_MAX_NODES + 1, ObsConfig::new(2)).unwrap();
        assert!(matches!(above.flows[0], FlowAccum::Sparse(_)));
    }

    #[test]
    fn out_of_table_phase_ids_fall_back_to_unclassified() {
        fn bogus(_p: &dyn Payload) -> Option<u8> {
            Some(200) // far beyond the table
        }
        const BOGUS: PhaseClassifier = PhaseClassifier::new(TEST_PHASES, bogus);
        assert_eq!(BOGUS.classify(&7u32), None);
        let mut rec = ObsRecorder::new(2, ObsConfig::new(8).with_classifier(BOGUS)).unwrap();
        let m = Message::new(
            NodeId::new(0),
            NodeId::new(1),
            SimTime::from_micros(10),
            crate::payload::shared(7u32),
        );
        rec.on_delivered(SimTime::from_micros(30), &m);
        let obs = rec.finish();
        assert_eq!(obs.flows.len(), 1);
        assert_eq!(obs.flows[0].phase, UNCLASSIFIED_PHASE);
    }

    #[test]
    fn recorder_rejects_unrepresentable_node_counts() {
        // Only checkable on 64-bit targets, where usize can exceed u32.
        if usize::BITS > 32 {
            let err = ObsRecorder::new(u32::MAX as usize + 1, ObsConfig::new(2));
            assert!(matches!(err, Err(SimError::InvalidConfig(_))));
        }
    }

    #[test]
    fn observability_json_shape_is_stable() {
        let mut rec = ObsRecorder::new(1, ObsConfig::new(2)).unwrap();
        rec.on_decided(SimTime::from_micros(7), NodeId::new(0));
        rec.on_view(SimTime::from_micros(3), 1);
        rec.push_event(TraceEvent {
            time: SimTime::from_micros(7),
            node: NodeId::new(0),
            kind: TraceKind::Decided {
                slot: 0,
                value: Value::new(9),
            },
        });
        let obs = rec.finish();
        let json = obs.to_json().dump_pretty();
        for key in [
            "\"nodes\"",
            "\"last_k\"",
            "\"delivery_latency\"",
            "\"decision_interval\"",
            "\"flows\"",
            "\"views\"",
            "\"link_queue_delay\"",
            "\"link_queues\"",
            "\"recent_events\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Identical snapshots serialise identically.
        assert_eq!(json, obs.clone().to_json().dump_pretty());
    }

    #[test]
    fn recorder_link_queues_fold_per_link_and_globally() {
        let mut rec = ObsRecorder::new(3, ObsConfig::new(4)).unwrap();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        rec.on_link_queued(a, b, SimDuration::from_micros(100), 1);
        rec.on_link_queued(a, b, SimDuration::from_micros(300), 2);
        rec.on_link_queued(c, b, SimDuration::from_micros(50), 1);
        let obs = rec.finish();
        assert_eq!(obs.link_queue_delay.count(), 3);
        assert_eq!(obs.link_queue_delay.sum_micros(), 450);
        // Sorted by (src, dst); only links that queued appear.
        assert_eq!(obs.link_queues.len(), 2);
        assert_eq!((obs.link_queues[0].src, obs.link_queues[0].dst), (0, 1));
        assert_eq!(obs.link_queues[0].queued.count(), 2);
        assert_eq!(obs.link_queues[0].peak_depth, 2);
        assert_eq!((obs.link_queues[1].src, obs.link_queues[1].dst), (2, 1));
        assert_eq!(obs.link_queues[1].peak_depth, 1);
        // Contention is part of the behavior fingerprint.
        let quiet = ObsRecorder::new(3, ObsConfig::new(4)).unwrap().finish();
        assert_ne!(obs.fingerprint(), quiet.fingerprint());
    }

    /// Builds a small snapshot with one delivery, one decision and one view.
    fn fingerprint_fixture(latency_micros: u64, view: u64) -> Observability {
        let mut rec = ObsRecorder::new(2, ObsConfig::new(4)).unwrap();
        let m = Message::new(
            NodeId::new(0),
            NodeId::new(1),
            SimTime::from_micros(10),
            crate::payload::shared(7u32),
        );
        rec.on_delivered(SimTime::from_micros(10 + latency_micros), &m);
        rec.on_decided(SimTime::from_micros(500), NodeId::new(1));
        rec.on_view(SimTime::from_micros(40), view);
        rec.finish()
    }

    #[test]
    fn fingerprint_is_deterministic_and_ignores_the_ring() {
        let a = fingerprint_fixture(100, 1);
        let mut b = fingerprint_fixture(100, 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // The event ring and its capacity are execution options, not
        // behavior; the fingerprint must not see them.
        b.last_k = 99;
        b.recent_events.push(TraceEvent {
            time: SimTime::from_micros(1),
            node: NodeId::new(0),
            kind: TraceKind::Crashed,
        });
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_quantizes_timing_but_sees_structure() {
        let base = fingerprint_fixture(100, 1);
        // Same log2 latency bucket -> same key.
        assert_eq!(
            base.fingerprint(),
            fingerprint_fixture(101, 1).fingerprint()
        );
        // A different view timeline is structural -> new key.
        assert_ne!(
            base.fingerprint(),
            fingerprint_fixture(100, 2).fingerprint()
        );
        // A wildly different latency crosses buckets -> new key.
        assert_ne!(
            base.fingerprint(),
            fingerprint_fixture(100_000, 1).fingerprint()
        );
    }
}
