//! Run-level observability: structured instrumentation the engine emits into.
//!
//! This module is the *zero-cost-when-disabled* telemetry layer described in
//! DESIGN.md §12. A simulation built without an [`ObsConfig`] pays exactly one
//! `Option` discriminant check per hook site; a simulation built *with* one
//! collects:
//!
//! * per-node **delivery-latency histograms** (wire messages only, matching
//!   the metrics layer's accounting convention),
//! * per-node **decision-interval histograms** (gap between consecutive
//!   decisions on the same node; the first decision is measured from t=0),
//! * an **n×n message-flow matrix per protocol phase**, where the phase label
//!   comes from a protocol-supplied [`PhaseClassifier`],
//! * **per-view timing breakdowns** (first/last entry time and entry count
//!   for every view number any node entered), and
//! * a bounded **ring buffer of recent [`TraceEvent`]s** whose handle
//!   ([`ObsRing`]) survives a panic of the simulation, so fuzz harnesses can
//!   embed the last-K events of a crashing run in their failure reports.
//!
//! Everything recorded here derives exclusively from simulated quantities
//! (virtual clock, node ids, payload types), so the resulting
//! [`Observability`] snapshot — and its JSON — is byte-identical across
//! scheduler backends and sweep thread counts.
//!
//! Histograms use fixed log-2 buckets over microseconds: bucket 0 holds the
//! value 0, bucket *i* (for `i >= 1`) holds values in `[2^(i-1), 2^i)`. The
//! bucket array is a fixed-size inline array, so recording never allocates.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::ids::NodeId;
use crate::json::Json;
use crate::message::Message;
use crate::payload::Payload;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceEvent;

/// Maps a message payload to a protocol-phase label, or `None` when the
/// payload is not one the classifier understands (it is then counted under
/// [`UNCLASSIFIED_PHASE`]).
///
/// Classifiers are plain `fn` pointers so an [`ObsConfig`] stays `Clone` and
/// cheap to move across threads.
pub type PhaseClassifier = fn(&dyn Payload) -> Option<&'static str>;

/// Phase label used for payloads the [`PhaseClassifier`] does not recognise
/// (or when no classifier is configured at all).
pub const UNCLASSIFIED_PHASE: &str = "unclassified";

/// Number of log-2 buckets in a [`Histogram`].
///
/// Bucket 0 holds the value 0; bucket 40 holds everything at or above
/// `2^39` microseconds (~6.4 simulated days), which saturates the range.
pub const HISTOGRAM_BUCKETS: usize = 41;

/// Default ring-buffer capacity for recent trace events.
pub const DEFAULT_LAST_K: usize = 64;

/// A fixed-bucket log-2 histogram over microsecond durations.
///
/// Recording is allocation-free: the bucket array lives inline. Buckets are
/// `[0]`, `[1,2)`, `[2,4)`, … `[2^39, ∞)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_micros: u64,
    min_micros: u64,
    max_micros: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_micros: 0,
            min_micros: 0,
            max_micros: 0,
        }
    }

    /// The bucket index a microsecond value falls into.
    pub fn bucket_index(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            ((64 - micros.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of bucket `i` in microseconds.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let micros = d.as_micros();
        self.buckets[Self::bucket_index(micros)] += 1;
        if self.count == 0 || micros < self.min_micros {
            self.min_micros = micros;
        }
        if micros > self.max_micros {
            self.max_micros = micros;
        }
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values in microseconds (saturating).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// Smallest recorded value in microseconds (0 when empty).
    pub fn min_micros(&self) -> u64 {
        self.min_micros
    }

    /// Largest recorded value in microseconds (0 when empty).
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Mean of recorded values in microseconds, or 0.0 when empty.
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min_micros < self.min_micros {
            self.min_micros = other.min_micros;
        }
        if other.max_micros > self.max_micros {
            self.max_micros = other.max_micros;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
    }

    /// Serialise to JSON. Buckets are emitted sparsely as `[index, count]`
    /// pairs so empty histograms stay tiny.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::UInt(i as u64), Json::UInt(c)]))
            .collect();
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum_micros", Json::UInt(self.sum_micros)),
            ("min_micros", Json::UInt(self.min_micros)),
            ("max_micros", Json::UInt(self.max_micros)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// A clonable handle to a bounded ring buffer of recent [`TraceEvent`]s.
///
/// The buffer lives behind an `Arc<Mutex<..>>`, so a handle taken *before* a
/// simulation runs still sees the recorded events after the simulation
/// panics — fuzz harnesses rely on this to dump the last-K events of a
/// crashing run.
#[derive(Debug, Clone)]
pub struct ObsRing {
    inner: Arc<Mutex<RingInner>>,
}

#[derive(Debug)]
struct RingInner {
    capacity: usize,
    events: VecDeque<TraceEvent>,
}

impl ObsRing {
    /// A ring that retains the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ObsRing {
            inner: Arc::new(Mutex::new(RingInner {
                capacity,
                events: VecDeque::with_capacity(capacity.min(1024)),
            })),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("obs ring poisoned");
        if inner.capacity == 0 {
            return;
        }
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(event);
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("obs ring poisoned").capacity
    }

    /// Copy out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("obs ring poisoned");
        inner.events.iter().cloned().collect()
    }
}

/// Configuration for run-level observability, passed to
/// [`SimulationBuilder::observability`](crate::engine::SimulationBuilder::observability).
#[derive(Debug, Clone)]
pub struct ObsConfig {
    classifier: Option<PhaseClassifier>,
    ring: ObsRing,
    last_k: usize,
}

impl ObsConfig {
    /// Observability retaining the `last_k` most recent trace events.
    pub fn new(last_k: usize) -> Self {
        ObsConfig {
            classifier: None,
            ring: ObsRing::new(last_k),
            last_k,
        }
    }

    /// Attach a protocol-phase classifier for the message-flow matrix.
    pub fn with_classifier(mut self, classifier: PhaseClassifier) -> Self {
        self.classifier = Some(classifier);
        self
    }

    /// A handle to the event ring. Clone it *before* running the simulation
    /// to read the last-K events even if the run panics.
    pub fn ring(&self) -> ObsRing {
        self.ring.clone()
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::new(DEFAULT_LAST_K)
    }
}

/// First/last entry times and entry count for one view number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewTiming {
    /// The view number.
    pub view: u64,
    /// Simulated time the first node entered this view.
    pub first_entry: SimTime,
    /// Simulated time the last node entered this view.
    pub last_entry: SimTime,
    /// How many `EnterView` reports named this view (across all nodes).
    pub entries: u64,
}

impl ViewTiming {
    fn to_json(self) -> Json {
        Json::obj([
            ("view", Json::UInt(self.view)),
            (
                "first_entry_micros",
                Json::UInt(self.first_entry.as_micros()),
            ),
            ("last_entry_micros", Json::UInt(self.last_entry.as_micros())),
            ("entries", Json::UInt(self.entries)),
        ])
    }
}

/// An n×n message-flow matrix for one protocol phase.
///
/// `matrix` is row-major: `matrix[src * nodes + dst]` counts wire messages
/// from `src` delivered to `dst` whose payload classified into `phase`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseFlow {
    /// The phase label (from the protocol's [`PhaseClassifier`], or
    /// [`UNCLASSIFIED_PHASE`]).
    pub phase: String,
    /// Row-major n×n delivery counts.
    pub matrix: Vec<u64>,
}

impl PhaseFlow {
    fn to_json(&self, n: usize) -> Json {
        let rows: Vec<Json> = self
            .matrix
            .chunks(n.max(1))
            .map(|row| Json::Arr(row.iter().map(|&c| Json::UInt(c)).collect()))
            .collect();
        Json::obj([
            ("phase", Json::Str(self.phase.clone())),
            ("matrix", Json::Arr(rows)),
        ])
    }
}

/// The immutable observability snapshot attached to a
/// [`RunResult`](crate::metrics::RunResult) when observability was enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observability {
    /// Number of nodes in the run (matrix dimension).
    pub nodes: usize,
    /// Ring-buffer capacity the run was configured with.
    pub last_k: usize,
    /// Per-node wire-message delivery-latency histograms (indexed by node id).
    pub delivery_latency: Vec<Histogram>,
    /// Per-node decision-interval histograms (indexed by node id).
    pub decision_interval: Vec<Histogram>,
    /// Message-flow matrices, sorted by phase label.
    pub flows: Vec<PhaseFlow>,
    /// Per-view timing breakdowns, sorted by view number.
    pub views: Vec<ViewTiming>,
    /// The last-K trace events of the run, oldest first.
    pub recent_events: Vec<TraceEvent>,
}

impl Observability {
    /// Serialise the snapshot via `core::json`.
    ///
    /// Key order and number formatting are fixed, so two runs that recorded
    /// the same data produce byte-identical JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("nodes", Json::UInt(self.nodes as u64)),
            ("last_k", Json::UInt(self.last_k as u64)),
            (
                "delivery_latency",
                Json::Arr(self.delivery_latency.iter().map(|h| h.to_json()).collect()),
            ),
            (
                "decision_interval",
                Json::Arr(self.decision_interval.iter().map(|h| h.to_json()).collect()),
            ),
            (
                "flows",
                Json::Arr(self.flows.iter().map(|f| f.to_json(self.nodes)).collect()),
            ),
            (
                "views",
                Json::Arr(self.views.iter().map(|v| v.to_json()).collect()),
            ),
            (
                "recent_events",
                Json::Arr(self.recent_events.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }

    /// Total wire messages recorded in the flow matrices for `phase`.
    pub fn phase_total(&self, phase: &str) -> u64 {
        self.flows
            .iter()
            .filter(|f| f.phase == phase)
            .flat_map(|f| f.matrix.iter())
            .sum()
    }
}

/// The engine-side recorder. Lives inside `Simulation` as an `Option`, so a
/// run without observability pays one discriminant check per hook.
#[derive(Debug)]
pub(crate) struct ObsRecorder {
    n: usize,
    last_k: usize,
    classifier: Option<PhaseClassifier>,
    delivery: Vec<Histogram>,
    decision: Vec<Histogram>,
    last_decision: Vec<Option<SimTime>>,
    /// Phase label → row-major n×n delivery counts. A handful of phases per
    /// protocol, so a linear scan beats a hash map here.
    flows: Vec<(&'static str, Vec<u64>)>,
    /// View number → timing, kept sorted by view number.
    views: Vec<ViewTiming>,
    ring: ObsRing,
}

impl ObsRecorder {
    pub(crate) fn new(n: usize, cfg: ObsConfig) -> Self {
        ObsRecorder {
            n,
            last_k: cfg.last_k,
            classifier: cfg.classifier,
            delivery: vec![Histogram::new(); n],
            decision: vec![Histogram::new(); n],
            last_decision: vec![None; n],
            flows: Vec::new(),
            views: Vec::new(),
            ring: cfg.ring,
        }
    }

    pub(crate) fn push_event(&self, event: TraceEvent) {
        self.ring.push(event);
    }

    /// A wire message was delivered to `dst` at `now`.
    pub(crate) fn on_delivered(&mut self, now: SimTime, msg: &Message) {
        let dst = msg.dst().index();
        if let Some(h) = self.delivery.get_mut(dst) {
            h.record(now.saturating_since(msg.sent_at()));
        }
        let phase = self
            .classifier
            .and_then(|c| c(msg.payload()))
            .unwrap_or(UNCLASSIFIED_PHASE);
        let src = msg.src().index();
        let cell = src * self.n + dst;
        let n2 = self.n * self.n;
        match self.flows.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, matrix)) => matrix[cell] += 1,
            None => {
                let mut matrix = vec![0u64; n2];
                matrix[cell] += 1;
                self.flows.push((phase, matrix));
            }
        }
    }

    /// `node` decided at `now`.
    pub(crate) fn on_decided(&mut self, now: SimTime, node: NodeId) {
        let idx = node.index();
        if let Some(h) = self.decision.get_mut(idx) {
            let since = self.last_decision[idx].unwrap_or(SimTime::ZERO);
            h.record(now.saturating_since(since));
            self.last_decision[idx] = Some(now);
        }
    }

    /// `node` entered `view` at `now`.
    pub(crate) fn on_view(&mut self, now: SimTime, view: u64) {
        match self.views.binary_search_by_key(&view, |t| t.view) {
            Ok(i) => {
                let t = &mut self.views[i];
                if now < t.first_entry {
                    t.first_entry = now;
                }
                if now > t.last_entry {
                    t.last_entry = now;
                }
                t.entries += 1;
            }
            Err(i) => self.views.insert(
                i,
                ViewTiming {
                    view,
                    first_entry: now,
                    last_entry: now,
                    entries: 1,
                },
            ),
        }
    }

    /// Freeze the recorder into its final snapshot.
    pub(crate) fn finish(self) -> Observability {
        let mut flows: Vec<PhaseFlow> = self
            .flows
            .into_iter()
            .map(|(phase, matrix)| PhaseFlow {
                phase: phase.to_string(),
                matrix,
            })
            .collect();
        flows.sort_by(|a, b| a.phase.cmp(&b.phase));
        Observability {
            nodes: self.n,
            last_k: self.last_k,
            delivery_latency: self.delivery,
            decision_interval: self.decision,
            flows,
            views: self.views,
            recent_events: self.ring.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use crate::value::Value;

    #[test]
    fn bucket_index_is_log2_with_zero_bucket() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_the_line() {
        // Every value's bucket has lo <= value, and the next bucket's lo is
        // strictly above it (except the saturating last bucket).
        for v in [0u64, 1, 2, 3, 7, 8, 1_000_000, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_lo(i) <= v, "lo({i}) > {v}");
            if i + 1 < HISTOGRAM_BUCKETS {
                assert!(Histogram::bucket_lo(i + 1) > v, "lo({}) <= {v}", i + 1);
            }
        }
    }

    #[test]
    fn histogram_records_and_summarises() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_micros(), 0.0);
        for micros in [0u64, 5, 5, 1000] {
            h.record(SimDuration::from_micros(micros));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_micros(), 1010);
        assert_eq!(h.min_micros(), 0);
        assert_eq!(h.max_micros(), 1000);
        assert_eq!(h.mean_micros(), 252.5);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[Histogram::bucket_index(5)], 2);
        assert_eq!(h.buckets()[Histogram::bucket_index(1000)], 1);
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let values_a = [3u64, 0, 99, 12_345];
        let values_b = [7u64, 7, 2];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &v in &values_a {
            a.record(SimDuration::from_micros(v));
            both.record(SimDuration::from_micros(v));
        }
        for &v in &values_b {
            b.record(SimDuration::from_micros(v));
            both.record(SimDuration::from_micros(v));
        }
        a.merge(&b);
        assert_eq!(a, both);

        // Merging an empty histogram is a no-op; merging into one adopts it.
        let mut empty = Histogram::new();
        empty.merge(&both);
        assert_eq!(empty, both);
        let snapshot = both.clone();
        both.merge(&Histogram::new());
        assert_eq!(both, snapshot);
    }

    #[test]
    fn ring_evicts_oldest_and_survives_capacity_zero() {
        let ring = ObsRing::new(2);
        let handle = ring.clone();
        for i in 0..4u64 {
            ring.push(TraceEvent {
                time: SimTime::from_micros(i),
                node: NodeId::new(0),
                kind: TraceKind::View { view: i },
            });
        }
        let events = handle.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, TraceKind::View { view: 2 });
        assert_eq!(events[1].kind, TraceKind::View { view: 3 });

        let none = ObsRing::new(0);
        none.push(TraceEvent {
            time: SimTime::ZERO,
            node: NodeId::new(0),
            kind: TraceKind::Crashed,
        });
        assert!(none.snapshot().is_empty());
    }

    #[test]
    fn recorder_decision_intervals_measure_gaps_per_node() {
        let mut rec = ObsRecorder::new(2, ObsConfig::new(8));
        rec.on_decided(SimTime::from_micros(100), NodeId::new(0));
        rec.on_decided(SimTime::from_micros(250), NodeId::new(0));
        rec.on_decided(SimTime::from_micros(400), NodeId::new(1));
        let obs = rec.finish();
        let h0 = &obs.decision_interval[0];
        assert_eq!(h0.count(), 2);
        assert_eq!(h0.min_micros(), 100); // first decision measured from t=0
        assert_eq!(h0.max_micros(), 150);
        let h1 = &obs.decision_interval[1];
        assert_eq!(h1.count(), 1);
        assert_eq!(h1.max_micros(), 400);
    }

    #[test]
    fn recorder_view_timings_fold_entries() {
        let mut rec = ObsRecorder::new(1, ObsConfig::new(8));
        rec.on_view(SimTime::from_micros(50), 3);
        rec.on_view(SimTime::from_micros(10), 3);
        rec.on_view(SimTime::from_micros(99), 3);
        rec.on_view(SimTime::from_micros(5), 1);
        let obs = rec.finish();
        assert_eq!(obs.views.len(), 2);
        assert_eq!(obs.views[0].view, 1);
        assert_eq!(obs.views[1].view, 3);
        assert_eq!(obs.views[1].first_entry, SimTime::from_micros(10));
        assert_eq!(obs.views[1].last_entry, SimTime::from_micros(99));
        assert_eq!(obs.views[1].entries, 3);
    }

    #[test]
    fn recorder_flows_classify_and_fall_back() {
        fn classify(p: &dyn Payload) -> Option<&'static str> {
            p.as_any().downcast_ref::<u32>().map(|_| "vote")
        }
        let mut rec = ObsRecorder::new(2, ObsConfig::new(8).with_classifier(classify));
        let vote = Message::new(
            NodeId::new(0),
            NodeId::new(1),
            SimTime::from_micros(10),
            crate::payload::shared(7u32),
        );
        let other = Message::new(
            NodeId::new(1),
            NodeId::new(0),
            SimTime::from_micros(10),
            crate::payload::shared("hello"),
        );
        rec.on_delivered(SimTime::from_micros(30), &vote);
        rec.on_delivered(SimTime::from_micros(30), &vote);
        rec.on_delivered(SimTime::from_micros(45), &other);
        let obs = rec.finish();
        // Sorted by phase label.
        assert_eq!(obs.flows.len(), 2);
        assert_eq!(obs.flows[0].phase, UNCLASSIFIED_PHASE);
        assert_eq!(obs.flows[0].matrix, vec![0, 0, 1, 0]);
        assert_eq!(obs.flows[1].phase, "vote");
        assert_eq!(obs.flows[1].matrix, vec![0, 2, 0, 0]);
        assert_eq!(obs.phase_total("vote"), 2);
        // Latency = now - sent_at, recorded against the destination.
        assert_eq!(obs.delivery_latency[1].count(), 2);
        assert_eq!(obs.delivery_latency[1].max_micros(), 20);
        assert_eq!(obs.delivery_latency[0].count(), 1);
        assert_eq!(obs.delivery_latency[0].min_micros(), 35);
    }

    #[test]
    fn observability_json_shape_is_stable() {
        let mut rec = ObsRecorder::new(1, ObsConfig::new(2));
        rec.on_decided(SimTime::from_micros(7), NodeId::new(0));
        rec.on_view(SimTime::from_micros(3), 1);
        rec.push_event(TraceEvent {
            time: SimTime::from_micros(7),
            node: NodeId::new(0),
            kind: TraceKind::Decided {
                slot: 0,
                value: Value::new(9),
            },
        });
        let obs = rec.finish();
        let json = obs.to_json().dump_pretty();
        for key in [
            "\"nodes\"",
            "\"last_k\"",
            "\"delivery_latency\"",
            "\"decision_interval\"",
            "\"flows\"",
            "\"views\"",
            "\"recent_events\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Identical snapshots serialise identically.
        assert_eq!(json, obs.clone().to_json().dump_pretty());
    }
}
