//! The validator module (§III-A6).
//!
//! Cross-validates simulation results against a ground truth. Two mechanisms
//! are provided:
//!
//! 1. **Schedule replay** — a run can record its per-message
//!    [`DeliverySchedule`] (the fate — delay or drop — the network and
//!    adversary assigned to every transmission, in send order). Replaying the
//!    schedule through a fresh simulation must reproduce the same decisions;
//!    [`Validator::check_replay`] asserts this. This is the analogue of the
//!    paper replaying BFTsim's event sequence.
//! 2. **Decision comparison** — [`Validator::compare_decisions`] checks two
//!    runs (e.g. the event-level engine and the packet-level baseline in
//!    `bft-sim-baseline`) agreed on *which node decided what value*.

use crate::adversary::Fate;
use crate::error::SimError;
use crate::json::Json;
use crate::metrics::RunResult;
use crate::time::SimDuration;

/// The recorded fate of every honest transmission of a run, in send order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeliverySchedule {
    fates: Vec<RecordedFate>,
    cursor: usize,
}

/// Serializable mirror of [`Fate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordedFate {
    Deliver { delay_micros: u64 },
    Drop,
}

impl DeliverySchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        DeliverySchedule::default()
    }

    /// Number of recorded transmissions.
    pub fn len(&self) -> usize {
        self.fates.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.fates.is_empty()
    }

    pub(crate) fn push(&mut self, fate: Fate) {
        self.fates.push(match fate {
            Fate::Deliver(d) => RecordedFate::Deliver {
                delay_micros: d.as_micros(),
            },
            Fate::Drop => RecordedFate::Drop,
        });
    }

    /// Consumes the next recorded fate, or `None` when the replayed run sends
    /// more messages than the recorded one (a divergence).
    pub(crate) fn next_fate(&mut self) -> Option<Fate> {
        let fate = self.fates.get(self.cursor)?;
        self.cursor += 1;
        Some(match *fate {
            RecordedFate::Deliver { delay_micros } => {
                Fate::Deliver(SimDuration::from_micros(delay_micros))
            }
            RecordedFate::Drop => Fate::Drop,
        })
    }

    /// Resets the replay cursor to the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Converts the schedule to JSON (externally-tagged fates, matching the
    /// derive format the schedule was originally serialised with).
    pub fn to_json(&self) -> Json {
        let fates = self
            .fates
            .iter()
            .map(|f| match f {
                RecordedFate::Deliver { delay_micros } => Json::obj([(
                    "Deliver",
                    Json::obj([("delay_micros", Json::from(*delay_micros))]),
                )]),
                RecordedFate::Drop => Json::from("Drop"),
            })
            .collect();
        Json::obj([("fates", Json::Arr(fates))])
    }

    /// Parses a schedule from the JSON produced by
    /// [`DeliverySchedule::to_json`]. The cursor starts rewound.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch.
    pub fn from_json(json: &Json) -> Result<DeliverySchedule, String> {
        let fates = json
            .get("fates")
            .and_then(Json::as_arr)
            .ok_or("schedule: missing \"fates\" array")?;
        let fates = fates
            .iter()
            .map(|f| match f {
                Json::Str(s) if s == "Drop" => Ok(RecordedFate::Drop),
                other => other
                    .get("Deliver")
                    .and_then(|d| d.get("delay_micros"))
                    .and_then(Json::as_u64)
                    .map(|delay_micros| RecordedFate::Deliver { delay_micros })
                    .ok_or_else(|| "schedule: bad fate entry".to_string()),
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(DeliverySchedule { fates, cursor: 0 })
    }
}

/// Cross-validation checks over [`RunResult`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct Validator;

impl Validator {
    /// Checks that two runs decided identically: same number of slots per
    /// node, same values per `(node, slot)`. Decision *times* are not
    /// compared (a packet-level and an event-level simulator legitimately
    /// differ in timing).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ValidationMismatch`] describing the first
    /// difference found.
    pub fn compare_decisions(a: &RunResult, b: &RunResult) -> Result<(), SimError> {
        if a.decided.len() != b.decided.len() {
            return Err(SimError::ValidationMismatch(format!(
                "node counts differ: {} vs {}",
                a.decided.len(),
                b.decided.len()
            )));
        }
        for (idx, (seq_a, seq_b)) in a.decided.iter().zip(&b.decided).enumerate() {
            if seq_a.len() != seq_b.len() {
                return Err(SimError::ValidationMismatch(format!(
                    "node {idx} decided {} slots vs {}",
                    seq_a.len(),
                    seq_b.len()
                )));
            }
            for (slot, ((_, va), (_, vb))) in seq_a.iter().zip(seq_b).enumerate() {
                if va != vb {
                    return Err(SimError::ValidationMismatch(format!(
                        "node {idx} slot {slot}: {va} vs {vb}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Checks a run's decisions against a recorded ground-truth trace
    /// (e.g. a golden trace committed to the repository, or one produced by
    /// another simulator) — the paper's §III-A6 use-case of replay against
    /// "the actual implementation of the BFT protocol".
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ValidationMismatch`] describing the first
    /// `(node, slot)` whose decided value differs or is missing.
    pub fn check_against_trace(
        result: &RunResult,
        golden: &crate::trace::Trace,
    ) -> Result<(), SimError> {
        for (_, node, slot, value) in golden.decisions() {
            let got = result
                .decided
                .get(node.index())
                .and_then(|seq| seq.get(slot as usize))
                .map(|&(_, v)| v);
            match got {
                Some(v) if v == value => {}
                Some(v) => {
                    return Err(SimError::ValidationMismatch(format!(
                        "{node} slot {slot}: golden {value}, got {v}"
                    )))
                }
                None => {
                    return Err(SimError::ValidationMismatch(format!(
                        "{node} slot {slot}: golden {value}, got nothing"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Checks a replayed run against the original: decisions must match and
    /// the replay must not have diverged (sent a different number of
    /// messages than the schedule recorded).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ValidationMismatch`] on any divergence.
    pub fn check_replay(original: &RunResult, replayed: &RunResult) -> Result<(), SimError> {
        if let Some(v) = &replayed.safety_violation {
            return Err(SimError::ValidationMismatch(format!(
                "replayed run reported: {v}"
            )));
        }
        Self::compare_decisions(original, replayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn schedule_round_trips_fates() {
        let mut s = DeliverySchedule::new();
        s.push(Fate::Deliver(SimDuration::from_millis(5.0)));
        s.push(Fate::Drop);
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.next_fate(),
            Some(Fate::Deliver(SimDuration::from_millis(5.0)))
        );
        assert_eq!(s.next_fate(), Some(Fate::Drop));
        assert_eq!(s.next_fate(), None, "exhausted schedule signals divergence");
        s.rewind();
        assert!(s.next_fate().is_some());
    }

    #[test]
    fn schedule_json_round_trip() {
        let mut s = DeliverySchedule::new();
        s.push(Fate::Deliver(SimDuration::from_micros(123_456)));
        s.push(Fate::Drop);
        s.push(Fate::Deliver(SimDuration::ZERO));
        let text = s.to_json().dump_pretty();
        let back = DeliverySchedule::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // Byte-identical re-serialisation: the validator depends on recorded
        // schedules surviving a save/load cycle exactly.
        assert_eq!(back.to_json().dump_pretty(), text);
    }
}
