//! The validator module (§III-A6).
//!
//! Cross-validates simulation results against a ground truth. Two mechanisms
//! are provided:
//!
//! 1. **Schedule replay** — a run can record its per-message
//!    [`DeliverySchedule`] (the fate — delay or drop — the network and
//!    adversary assigned to every transmission, in send order). Replaying the
//!    schedule through a fresh simulation must reproduce the same decisions;
//!    [`Validator::check_replay`] asserts this. This is the analogue of the
//!    paper replaying BFTsim's event sequence.
//! 2. **Decision comparison** — [`Validator::compare_decisions`] checks two
//!    runs (e.g. the event-level engine and the packet-level baseline in
//!    `bft-sim-baseline`) agreed on *which node decided what value*.
//!
//! Both mechanisms are independent of the scheduler backend: a schedule only
//! records message *fates*, and every [`SchedulerKind`](crate::scheduler::SchedulerKind)
//! dispatches events in the same `(timestamp, insertion seq)` total order, so
//! a schedule recorded under one backend replays bit-identically under
//! another (see [`crate::scheduler`] for the contract).

use crate::adversary::Fate;
use crate::error::SimError;
use crate::json::Json;
use crate::metrics::RunResult;
use crate::time::SimDuration;

/// The recorded fate of every honest transmission of a run, in send order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeliverySchedule {
    fates: Vec<RecordedFate>,
    cursor: usize,
}

/// Serializable mirror of [`Fate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordedFate {
    Deliver { delay_micros: u64 },
    Drop,
}

impl DeliverySchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        DeliverySchedule::default()
    }

    /// Number of recorded transmissions.
    pub fn len(&self) -> usize {
        self.fates.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.fates.is_empty()
    }

    pub(crate) fn push(&mut self, fate: Fate) {
        self.fates.push(match fate {
            Fate::Deliver(d) => RecordedFate::Deliver {
                delay_micros: d.as_micros(),
            },
            Fate::Drop => RecordedFate::Drop,
        });
    }

    /// Consumes the next recorded fate, or `None` when the replayed run sends
    /// more messages than the recorded one (a divergence).
    pub(crate) fn next_fate(&mut self) -> Option<Fate> {
        let fate = self.fates.get(self.cursor)?;
        self.cursor += 1;
        Some(match *fate {
            RecordedFate::Deliver { delay_micros } => {
                Fate::Deliver(SimDuration::from_micros(delay_micros))
            }
            RecordedFate::Drop => Fate::Drop,
        })
    }

    /// Resets the replay cursor to the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Returns a copy holding only the first `len` fates (all of them when
    /// `len` exceeds the schedule), with the cursor rewound. Shrinkers use
    /// this to bisect a failing schedule down to its shortest violating
    /// prefix; a replay past the prefix falls back to λ-delay delivery and is
    /// flagged as diverged by the engine.
    pub fn truncated(&self, len: usize) -> DeliverySchedule {
        DeliverySchedule {
            fates: self.fates[..len.min(self.fates.len())].to_vec(),
            cursor: 0,
        }
    }

    /// Converts the schedule to JSON (externally-tagged fates, matching the
    /// derive format the schedule was originally serialised with).
    pub fn to_json(&self) -> Json {
        let fates = self
            .fates
            .iter()
            .map(|f| match f {
                RecordedFate::Deliver { delay_micros } => Json::obj([(
                    "Deliver",
                    Json::obj([("delay_micros", Json::from(*delay_micros))]),
                )]),
                RecordedFate::Drop => Json::from("Drop"),
            })
            .collect();
        Json::obj([("fates", Json::Arr(fates))])
    }

    /// Parses a schedule from the JSON produced by
    /// [`DeliverySchedule::to_json`]. The cursor starts rewound.
    ///
    /// Parsing is strict: a corrupted schedule replayed as ground truth would
    /// silently validate the wrong run, so any entry that is not *exactly*
    /// the string `"Drop"` or a single-key `{"Deliver": {"delay_micros": n}}`
    /// object — including entries with trailing or duplicate fields — is
    /// rejected.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch, naming the
    /// offending fate's index.
    pub fn from_json(json: &Json) -> Result<DeliverySchedule, String> {
        let Json::Obj(top) = json else {
            return Err("schedule: expected a top-level object".into());
        };
        let [(key, fates)] = top.as_slice() else {
            return Err(format!(
                "schedule: expected exactly the \"fates\" key, found {} keys",
                top.len()
            ));
        };
        if key != "fates" {
            return Err(format!("schedule: unknown key \"{key}\""));
        }
        let fates = fates
            .as_arr()
            .ok_or("schedule: \"fates\" is not an array")?;
        let fates = fates
            .iter()
            .enumerate()
            .map(|(i, f)| Self::fate_from_json(f).map_err(|e| format!("schedule: fate #{i}: {e}")))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(DeliverySchedule { fates, cursor: 0 })
    }

    fn fate_from_json(json: &Json) -> Result<RecordedFate, String> {
        match json {
            Json::Str(s) if s == "Drop" => Ok(RecordedFate::Drop),
            Json::Str(s) => Err(format!("unknown fate \"{s}\"")),
            Json::Obj(pairs) => {
                let [(tag, body)] = pairs.as_slice() else {
                    return Err(format!(
                        "expected exactly one variant key, found {}",
                        pairs.len()
                    ));
                };
                if tag != "Deliver" {
                    return Err(format!("unknown fate variant \"{tag}\""));
                }
                let Json::Obj(fields) = body else {
                    return Err("\"Deliver\" body is not an object".into());
                };
                let [(field, delay)] = fields.as_slice() else {
                    return Err(format!(
                        "\"Deliver\" must hold exactly \"delay_micros\", found {} fields",
                        fields.len()
                    ));
                };
                if field != "delay_micros" {
                    return Err(format!("\"Deliver\" has unknown field \"{field}\""));
                }
                let delay_micros = delay
                    .as_u64()
                    .ok_or("\"delay_micros\" is not an unsigned integer")?;
                Ok(RecordedFate::Deliver { delay_micros })
            }
            _ => Err("expected \"Drop\" or a {\"Deliver\": …} object".into()),
        }
    }
}

/// Cross-validation checks over [`RunResult`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct Validator;

impl Validator {
    /// Checks that two runs decided identically: same number of slots per
    /// node, same values per `(node, slot)`. Decision *times* are not
    /// compared (a packet-level and an event-level simulator legitimately
    /// differ in timing).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ValidationMismatch`] describing the first
    /// difference found.
    pub fn compare_decisions(a: &RunResult, b: &RunResult) -> Result<(), SimError> {
        if a.decided.len() != b.decided.len() {
            return Err(SimError::ValidationMismatch(format!(
                "node counts differ: {} vs {}",
                a.decided.len(),
                b.decided.len()
            )));
        }
        for (idx, (seq_a, seq_b)) in a.decided.iter().zip(&b.decided).enumerate() {
            if seq_a.len() != seq_b.len() {
                return Err(SimError::ValidationMismatch(format!(
                    "node {idx} decided {} slots vs {}",
                    seq_a.len(),
                    seq_b.len()
                )));
            }
            for (slot, ((_, va), (_, vb))) in seq_a.iter().zip(seq_b).enumerate() {
                if va != vb {
                    return Err(SimError::ValidationMismatch(format!(
                        "node {idx} slot {slot}: {va} vs {vb}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Checks a run's decisions against a recorded ground-truth trace
    /// (e.g. a golden trace committed to the repository, or one produced by
    /// another simulator) — the paper's §III-A6 use-case of replay against
    /// "the actual implementation of the BFT protocol".
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ValidationMismatch`] describing the first
    /// `(node, slot)` whose decided value differs or is missing, naming the
    /// node id and the index of the golden trace event that disagrees.
    pub fn check_against_trace(
        result: &RunResult,
        golden: &crate::trace::Trace,
    ) -> Result<(), SimError> {
        for (event_idx, event) in golden.events().iter().enumerate() {
            let crate::trace::TraceKind::Decided { slot, value } = event.kind else {
                continue;
            };
            let node = event.node;
            let got = result
                .decided
                .get(node.index())
                .and_then(|seq| seq.get(slot as usize))
                .map(|&(_, v)| v);
            match got {
                Some(v) if v == value => {}
                Some(v) => {
                    return Err(SimError::ValidationMismatch(format!(
                        "golden event #{event_idx}: {node} slot {slot} decided {value}, \
                         but the run decided {v}"
                    )))
                }
                None => {
                    return Err(SimError::ValidationMismatch(format!(
                        "golden event #{event_idx}: {node} slot {slot} decided {value}, \
                         but the run decided nothing there"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Checks a replayed run against the original: decisions must match and
    /// the replay must not have diverged (sent a different number of
    /// messages than the schedule recorded).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ValidationMismatch`] on any divergence.
    pub fn check_replay(original: &RunResult, replayed: &RunResult) -> Result<(), SimError> {
        if let Some(v) = &replayed.safety_violation {
            return Err(SimError::ValidationMismatch(format!(
                "replayed run reported: {v}"
            )));
        }
        Self::compare_decisions(original, replayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn schedule_round_trips_fates() {
        let mut s = DeliverySchedule::new();
        s.push(Fate::Deliver(SimDuration::from_millis(5.0)));
        s.push(Fate::Drop);
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.next_fate(),
            Some(Fate::Deliver(SimDuration::from_millis(5.0)))
        );
        assert_eq!(s.next_fate(), Some(Fate::Drop));
        assert_eq!(s.next_fate(), None, "exhausted schedule signals divergence");
        s.rewind();
        assert!(s.next_fate().is_some());
    }

    #[test]
    fn truncated_keeps_a_rewound_prefix() {
        let mut s = DeliverySchedule::new();
        s.push(Fate::Deliver(SimDuration::from_millis(1.0)));
        s.push(Fate::Drop);
        s.push(Fate::Deliver(SimDuration::from_millis(2.0)));
        s.next_fate();

        let mut p = s.truncated(2);
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.next_fate(),
            Some(Fate::Deliver(SimDuration::from_millis(1.0))),
            "prefix cursor starts rewound"
        );
        assert_eq!(p.next_fate(), Some(Fate::Drop));
        assert_eq!(p.next_fate(), None);
        assert_eq!(
            s.truncated(99).len(),
            3,
            "over-long prefix is the whole schedule"
        );
        assert_eq!(s.truncated(0).len(), 0);
    }

    #[test]
    fn schedule_json_round_trip() {
        let mut s = DeliverySchedule::new();
        s.push(Fate::Deliver(SimDuration::from_micros(123_456)));
        s.push(Fate::Drop);
        s.push(Fate::Deliver(SimDuration::ZERO));
        let text = s.to_json().dump_pretty();
        let back = DeliverySchedule::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // Byte-identical re-serialisation: the validator depends on recorded
        // schedules surviving a save/load cycle exactly.
        assert_eq!(back.to_json().dump_pretty(), text);
    }

    /// Parses `text` and asserts `from_json` rejects it with an error
    /// containing `needle`.
    fn assert_rejected(text: &str, needle: &str) {
        let err = DeliverySchedule::from_json(&Json::parse(text).unwrap())
            .expect_err(&format!("malformed schedule accepted: {text}"));
        assert!(err.contains(needle), "error {err:?} lacks {needle:?}");
    }

    #[test]
    fn schedule_json_rejects_corruption() {
        // Top-level shape.
        assert_rejected("[]", "top-level object");
        assert_rejected("{\"fates\": [], \"extra\": 1}", "exactly the \"fates\"");
        assert_rejected("{\"schedule\": []}", "unknown key");
        assert_rejected("{\"fates\": 3}", "not an array");
        // Fate entries, each error naming the entry index.
        assert_rejected("{\"fates\": [\"Drop\", \"Dropp\"]}", "fate #1");
        assert_rejected("{\"fates\": [42]}", "fate #0");
        assert_rejected(
            "{\"fates\": [{\"Deliver\": {\"delay_micros\": 1}, \"Drop\": null}]}",
            "exactly one variant",
        );
        assert_rejected(
            "{\"fates\": [{\"Forward\": {\"delay_micros\": 1}}]}",
            "unknown fate variant",
        );
        assert_rejected("{\"fates\": [{\"Deliver\": 7}]}", "not an object");
        // Trailing and duplicate fields inside the Deliver body.
        assert_rejected(
            "{\"fates\": [{\"Deliver\": {\"delay_micros\": 1, \"trailing\": 2}}]}",
            "exactly \"delay_micros\"",
        );
        assert_rejected(
            "{\"fates\": [{\"Deliver\": {\"delay_micros\": 1, \"delay_micros\": 2}}]}",
            "exactly \"delay_micros\"",
        );
        assert_rejected(
            "{\"fates\": [{\"Deliver\": {\"delay\": 1}}]}",
            "unknown field",
        );
        assert_rejected(
            "{\"fates\": [\"Drop\", {\"Deliver\": {\"delay_micros\": \"soon\"}}]}",
            "fate #1",
        );
    }

    use crate::ids::NodeId;
    use crate::time::SimTime;
    use crate::trace::{Trace, TraceKind};
    use crate::value::Value;

    /// A minimal [`RunResult`] whose per-node decisions are the given value
    /// sequences (times are irrelevant to decision comparison).
    fn result_with_decisions(decided: &[&[u64]]) -> RunResult {
        let decided = decided
            .iter()
            .map(|seq| {
                seq.iter()
                    .map(|&v| (SimTime::ZERO, Value::new(v)))
                    .collect()
            })
            .collect::<Vec<Vec<_>>>();
        let n = decided.len();
        RunResult {
            end_time: SimTime::ZERO,
            timed_out: false,
            completions: Vec::new(),
            honest_messages: 0,
            adversary_messages: 0,
            dropped_messages: 0,
            events_processed: 0,
            skipped_cancelled_timers: 0,
            skipped_excluded_nodes: 0,
            broadcasts: 0,
            sent_per_node: vec![0; n],
            delivered_per_node: vec![0; n],
            safety_violation: None,
            decided,
            trace: Trace::new(),
            queue_high_water: 0,
            scheduler: crate::scheduler::SchedulerStats::default(),
            observability: None,
        }
    }

    fn mismatch_message(err: SimError) -> String {
        match err {
            SimError::ValidationMismatch(msg) => msg,
            other => panic!("expected ValidationMismatch, got {other:?}"),
        }
    }

    #[test]
    fn compare_decisions_names_node_and_slot() {
        let a = result_with_decisions(&[&[7, 8], &[7, 8]]);
        assert!(Validator::compare_decisions(&a, &a.clone()).is_ok());

        let fewer_nodes = result_with_decisions(&[&[7, 8]]);
        let msg = mismatch_message(Validator::compare_decisions(&a, &fewer_nodes).unwrap_err());
        assert!(msg.contains("node counts differ: 2 vs 1"), "{msg}");

        let fewer_slots = result_with_decisions(&[&[7, 8], &[7]]);
        let msg = mismatch_message(Validator::compare_decisions(&a, &fewer_slots).unwrap_err());
        assert!(msg.contains("node 1 decided 2 slots vs 1"), "{msg}");

        let conflicting = result_with_decisions(&[&[7, 8], &[7, 9]]);
        let msg = mismatch_message(Validator::compare_decisions(&a, &conflicting).unwrap_err());
        assert!(msg.contains("node 1 slot 1"), "{msg}");
        assert!(msg.contains("v0x8 vs v0x9"), "{msg}");
    }

    #[test]
    fn check_against_trace_names_node_and_event_index() {
        let mut golden = Trace::new();
        golden.record(
            SimTime::from_millis(1),
            NodeId::new(0),
            TraceKind::View { view: 1 },
        );
        golden.record(
            SimTime::from_millis(2),
            NodeId::new(0),
            TraceKind::Decided {
                slot: 0,
                value: Value::new(7),
            },
        );
        golden.record(
            SimTime::from_millis(3),
            NodeId::new(1),
            TraceKind::Decided {
                slot: 0,
                value: Value::new(7),
            },
        );

        let matching = result_with_decisions(&[&[7], &[7]]);
        assert!(Validator::check_against_trace(&matching, &golden).is_ok());

        // n1 decided a different value: the error points at golden event #2
        // (the View event at #0 counts toward the index).
        let conflicting = result_with_decisions(&[&[7], &[9]]);
        let msg =
            mismatch_message(Validator::check_against_trace(&conflicting, &golden).unwrap_err());
        assert!(msg.contains("golden event #2"), "{msg}");
        assert!(msg.contains("n1 slot 0"), "{msg}");
        assert!(msg.contains("decided v0x7"), "{msg}");
        assert!(msg.contains("the run decided v0x9"), "{msg}");

        // n1 never decided slot 0 at all.
        let missing = result_with_decisions(&[&[7], &[]]);
        let msg = mismatch_message(Validator::check_against_trace(&missing, &golden).unwrap_err());
        assert!(msg.contains("golden event #2"), "{msg}");
        assert!(msg.contains("n1 slot 0"), "{msg}");
        assert!(msg.contains("decided nothing"), "{msg}");
    }

    #[test]
    fn check_replay_reports_violations_and_mismatches() {
        let a = result_with_decisions(&[&[7]]);
        assert!(Validator::check_replay(&a, &a.clone()).is_ok());

        let mut violated = a.clone();
        violated.safety_violation = Some("replay diverged from recorded schedule".into());
        let msg = mismatch_message(Validator::check_replay(&a, &violated).unwrap_err());
        assert!(msg.contains("replay diverged"), "{msg}");
    }
}
