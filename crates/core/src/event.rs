//! The event queue driving the simulation.
//!
//! Following standard discrete-event simulation practice (and §III-A2 of the
//! paper), the controller keeps a priority queue of timestamped events and
//! advances the simulation clock to each popped event's timestamp. Two event
//! classes exist: **message events** (a node receives a message) and **time
//! events** (a registered timer fires). Adversary timers are a third,
//! internal variant.
//!
//! Events with equal timestamps are ordered by a global insertion sequence
//! number, which makes the execution order total and runs reproducible.

use std::collections::BinaryHeap;

use crate::ids::{NodeId, TimerId};
use crate::message::Message;
use crate::payload::Payload;
use crate::time::SimTime;

/// A timer registered by a node, waiting in the queue.
#[derive(Debug)]
pub struct Timer {
    /// Unique id, used for cancellation.
    pub id: TimerId,
    /// The protocol-defined payload attached at registration.
    payload: Box<dyn Payload>,
}

impl Timer {
    pub(crate) fn new(id: TimerId, payload: Box<dyn Payload>) -> Self {
        Timer { id, payload }
    }

    /// Borrows the type-erased payload.
    pub fn payload(&self) -> &dyn Payload {
        self.payload.as_ref()
    }

    /// Attempts to view the payload as concrete type `T`.
    pub fn downcast_ref<T: core::any::Any>(&self) -> Option<&T> {
        self.payload.as_any().downcast_ref::<T>()
    }
}

/// What happens when an event is popped.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// Deliver a message to its destination node.
    Deliver(Message),
    /// Fire a node timer.
    NodeTimer { node: NodeId, timer: Timer },
    /// Fire an adversary timer with an attacker-chosen tag.
    AdversaryTimer { tag: u64 },
}

#[derive(Debug)]
pub(crate) struct ScheduledEvent {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Min-heap of scheduled events ordered by `(time, insertion sequence)`.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::boxed;

    fn timer_event(n: u32) -> EventKind {
        EventKind::NodeTimer {
            node: NodeId::new(n),
            timer: Timer::new(TimerId(n as u64), boxed(())),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), timer_event(0));
        q.push(SimTime::from_millis(10), timer_event(1));
        q.push(SimTime::from_millis(20), timer_event(2));
        let times: Vec<u64> = core::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_micros() / 1000)
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.push(t, timer_event(i));
        }
        let seqs: Vec<u64> = core::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        q.push(SimTime::ZERO, timer_event(0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn timer_payload_downcast() {
        #[derive(Debug, Clone, PartialEq)]
        struct ViewTimeout(u64);
        let t = Timer::new(TimerId(1), boxed(ViewTimeout(4)));
        assert_eq!(t.downcast_ref::<ViewTimeout>(), Some(&ViewTimeout(4)));
        assert!(t.downcast_ref::<u8>().is_none());
    }
}
