//! The events driving the simulation.
//!
//! Following standard discrete-event simulation practice (and §III-A2 of the
//! paper), the controller keeps a priority queue of timestamped events and
//! advances the simulation clock to each popped event's timestamp. Two event
//! classes exist: **message events** (a node receives a message) and **time
//! events** (a registered timer fires). Adversary timers are a third,
//! internal variant.
//!
//! Events with equal timestamps are ordered by a global insertion sequence
//! number, which makes the execution order total and runs reproducible. The
//! queue itself lives behind the [`Scheduler`](crate::scheduler::Scheduler)
//! trait in [`crate::scheduler`]; this module defines the event types the
//! schedulers carry.

use crate::ids::{NodeId, TimerId};
use crate::message::Message;
use crate::payload::{Payload, PayloadCell};
use crate::time::SimTime;

/// A timer registered by a node, waiting in the queue.
///
/// The payload rides in a [`PayloadCell`], so small timer payloads (view
/// numbers, round markers — in practice all of them) cost no allocation.
#[derive(Debug)]
pub struct Timer {
    /// Unique id, used for cancellation.
    pub id: TimerId,
    /// The protocol-defined payload attached at registration.
    payload: PayloadCell,
}

impl Timer {
    pub(crate) fn new(id: TimerId, payload: impl Into<PayloadCell>) -> Self {
        Timer {
            id,
            payload: payload.into(),
        }
    }

    /// Borrows the type-erased payload.
    pub fn payload(&self) -> &dyn Payload {
        self.payload.as_dyn()
    }

    /// Attempts to view the payload as concrete type `T`.
    pub fn downcast_ref<T: core::any::Any>(&self) -> Option<&T> {
        self.payload.as_dyn().as_any().downcast_ref::<T>()
    }
}

/// What happens when an event is popped.
///
/// Only the engine constructs these (the [`Timer`] constructor is
/// crate-private); scheduler backends treat them as opaque cargo.
#[derive(Debug)]
pub enum EventKind {
    /// Deliver a message to its destination node.
    Deliver(Message),
    /// Fire a node timer.
    NodeTimer {
        /// The node whose timer fires.
        node: NodeId,
        /// The timer itself (id + payload).
        timer: Timer,
    },
    /// Fire an adversary timer with an attacker-chosen tag.
    AdversaryTimer {
        /// The attacker-chosen tag passed back on firing.
        tag: u64,
    },
}

/// An event stamped with its dispatch time and insertion sequence number.
///
/// The pair `(at, seq)` is the *total* dispatch order every
/// [`Scheduler`](crate::scheduler::Scheduler) backend must honour; the
/// comparison impls below encode it (reversed, because `BinaryHeap` is a
/// max-heap).
#[derive(Debug)]
pub struct ScheduledEvent {
    /// Absolute dispatch time.
    pub at: SimTime,
    /// Insertion sequence number — the equal-timestamp tie-breaker.
    pub seq: u64,
    /// What to do at `at`.
    pub kind: EventKind,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::boxed;

    #[test]
    fn scheduled_events_order_by_time_then_seq_reversed() {
        let ev = |at, seq| ScheduledEvent {
            at: SimTime::from_micros(at),
            seq,
            kind: EventKind::AdversaryTimer { tag: 0 },
        };
        // Reversed for the max-heap: the earlier event compares greater.
        assert!(ev(10, 0) > ev(20, 0));
        assert!(ev(10, 0) > ev(10, 1));
        assert_eq!(ev(10, 3), ev(10, 3));
    }

    #[test]
    fn timer_payload_downcast() {
        #[derive(Debug, Clone, PartialEq)]
        struct ViewTimeout(u64);
        let t = Timer::new(TimerId(1), boxed(ViewTimeout(4)));
        assert_eq!(t.downcast_ref::<ViewTimeout>(), Some(&ViewTimeout(4)));
        assert!(t.downcast_ref::<u8>().is_none());
    }
}
