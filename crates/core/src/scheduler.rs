//! Pluggable event schedulers.
//!
//! The controller (§III-A of the paper) is, at its core, a priority queue of
//! timestamped events. This module extracts that queue behind the
//! [`Scheduler`] trait so the backend can be swapped without touching the
//! engine: [`HeapScheduler`] is the reference binary-heap backend, and
//! [`WheelScheduler`] is a hierarchical timing wheel with slot-level
//! bucketing, O(1) in-place cancellation for bucketed timers, and a binary
//! min-heap working buffer for the slot being served.
//!
//! # The determinism contract
//!
//! Every backend MUST dispatch events in exactly the same total order:
//! ascending `(timestamp, insertion seq)`, where the insertion sequence
//! number is assigned by [`Scheduler::schedule`] in call order, starting at
//! zero. Equal-timestamp events therefore fire in the order they were
//! scheduled, and the order is total — there are no unordered pairs. Because
//! the engine is single-threaded per run and derives all randomness from the
//! run seed, this makes every run byte-identical under any backend (and, via
//! [`crate::sweep`], at any thread count). Schedule record/replay
//! ([`crate::validator`]) and golden-trace oracles rely on this: a schedule
//! recorded under one backend must replay identically under another.
//!
//! A backend must additionally uphold:
//!
//! * `schedule` is only called with `at` ≥ the timestamp of the last popped
//!   event (the engine never schedules into the past);
//! * `cancel` removes (or permanently suppresses) the event so it is *never*
//!   returned by `pop`; the engine only cancels events that are still
//!   pending, and only ever timer events;
//! * [`Scheduler::len`] counts *live* (non-cancelled) entries, so queue-depth
//!   accounting is backend-independent even when a backend keeps lazy
//!   tombstones internally.
//!
//! Backend-specific costs (tombstones, resident peaks) are reported through
//! [`SchedulerStats`] and surface in `BENCH_baseline.json`; they never feed
//! back into simulation results.

use std::collections::BinaryHeap;

use crate::event::{EventKind, ScheduledEvent};
use crate::fasthash::{FastMap, FastSet};
use crate::time::SimTime;

/// An opaque handle to a scheduled event, returned by
/// [`Scheduler::schedule`] and redeemed by [`Scheduler::cancel`].
///
/// Handles wrap the event's insertion sequence number, which is unique for
/// the lifetime of a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    /// Creates a handle from an insertion sequence number (for backend
    /// implementations).
    pub const fn new(seq: u64) -> Self {
        EventHandle(seq)
    }

    /// The insertion sequence number this handle refers to.
    pub const fn seq(self) -> u64 {
        self.0
    }
}

/// Counters a backend reports about its own internals.
///
/// These are *diagnostics*, not simulation outputs: two backends produce
/// byte-identical [`RunResult`](crate::metrics::RunResult)s apart from this
/// struct, which is why the fuzz report JSON deliberately omits it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerStats {
    /// The backend's name (`"heap"` or `"wheel"` for the built-ins).
    pub scheduler: &'static str,
    /// Peak number of entries resident in the backend at once, *including*
    /// any cancelled entries still awaiting lazy removal.
    pub peak_resident: usize,
    /// Cancelled entries that were discarded lazily at pop time. The heap
    /// cancels exclusively this way; the wheel only uses tombstones for
    /// timers that already sit in its working buffer (the slot being
    /// served) when cancelled.
    pub tombstones_popped: u64,
    /// Cancelled entries that were removed in place at cancel time, in O(1)
    /// (the wheel's bucketed timers). Always 0 on the heap backend.
    pub cancelled_in_place: u64,
    /// Cancelled entries still resident when the snapshot was taken.
    pub pending_tombstones: usize,
}

impl Default for SchedulerStats {
    fn default() -> Self {
        SchedulerStats {
            scheduler: "none",
            peak_resident: 0,
            tombstones_popped: 0,
            cancelled_in_place: 0,
            pending_tombstones: 0,
        }
    }
}

/// The event-queue abstraction the engine drives.
///
/// See the [module docs](self) for the determinism contract every
/// implementation must uphold.
pub trait Scheduler: core::fmt::Debug {
    /// Schedules `kind` at absolute time `at` and returns a cancellation
    /// handle. Assigns the event the next insertion sequence number.
    fn schedule(&mut self, at: SimTime, kind: EventKind) -> EventHandle;

    /// Cancels a pending event so it is never popped. Returns whether the
    /// handle referred to an event this backend can still locate. The engine
    /// only cancels events that are pending and has each handle cancelled at
    /// most once.
    fn cancel(&mut self, handle: EventHandle) -> bool;

    /// Pops the earliest live event in `(timestamp, insertion seq)` order.
    fn pop(&mut self) -> Option<ScheduledEvent>;

    /// Number of live (non-cancelled) entries.
    fn len(&self) -> usize;

    /// Whether no live entries remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the backend's internal counters.
    fn stats(&self) -> SchedulerStats;
}

/// Selects a [`Scheduler`] backend by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// The reference binary-heap backend with lazy tombstone cancellation.
    #[default]
    Heap,
    /// The hierarchical timing-wheel backend with O(1) in-place cancellation.
    Wheel,
}

impl SchedulerKind {
    /// Every built-in backend, in canonical (reference first) order.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::Heap, SchedulerKind::Wheel];

    /// Parses a backend name as accepted by `--scheduler`.
    pub fn parse(name: &str) -> Option<SchedulerKind> {
        match name {
            "heap" => Some(SchedulerKind::Heap),
            "wheel" => Some(SchedulerKind::Wheel),
            _ => None,
        }
    }

    /// The canonical name (`"heap"` / `"wheel"`).
    pub const fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        }
    }

    /// Constructs a fresh backend of this kind.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Heap => Box::new(HeapScheduler::new()),
            SchedulerKind::Wheel => Box::new(WheelScheduler::new()),
        }
    }
}

impl core::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The reference backend: a binary min-heap over `(timestamp, seq)` with
/// lazy tombstone cancellation — `cancel` marks the sequence number and
/// `pop` silently discards marked entries when they surface.
#[derive(Debug, Default)]
pub struct HeapScheduler {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    cancelled: FastSet<u64>,
    peak: usize,
    tombstones_popped: u64,
}

impl HeapScheduler {
    /// Creates an empty heap scheduler.
    pub fn new() -> Self {
        HeapScheduler::default()
    }
}

impl Scheduler for HeapScheduler {
    fn schedule(&mut self, at: SimTime, kind: EventKind) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, kind });
        self.peak = self.peak.max(self.heap.len());
        EventHandle(seq)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        self.cancelled.insert(handle.0)
    }

    fn pop(&mut self) -> Option<ScheduledEvent> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                self.tombstones_popped += 1;
                continue;
            }
            return Some(ev);
        }
        None
    }

    fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            scheduler: "heap",
            peak_resident: self.peak,
            tombstones_popped: self.tombstones_popped,
            cancelled_in_place: 0,
            pending_tombstones: self.cancelled.len(),
        }
    }
}

/// Base-slot width: 2^13 µs = 8.192 ms of simulated time per level-0 slot.
const SLOT_BITS: u32 = 13;
/// Slots per level: 2^6 = 64, so one `u64` occupancy bitmap per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Nine levels cover 13 + 9·6 = 67 ≥ 64 bits — every `u64` microsecond
/// timestamp maps to some slot, so no separate overflow list is needed.
const LEVELS: usize = 9;

/// Where a pending wheel entry currently lives (for cancellation).
#[derive(Debug, Clone, Copy)]
enum Loc {
    /// In the working-buffer heap; cancellation tombstones it.
    Current,
    /// In bucket `bucket` (level * SLOTS + slot) at index `pos`.
    Bucket { bucket: u32, pos: u32 },
}

/// The hierarchical timing-wheel backend.
///
/// Events are hashed into one of [`LEVELS`]×[`SLOTS`] buckets by timestamp:
/// an event lands on the level of the highest slot-index bit in which it
/// differs from the wheel cursor (the classic hashed-hierarchical wheel of
/// Varghese & Lauck). When the cursor advances into a coarse slot, the
/// slot's bucket cascades: entries are re-placed against the new cursor and
/// land in finer slots (or the working buffer). The earliest base slot's
/// entries are drained into the working buffer — a binary min-heap over
/// `(timestamp, seq)` — which preserves the exact total order of the
/// reference heap. A heap (rather than a sorted vector) keeps the buffer
/// O(log k) per operation even when one 8 ms slot holds tens of thousands
/// of near-simultaneous events, as large-n broadcast rounds routinely do; a
/// sorted-insert buffer degraded quadratically there (two *billion* element
/// shifts in one n = 256 fuzz scenario).
///
/// Cancellation of *bucketed* timers is O(1) and in place: a side index
/// maps a timer's sequence number to its bucket and position, so `cancel`
/// `swap_remove`s the entry immediately. Timers already in the working
/// buffer cannot be removed from the middle of a heap, so those few are
/// tombstoned and filtered at pop, exactly like the reference backend. The
/// index is maintained only for [`EventKind::NodeTimer`] entries, keeping
/// the message hot path free of hash-map traffic (messages are never
/// cancelled).
#[derive(Debug)]
pub struct WheelScheduler {
    /// `LEVELS * SLOTS` buckets, flattened level-major.
    buckets: Vec<Vec<ScheduledEvent>>,
    /// One occupancy bit per slot, per level.
    occupancy: [u64; LEVELS],
    /// The slot currently being served: a min-heap over `(at, seq)`
    /// (via [`ScheduledEvent`]'s reversed `Ord`), popped earliest-first.
    current: BinaryHeap<ScheduledEvent>,
    /// Lower bound (µs) on every pending timestamp; slot-aligned advances.
    cursor: u64,
    next_seq: u64,
    /// Live entry count (the wheel holds no tombstones, so this is also the
    /// resident count).
    live: usize,
    peak: usize,
    cancelled_in_place: u64,
    /// `seq -> location`, maintained for timer entries only.
    index: FastMap<u64, Loc>,
    /// Seqs of cancelled timers still resident in the working buffer,
    /// discarded when they surface at pop.
    current_tombstones: FastSet<u64>,
    /// Tombstones discarded so far (see [`SchedulerStats`]).
    tombstones_popped: u64,
    /// Recycled bucket allocations. Cascading a coarse slot used to drop the
    /// drained `Vec` and re-grow its replacement from scratch on the next
    /// placement; keeping a bounded free list instead makes steady-state
    /// cascades allocation-free.
    spare: Vec<Vec<ScheduledEvent>>,
}

/// Upper bound on recycled bucket vectors kept in [`WheelScheduler::spare`].
const SPARE_BUCKETS_MAX: usize = 64;

impl Default for WheelScheduler {
    fn default() -> Self {
        WheelScheduler::new()
    }
}

impl WheelScheduler {
    /// Creates an empty wheel scheduler with the cursor at time zero.
    pub fn new() -> Self {
        WheelScheduler {
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            current: BinaryHeap::new(),
            cursor: 0,
            next_seq: 0,
            live: 0,
            peak: 0,
            cancelled_in_place: 0,
            index: FastMap::default(),
            current_tombstones: FastSet::default(),
            tombstones_popped: 0,
            spare: Vec::new(),
        }
    }

    /// The level and slot `at` belongs to relative to the cursor, or `None`
    /// when it falls into the slot currently being served (the working
    /// buffer).
    fn locate(&self, at: u64) -> Option<(usize, usize)> {
        let a = at >> SLOT_BITS;
        let c = self.cursor >> SLOT_BITS;
        let diff = a ^ c;
        if diff == 0 {
            return None;
        }
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((a >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        Some((level, slot))
    }

    /// Files one entry into its bucket (or the working buffer), updating the
    /// occupancy bitmap and the cancellation index.
    fn place(&mut self, e: ScheduledEvent) {
        let at = e.at.as_micros();
        debug_assert!(at >= self.cursor, "scheduled into the past");
        let is_timer = matches!(e.kind, EventKind::NodeTimer { .. });
        match self.locate(at) {
            None => {
                // Belongs to the slot being served: O(log k) heap push.
                if is_timer {
                    self.index.insert(e.seq, Loc::Current);
                }
                self.current.push(e);
            }
            Some((level, slot)) => {
                let b = level * SLOTS + slot;
                if is_timer {
                    self.index.insert(
                        e.seq,
                        Loc::Bucket {
                            bucket: b as u32,
                            pos: self.buckets[b].len() as u32,
                        },
                    );
                }
                self.buckets[b].push(e);
                self.occupancy[level] |= 1 << slot;
            }
        }
    }

    /// Advances the cursor to the next occupied slot, cascading coarse
    /// buckets down until the working buffer holds the earliest base slot's
    /// entries. Must only be called with `current` empty and `live > 0`.
    fn advance(&mut self) {
        'rescan: loop {
            for level in 0..LEVELS {
                let shift = SLOT_BITS + LEVEL_BITS * level as u32;
                let cursor_slot = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
                // Slots strictly before the cursor's position at this level
                // are in the past; the cursor's own slot is already drained
                // (entries for it live in finer levels or the buffer).
                let pending = self.occupancy[level] & (!0u64 << cursor_slot);
                if pending == 0 {
                    continue;
                }
                let slot = pending.trailing_zeros();
                // Jump the cursor to the start of that slot: keep the bits
                // above this level's window, set this level's slot index,
                // zero everything below.
                let span = shift + LEVEL_BITS;
                let window_base = if span >= u64::BITS {
                    0
                } else {
                    (self.cursor >> span) << span
                };
                self.cursor = window_base | (u64::from(slot) << shift);
                let b = level * SLOTS + slot as usize;
                self.occupancy[level] &= !(1u64 << slot);
                if level == 0 {
                    // The earliest base slot: heapify it into the working
                    // buffer (O(k), cheaper than a sort). `current` is empty
                    // here, so its spent allocation cycles back through the
                    // free list for bucket reuse.
                    let bucket = std::mem::replace(
                        &mut self.buckets[b],
                        self.spare.pop().unwrap_or_default(),
                    );
                    let mut drained =
                        std::mem::replace(&mut self.current, BinaryHeap::from(bucket)).into_vec();
                    drained.clear();
                    if self.spare.len() < SPARE_BUCKETS_MAX {
                        self.spare.push(drained);
                    }
                    for e in &self.current {
                        if matches!(e.kind, EventKind::NodeTimer { .. }) {
                            self.index.insert(e.seq, Loc::Current);
                        }
                    }
                    return;
                }
                // A coarse slot: cascade its entries against the new cursor;
                // each lands at a strictly finer level (or in the buffer).
                // The bucket is replaced by a recycled vector and its own
                // allocation returns to the free list once drained.
                let mut entries =
                    std::mem::replace(&mut self.buckets[b], self.spare.pop().unwrap_or_default());
                for e in entries.drain(..) {
                    self.place(e);
                }
                if self.spare.len() < SPARE_BUCKETS_MAX {
                    self.spare.push(entries);
                }
                if !self.current.is_empty() {
                    return;
                }
                continue 'rescan;
            }
            unreachable!("wheel has live entries but no occupied slot at or after the cursor");
        }
    }
}

impl Scheduler for WheelScheduler {
    fn schedule(&mut self, at: SimTime, kind: EventKind) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.place(ScheduledEvent { at, seq, kind });
        self.live += 1;
        self.peak = self.peak.max(self.live + self.current_tombstones.len());
        EventHandle(seq)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(loc) = self.index.remove(&handle.0) else {
            return false;
        };
        match loc {
            Loc::Current => {
                // Mid-heap removal is impossible; tombstone and let pop
                // discard it when it surfaces (the reference backend's
                // strategy, scoped to the one slot being served).
                self.current_tombstones.insert(handle.0);
                self.live -= 1;
                return true;
            }
            Loc::Bucket { bucket, pos } => {
                let b = bucket as usize;
                let pos = pos as usize;
                debug_assert!(self.buckets[b][pos].seq == handle.0);
                self.buckets[b].swap_remove(pos);
                if let Some(moved) = self.buckets[b].get(pos) {
                    // Keep the index honest for the entry that swapped into
                    // the vacated position.
                    if matches!(moved.kind, EventKind::NodeTimer { .. }) {
                        if let Some(Loc::Bucket { pos: p, .. }) = self.index.get_mut(&moved.seq) {
                            *p = pos as u32;
                        }
                    }
                } else if self.buckets[b].is_empty() {
                    self.occupancy[b / SLOTS] &= !(1u64 << (b % SLOTS));
                }
            }
        }
        self.live -= 1;
        self.cancelled_in_place += 1;
        true
    }

    fn pop(&mut self) -> Option<ScheduledEvent> {
        loop {
            while let Some(e) = self.current.pop() {
                if self.current_tombstones.remove(&e.seq) {
                    self.tombstones_popped += 1;
                    continue;
                }
                self.live -= 1;
                if matches!(e.kind, EventKind::NodeTimer { .. }) {
                    self.index.remove(&e.seq);
                }
                return Some(e);
            }
            if self.live == 0 {
                return None;
            }
            self.advance();
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            scheduler: "wheel",
            peak_resident: self.peak,
            tombstones_popped: self.tombstones_popped,
            cancelled_in_place: self.cancelled_in_place,
            pending_tombstones: self.current_tombstones.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Timer;
    use crate::ids::{NodeId, TimerId};
    use crate::payload::boxed;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn timer_event(n: u64) -> EventKind {
        EventKind::NodeTimer {
            node: NodeId::new(n as u32),
            timer: Timer::new(TimerId(n), boxed(())),
        }
    }

    fn message_like_event(tag: u64) -> EventKind {
        // AdversaryTimer stands in for any non-cancellable event kind.
        EventKind::AdversaryTimer { tag }
    }

    fn backends() -> Vec<Box<dyn Scheduler>> {
        SchedulerKind::ALL.iter().map(|k| k.build()).collect()
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in backends() {
            q.schedule(SimTime::from_millis(30), timer_event(0));
            q.schedule(SimTime::from_millis(10), timer_event(1));
            q.schedule(SimTime::from_millis(20), timer_event(2));
            let times: Vec<u64> = core::iter::from_fn(|| q.pop())
                .map(|e| e.at.as_micros() / 1000)
                .collect();
            assert_eq!(times, vec![10, 20, 30], "{}", q.stats().scheduler);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for mut q in backends() {
            let t = SimTime::from_millis(5);
            for i in 0..10 {
                q.schedule(t, timer_event(i));
            }
            let seqs: Vec<u64> = core::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
            assert_eq!(seqs, (0..10).collect::<Vec<_>>(), "{}", q.stats().scheduler);
        }
    }

    #[test]
    fn empty_queue_behaviour() {
        for mut q in backends() {
            assert!(q.is_empty());
            assert_eq!(q.len(), 0);
            assert!(q.pop().is_none());
            q.schedule(SimTime::ZERO, timer_event(0));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn handles_are_the_insertion_sequence() {
        for mut q in backends() {
            let a = q.schedule(SimTime::from_millis(1), timer_event(0));
            let b = q.schedule(SimTime::from_millis(2), timer_event(1));
            assert_eq!(a, EventHandle::new(0));
            assert_eq!(b.seq(), 1);
        }
    }

    #[test]
    fn cancelled_events_are_never_popped() {
        for mut q in backends() {
            let h = q.schedule(SimTime::from_millis(10), timer_event(0));
            q.schedule(SimTime::from_millis(20), timer_event(1));
            assert!(q.cancel(h));
            assert_eq!(q.len(), 1, "len counts live entries only");
            let popped: Vec<u64> = core::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
            assert_eq!(popped, vec![1], "{}", q.stats().scheduler);
        }
    }

    #[test]
    fn wheel_cancellation_is_in_place_and_tombstone_free() {
        let mut q = WheelScheduler::new();
        let mut handles = Vec::new();
        for i in 0..100 {
            handles.push(q.schedule(SimTime::from_millis(10 + i), timer_event(i)));
        }
        for h in handles.iter().skip(1) {
            assert!(q.cancel(*h));
        }
        let stats = q.stats();
        assert_eq!(stats.cancelled_in_place, 99);
        assert_eq!(stats.tombstones_popped, 0);
        assert_eq!(stats.pending_tombstones, 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn heap_cancellation_leaves_tombstones_until_popped() {
        let mut q = HeapScheduler::new();
        let h = q.schedule(SimTime::from_millis(10), timer_event(0));
        q.schedule(SimTime::from_millis(20), timer_event(1));
        assert!(q.cancel(h));
        assert_eq!(q.stats().pending_tombstones, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|e| e.seq), Some(1));
        let stats = q.stats();
        assert_eq!(stats.tombstones_popped, 1);
        assert_eq!(stats.pending_tombstones, 0);
    }

    #[test]
    fn wheel_cascades_far_future_events_across_levels() {
        let mut q = WheelScheduler::new();
        // Spread events across every level of the hierarchy, including one
        // further out than an hour of simulated time.
        let times: Vec<u64> = vec![
            1,
            8_000,
            9_000,
            600_000,
            40_000_000,
            3_000_000_000,
            200_000_000_000,
            u64::from(u32::MAX) * 1_000,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), timer_event(i as u64));
        }
        let popped: Vec<u64> = core::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_micros())
            .collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    /// Satellite of the n=1024 scaling work: a full large-run round of
    /// timers — one per node, spread to the far edges of the 64-bit horizon
    /// (including `u64::MAX` µs, which must map to the top wheel level
    /// without overflowing the level computation) — pops in exactly the
    /// reference heap's order, with cancellations interleaved.
    #[test]
    fn heap_and_wheel_agree_on_large_far_future_rounds() {
        const N: u64 = 1024;
        let mut heap = HeapScheduler::new();
        let mut wheel = WheelScheduler::new();
        let mut rng = SmallRng::seed_from_u64(1024);
        let mut handles = Vec::new();
        for node in 0..N {
            // Deterministic spread: near, hour-scale, year-scale and the
            // extreme horizon, plus exact ties every fourth node.
            let at = match node % 8 {
                0 => SimTime::from_micros(node),
                1 => SimTime::from_micros(3_600_000_000 + node),
                2 => SimTime::from_micros(31_536_000_000_000 + node),
                3 => SimTime::from_micros(u64::MAX - node),
                4 => SimTime::from_micros(u64::MAX),
                _ => SimTime::from_micros(rng.gen_range(0..u64::MAX / 2)),
            };
            let h1 = heap.schedule(at, timer_event(node));
            let h2 = wheel.schedule(at, timer_event(node));
            assert_eq!(h1, h2);
            handles.push(h1);
        }
        // Cancel a deterministic third of the round on both backends.
        for h in handles.iter().filter(|h| h.seq() % 3 == 0) {
            assert!(heap.cancel(*h));
            assert!(wheel.cancel(*h));
        }
        assert_eq!(heap.len(), wheel.len());
        let mut popped = 0u64;
        let mut last = (SimTime::ZERO, 0u64);
        loop {
            match (heap.pop(), wheel.pop()) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    assert_eq!((x.at, x.seq), (y.at, y.seq));
                    assert!((x.at, x.seq) >= last, "pop order must be ascending");
                    last = (x.at, x.seq);
                    assert!(x.seq % 3 != 0, "cancelled timers must never fire");
                    popped += 1;
                }
                _ => panic!("one backend drained before the other"),
            }
        }
        assert_eq!(popped, N - N.div_ceil(3));
        // Every cancellation was honoured one way or the other: bucketed
        // timers in place, working-buffer timers via tombstones.
        let stats = wheel.stats();
        assert_eq!(
            stats.cancelled_in_place + stats.tombstones_popped,
            N.div_ceil(3)
        );
        assert_eq!(
            stats.pending_tombstones, 0,
            "drained wheel keeps no tombstones"
        );
    }

    /// Steady-state cascading recycles bucket allocations through the
    /// bounded free list instead of growing fresh vectors each slot.
    #[test]
    fn wheel_spare_list_stays_bounded() {
        let mut q = WheelScheduler::new();
        // Many batches far enough apart that each advance cascades coarse
        // slots repeatedly.
        for batch in 0..200u64 {
            for i in 0..16u64 {
                q.schedule(
                    SimTime::from_micros(batch * 40_000_000 + i * 1_000),
                    timer_event(batch * 16 + i),
                );
            }
        }
        while q.pop().is_some() {}
        assert!(q.spare.len() <= SPARE_BUCKETS_MAX);
    }

    #[test]
    fn wheel_cancels_from_buckets_and_working_buffer() {
        let mut q = WheelScheduler::new();
        // Same base slot (working buffer once served) plus far buckets.
        let a = q.schedule(SimTime::from_micros(100), timer_event(0));
        let b = q.schedule(SimTime::from_micros(200), timer_event(1));
        let far = q.schedule(SimTime::from_millis(5_000), timer_event(2));
        assert!(q.cancel(a)); // from the working buffer (slot 0 is current)
        assert!(q.cancel(far)); // from a coarse bucket
        assert_eq!(q.len(), 1);
        // The working-buffer cancel is a pending tombstone; the bucket
        // cancel was removed in place.
        assert_eq!(q.stats().cancelled_in_place, 1);
        assert_eq!(q.stats().pending_tombstones, 1);
        assert_eq!(q.pop().map(|e| e.seq), Some(b.seq()));
        assert!(q.pop().is_none());
        assert_eq!(q.stats().tombstones_popped, 1);
        assert_eq!(q.stats().pending_tombstones, 0);
    }

    #[test]
    fn cancelling_a_popped_timer_is_refused_by_the_wheel() {
        let mut q = WheelScheduler::new();
        let h = q.schedule(SimTime::from_micros(5), timer_event(0));
        assert!(q.pop().is_some());
        assert!(!q.cancel(h), "fired timers are no longer indexed");
        assert_eq!(q.stats().cancelled_in_place, 0);
    }

    #[test]
    fn kind_parses_and_builds() {
        assert_eq!(SchedulerKind::parse("heap"), Some(SchedulerKind::Heap));
        assert_eq!(SchedulerKind::parse("wheel"), Some(SchedulerKind::Wheel));
        assert_eq!(SchedulerKind::parse("fifo"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Heap);
        for kind in SchedulerKind::ALL {
            assert_eq!(kind.build().stats().scheduler, kind.name());
            assert_eq!(kind.to_string(), kind.name());
        }
    }

    /// The backbone of the determinism contract: a randomized workload of
    /// schedules, cancellations and pops — respecting the engine's invariants
    /// (monotone clock, cancel-only-pending, cancel-only-timers) — must
    /// produce the identical pop sequence and live length on both backends.
    #[test]
    fn heap_and_wheel_agree_on_randomized_workloads() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut heap = HeapScheduler::new();
            let mut wheel = WheelScheduler::new();
            let mut clock = 0u64;
            let mut pending_timers: Vec<EventHandle> = Vec::new();
            for step in 0..4_000u64 {
                match rng.gen_range(0..10u32) {
                    0..=4 => {
                        // Schedule a timer at a near, medium or far offset —
                        // including zero-delay, which must still fire after
                        // everything already popped.
                        let delay = match rng.gen_range(0..4u32) {
                            0 => rng.gen_range(0..1_000u64),
                            1 => rng.gen_range(0..500_000u64),
                            2 => rng.gen_range(0..60_000_000u64),
                            _ => rng.gen_range(0..7_200_000_000u64),
                        };
                        let at = SimTime::from_micros(clock + delay);
                        let h1 = heap.schedule(at, timer_event(step));
                        let h2 = wheel.schedule(at, timer_event(step));
                        assert_eq!(h1, h2, "seq assignment must match");
                        pending_timers.push(h1);
                    }
                    5 => {
                        // Schedule a non-cancellable (message-like) event.
                        let at = SimTime::from_micros(clock + rng.gen_range(0..2_000_000u64));
                        let h1 = heap.schedule(at, message_like_event(step));
                        let h2 = wheel.schedule(at, message_like_event(step));
                        assert_eq!(h1, h2);
                    }
                    6..=7 => {
                        let a = heap.pop();
                        let b = wheel.pop();
                        match (&a, &b) {
                            (None, None) => {}
                            (Some(x), Some(y)) => {
                                assert_eq!((x.at, x.seq), (y.at, y.seq), "seed {seed}");
                                clock = x.at.as_micros();
                                pending_timers.retain(|h| h.seq() != x.seq);
                            }
                            _ => panic!("one backend drained before the other"),
                        }
                    }
                    _ => {
                        if !pending_timers.is_empty() {
                            let i = rng.gen_range(0..pending_timers.len());
                            let h = pending_timers.swap_remove(i);
                            assert!(heap.cancel(h));
                            assert!(wheel.cancel(h), "wheel must locate pending timer");
                        }
                    }
                }
                assert_eq!(heap.len(), wheel.len(), "seed {seed} step {step}");
            }
            // Drain both completely; the tails must match too.
            loop {
                let a = heap.pop();
                let b = wheel.pop();
                match (a, b) {
                    (None, None) => break,
                    (Some(x), Some(y)) => assert_eq!((x.at, x.seq), (y.at, y.seq)),
                    _ => panic!("one backend drained before the other"),
                }
            }
            // A fully drained wheel retains no tombstones, whichever path
            // each cancellation took.
            assert_eq!(wheel.stats().pending_tombstones, 0, "seed {seed}");
        }
    }
}
