//! Identifier newtypes used throughout the simulator.

use core::fmt;

/// Identifies one replica (node) in the simulated system.
///
/// Node ids are dense: a run with `n` nodes uses ids `0..n`.
///
/// # Examples
///
/// ```
/// use bft_sim_core::ids::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node, usable for array indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw id value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over all node ids of a system of `n` nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use bft_sim_core::ids::NodeId;
    ///
    /// let ids: Vec<NodeId> = NodeId::all(3).collect();
    /// assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u32).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies a timer registered with the simulation controller.
///
/// Timer ids are unique within a run; cancelling an id that already fired is
/// a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Returns the raw id value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A dense set of node ids, stored as a bitmap.
///
/// The engine tracks crashed, corrupted and excluded nodes for every run;
/// with dense ids (`0..n`) a bitmap gives O(1) membership at two machine
/// words per 128 nodes, where a `HashSet<NodeId>` costs a heap bucket per
/// member and hashes on every lookup — the difference matters on the
/// delivery hot path at n = 1000+. Iteration is always in ascending id
/// order, so anything that walks the set is deterministic by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        NodeSet::default()
    }

    /// Creates an empty set with capacity for ids `0..n` (no growth on
    /// insert below `n`).
    pub fn with_capacity(n: usize) -> Self {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    /// Inserts a node; returns `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (word, bit) = (node.index() / 64, node.index() % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        self.len += newly as usize;
        newly
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (word, bit) = (node.index() / 64, node.index() % 64);
        let Some(w) = self.words.get_mut(word) else {
            return false;
        };
        let mask = 1u64 << bit;
        let was = *w & mask != 0;
        *w &= !mask;
        self.len -= was as usize;
        was
    }

    /// Whether the set contains `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        let (word, bit) = (node.index() / 64, node.index() % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every node.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates over the member node ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| NodeId::new((wi * 64 + b) as u32))
        })
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.as_u32(), 7);
        assert_eq!(NodeId::from(7u32), id);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn all_enumerates_dense_ids() {
        assert_eq!(NodeId::all(0).count(), 0);
        let ids: Vec<_> = NodeId::all(4).map(|i| i.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn node_set_insert_remove_contains() {
        let mut s = NodeSet::with_capacity(1024);
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(3)));
        assert!(!s.insert(NodeId::new(3)), "duplicate rejected");
        assert!(s.insert(NodeId::new(1000)), "large ids supported");
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId::new(3)));
        assert!(!s.contains(NodeId::new(4)));
        assert!(s.remove(NodeId::new(3)));
        assert!(!s.remove(NodeId::new(3)), "double remove is a no-op");
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId::new(1000)));
    }

    #[test]
    fn node_set_iterates_in_ascending_order() {
        let s: NodeSet = [
            NodeId::new(200),
            NodeId::new(5),
            NodeId::new(63),
            NodeId::new(64),
        ]
        .into_iter()
        .collect();
        let ids: Vec<u32> = s.iter().map(NodeId::as_u32).collect();
        assert_eq!(ids, vec![5, 63, 64, 200]);
    }

    #[test]
    fn node_set_grows_beyond_initial_capacity() {
        let mut s = NodeSet::new();
        assert!(!s.remove(NodeId::new(9)), "remove on empty set");
        assert!(s.insert(NodeId::new(130)));
        assert!(s.contains(NodeId::new(130)));
        assert_eq!(s.iter().count(), 1);
    }
}
