//! Identifier newtypes used throughout the simulator.

use core::fmt;

/// Identifies one replica (node) in the simulated system.
///
/// Node ids are dense: a run with `n` nodes uses ids `0..n`.
///
/// # Examples
///
/// ```
/// use bft_sim_core::ids::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node, usable for array indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw id value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over all node ids of a system of `n` nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use bft_sim_core::ids::NodeId;
    ///
    /// let ids: Vec<NodeId> = NodeId::all(3).collect();
    /// assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u32).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies a timer registered with the simulation controller.
///
/// Timer ids are unique within a run; cancelling an id that already fired is
/// a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Returns the raw id value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.as_u32(), 7);
        assert_eq!(NodeId::from(7u32), id);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn all_enumerates_dense_ids() {
        assert_eq!(NodeId::all(0).count(), 0);
        let ids: Vec<_> = NodeId::all(4).map(|i| i.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
