//! Toolkit for driving [`Protocol`] instances
//! from an *alternate executor* — used by the packet-level baseline
//! simulator (`bft-sim-baseline`), which replays the same consensus logic on
//! a deliberately finer-grained event model for the Fig. 2 comparison.
//!
//! The main engine keeps its action plumbing private; this module exposes a
//! [`Dispatcher`] that runs one protocol callback and returns the resulting
//! [`Effect`]s for the host executor to interpret.

use std::borrow::Cow;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::context::{Action, Context};
use crate::event::Timer;
use crate::ids::{NodeId, TimerId};
use crate::message::Message;
use crate::payload::PayloadCell;
use crate::protocol::Protocol;
use crate::smallstr::SmallStr;
use crate::time::{SimDuration, SimTime};
use crate::value::Value;

/// Reconstructs a [`Timer`] for delivery from an external executor that
/// stored the id and payload of an [`Effect::SetTimer`].
pub fn timer_from_parts(id: TimerId, payload: impl Into<PayloadCell>) -> Timer {
    Timer::new(id, payload)
}

/// A no-op protocol, useful as a placeholder while an external executor has
/// a node's real instance checked out for dispatch.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProtocol;

impl Protocol for NullProtocol {
    fn init(&mut self, _ctx: &mut Context<'_>) {}
    fn on_message(&mut self, _msg: &Message, _ctx: &mut Context<'_>) {}
    fn on_timer(&mut self, _timer: &Timer, _ctx: &mut Context<'_>) {}
    fn name(&self) -> &'static str {
        "null"
    }
}

/// One externally visible effect of a protocol callback.
///
/// Payloads ride in [`PayloadCell`]s, mirroring the engine's own action
/// plumbing: the sends of one broadcast share a single refcounted
/// allocation, and small payloads are stored inline.
#[derive(Debug)]
pub enum Effect {
    /// Send `payload` to `dst` over the network.
    Send {
        /// Destination.
        dst: NodeId,
        /// The payload.
        payload: PayloadCell,
    },
    /// Deliver `payload` back to the node itself after `delay`, without
    /// touching the network (not a transmitted message).
    SendSelf {
        /// Local delivery delay.
        delay: SimDuration,
        /// The payload.
        payload: PayloadCell,
    },
    /// Arm a timer.
    SetTimer {
        /// Timer id (for cancellation).
        id: TimerId,
        /// Delay from now.
        delay: SimDuration,
        /// Payload handed back on expiry.
        payload: PayloadCell,
    },
    /// Cancel a previously armed timer.
    CancelTimer(TimerId),
    /// The node decided its next consensus slot.
    Decide(Value),
    /// The node entered a view.
    EnterView(u64),
    /// A protocol-defined trace event.
    Custom {
        /// Event label.
        label: Cow<'static, str>,
        /// Event detail.
        detail: SmallStr,
    },
}

/// Runs protocol callbacks outside the main engine and collects their
/// effects. Broadcast actions are expanded into per-destination
/// [`Effect::Send`]s (plus a zero-delay [`Effect::SendSelf`] for
/// `broadcast_all`), so executors only deal in unicasts.
#[derive(Debug)]
pub struct Dispatcher {
    rng: SmallRng,
    next_timer_id: u64,
    n: usize,
    f: usize,
    lambda: SimDuration,
}

impl Dispatcher {
    /// Creates a dispatcher for a system of `n` nodes with fault budget `f`
    /// and timeout parameter `lambda`, seeded deterministically.
    pub fn new(n: usize, f: usize, lambda: SimDuration, seed: u64) -> Self {
        Dispatcher {
            rng: SmallRng::seed_from_u64(seed),
            next_timer_id: 0,
            n,
            f,
            lambda,
        }
    }

    /// Runs `body` with a [`Context`] for `node` at time `now` and returns
    /// the effects it produced.
    pub fn call<F>(&mut self, node: NodeId, now: SimTime, body: F) -> Vec<Effect>
    where
        F: FnOnce(&mut Context<'_>),
    {
        let mut actions = Vec::new();
        {
            let mut ctx = Context::new(
                node,
                now,
                self.n,
                self.f,
                self.lambda,
                &mut self.rng,
                &mut actions,
                &mut self.next_timer_id,
            );
            body(&mut ctx);
        }
        let mut effects = Vec::new();
        for action in actions {
            match action {
                Action::Send { dst, payload } => effects.push(Effect::Send { dst, payload }),
                Action::Broadcast {
                    payload,
                    include_self,
                } => {
                    for dst in NodeId::all(self.n) {
                        if dst == node {
                            continue;
                        }
                        effects.push(Effect::Send {
                            dst,
                            payload: PayloadCell::from(std::sync::Arc::clone(&payload)),
                        });
                    }
                    if include_self {
                        effects.push(Effect::SendSelf {
                            delay: SimDuration::ZERO,
                            payload: PayloadCell::from(payload),
                        });
                    }
                }
                Action::SendSelf { payload, delay } => {
                    effects.push(Effect::SendSelf { delay, payload })
                }
                Action::SetTimer { id, delay, payload } => {
                    effects.push(Effect::SetTimer { id, delay, payload })
                }
                Action::CancelTimer(id) => effects.push(Effect::CancelTimer(id)),
                Action::Decide(value) => effects.push(Effect::Decide(value)),
                Action::EnterView(view) => effects.push(Effect::EnterView(view)),
                Action::Custom { label, detail } => effects.push(Effect::Custom { label, detail }),
            }
        }
        effects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_expands_to_unicasts() {
        let mut d = Dispatcher::new(4, 1, SimDuration::from_millis(1000.0), 1);
        let effects = d.call(NodeId::new(1), SimTime::ZERO, |ctx| {
            ctx.broadcast(42u8);
            ctx.decide(Value::ONE);
        });
        let sends = effects
            .iter()
            .filter(|e| matches!(e, Effect::Send { .. }))
            .count();
        assert_eq!(sends, 3);
        assert!(matches!(effects.last(), Some(Effect::Decide(Value::ONE))));
    }

    #[test]
    fn timer_ids_are_unique_across_calls() {
        let mut d = Dispatcher::new(2, 0, SimDuration::from_millis(10.0), 1);
        let mut ids = Vec::new();
        for _ in 0..3 {
            let effects = d.call(NodeId::new(0), SimTime::ZERO, |ctx| {
                ctx.set_timer(SimDuration::from_millis(1.0), ());
            });
            for e in effects {
                if let Effect::SetTimer { id, .. } = e {
                    ids.push(id);
                }
            }
        }
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }
}
