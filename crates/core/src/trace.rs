//! Execution traces.
//!
//! The controller records structured events (decisions, view changes,
//! corruptions, optionally every message) into a [`Trace`]. Traces power the
//! validator module, the per-node view visualisation of Fig. 9, and data
//! logging in general.

use std::borrow::Cow;

use crate::ids::NodeId;
use crate::json::Json;
use crate::smallstr::SmallStr;
use crate::time::SimTime;
use crate::value::Value;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// The node the event concerns (the destination for deliveries).
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// The kind of a recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A node decided `value` for consensus slot `slot`.
    Decided {
        /// Zero-based consensus slot (height).
        slot: u64,
        /// The decided value.
        value: Value,
    },
    /// A node entered a view/round (Fig. 9's per-node view timeline).
    View {
        /// The new view number.
        view: u64,
    },
    /// A node sent a message (recorded only with message recording on).
    Sent {
        /// Destination node.
        dst: NodeId,
        /// Payload type name. Borrowed (`&'static str`) when recorded live —
        /// the hot path allocates nothing — and owned when parsed from JSON.
        payload_type: Cow<'static, str>,
    },
    /// A node received a message (recorded only with message recording on).
    Delivered {
        /// Claimed source node.
        src: NodeId,
        /// Payload type name. Borrowed (`&'static str`) when recorded live —
        /// the hot path allocates nothing — and owned when parsed from JSON.
        payload_type: Cow<'static, str>,
    },
    /// The adversary corrupted this node.
    Corrupted,
    /// The node crashed (fail-stop).
    Crashed,
    /// Protocol-defined event, e.g. `commit` / `pre-prepare` markers used for
    /// cross-validation against ground-truth traces.
    Custom {
        /// Event label, e.g. `"pre-prepare"`. Borrowed (`&'static str`) when
        /// recorded live — the hot path allocates nothing — and owned when
        /// parsed from JSON.
        label: Cow<'static, str>,
        /// Free-form detail; short details (`"view=3"` and friends) are
        /// stored inline without allocating.
        detail: SmallStr,
    },
}

/// A time-ordered sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn record(&mut self, time: SimTime, node: NodeId, kind: TraceKind) {
        self.events.push(TraceEvent { time, node, kind });
    }

    /// All recorded events, in recording (= time) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over decision events as `(time, node, slot, value)`.
    pub fn decisions(&self) -> impl Iterator<Item = (SimTime, NodeId, u64, Value)> + '_ {
        self.events.iter().filter_map(|e| match e.kind {
            TraceKind::Decided { slot, value } => Some((e.time, e.node, slot, value)),
            _ => None,
        })
    }

    /// Per-node view timeline: for node `node`, the list of `(time, view)`
    /// transitions — the data series behind Fig. 9.
    pub fn view_timeline(&self, node: NodeId) -> Vec<(SimTime, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::View { view } if e.node == node => Some((e.time, view)),
                _ => None,
            })
            .collect()
    }

    /// Events with a given custom label, as `(time, node, detail)`.
    pub fn custom(&self, label: &str) -> Vec<(SimTime, NodeId, &str)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Custom { label: l, detail } if l == label => {
                    Some((e.time, e.node, detail.as_str()))
                }
                _ => None,
            })
            .collect()
    }

    /// Converts the trace to JSON (the format of the committed golden traces:
    /// externally-tagged event kinds, times/nodes as bare numbers).
    pub fn to_json(&self) -> Json {
        let events = self.events.iter().map(TraceEvent::to_json).collect();
        Json::obj([("events", Json::Arr(events))])
    }

    /// Parses a trace from the JSON produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch.
    pub fn from_json(json: &Json) -> Result<Trace, String> {
        let events = json
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("trace: missing \"events\" array")?;
        let events = events
            .iter()
            .map(TraceEvent::from_json)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Trace { events })
    }
}

impl TraceEvent {
    /// Converts the event to JSON (the per-event format of
    /// [`Trace::to_json`]; also used by observability ring-buffer dumps).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("time", Json::from(self.time.as_micros())),
            ("node", Json::from(self.node.as_u32())),
            ("kind", self.kind.to_json()),
        ])
    }

    /// Parses one event from the JSON produced by [`TraceEvent::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch. Node ids
    /// outside the `u32` range are rejected rather than silently truncated.
    pub fn from_json(json: &Json) -> Result<TraceEvent, String> {
        let time = json
            .get("time")
            .and_then(Json::as_u64)
            .ok_or("trace event: bad \"time\"")?;
        let node = json
            .get("node")
            .and_then(Json::as_u64)
            .ok_or("trace event: bad \"node\"")?;
        Ok(TraceEvent {
            time: SimTime::from_micros(time),
            node: NodeId::new(node_id_in_range(node, "node")?),
            kind: TraceKind::from_json(json.get("kind").ok_or("trace event: missing \"kind\"")?)?,
        })
    }
}

/// Node ids are `u32`; a larger value in the JSON is a corrupt or foreign
/// file, not something to truncate with `as`.
fn node_id_in_range(raw: u64, what: &str) -> Result<u32, String> {
    u32::try_from(raw).map_err(|_| format!("trace event: \"{what}\" {raw} exceeds the u32 range"))
}

impl TraceKind {
    fn to_json(&self) -> Json {
        match self {
            TraceKind::Decided { slot, value } => Json::obj([(
                "Decided",
                Json::obj([
                    ("slot", Json::from(*slot)),
                    ("value", Json::from(value.as_u64())),
                ]),
            )]),
            TraceKind::View { view } => {
                Json::obj([("View", Json::obj([("view", Json::from(*view))]))])
            }
            TraceKind::Sent { dst, payload_type } => Json::obj([(
                "Sent",
                Json::obj([
                    ("dst", Json::from(dst.as_u32())),
                    ("payload_type", Json::from(payload_type.as_ref())),
                ]),
            )]),
            TraceKind::Delivered { src, payload_type } => Json::obj([(
                "Delivered",
                Json::obj([
                    ("src", Json::from(src.as_u32())),
                    ("payload_type", Json::from(payload_type.as_ref())),
                ]),
            )]),
            TraceKind::Corrupted => Json::from("Corrupted"),
            TraceKind::Crashed => Json::from("Crashed"),
            TraceKind::Custom { label, detail } => Json::obj([(
                "Custom",
                Json::obj([
                    ("label", Json::from(label.as_ref())),
                    ("detail", Json::from(detail.as_str())),
                ]),
            )]),
        }
    }

    fn from_json(json: &Json) -> Result<TraceKind, String> {
        if let Some(unit) = json.as_str() {
            return match unit {
                "Corrupted" => Ok(TraceKind::Corrupted),
                "Crashed" => Ok(TraceKind::Crashed),
                other => Err(format!("trace kind: unknown variant \"{other}\"")),
            };
        }
        let Json::Obj(pairs) = json else {
            return Err("trace kind: expected string or single-key object".into());
        };
        let [(tag, body)] = pairs.as_slice() else {
            return Err("trace kind: expected exactly one variant key".into());
        };
        let field = |name: &str| -> Result<u64, String> {
            body.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace kind {tag}: bad \"{name}\""))
        };
        let text = |name: &str| -> Result<String, String> {
            body.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("trace kind {tag}: bad \"{name}\""))
        };
        match tag.as_str() {
            "Decided" => Ok(TraceKind::Decided {
                slot: field("slot")?,
                value: Value::new(field("value")?),
            }),
            "View" => Ok(TraceKind::View {
                view: field("view")?,
            }),
            "Sent" => Ok(TraceKind::Sent {
                dst: NodeId::new(node_id_in_range(field("dst")?, "dst")?),
                payload_type: Cow::Owned(text("payload_type")?),
            }),
            "Delivered" => Ok(TraceKind::Delivered {
                src: NodeId::new(node_id_in_range(field("src")?, "src")?),
                payload_type: Cow::Owned(text("payload_type")?),
            }),
            "Custom" => Ok(TraceKind::Custom {
                label: Cow::Owned(text("label")?),
                detail: SmallStr::from(text("detail")?),
            }),
            other => Err(format!("trace kind: unknown variant \"{other}\"")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_millis(1),
            NodeId::new(0),
            TraceKind::View { view: 1 },
        );
        t.record(
            SimTime::from_millis(2),
            NodeId::new(1),
            TraceKind::Decided {
                slot: 0,
                value: Value::ONE,
            },
        );
        t.record(
            SimTime::from_millis(3),
            NodeId::new(0),
            TraceKind::View { view: 2 },
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.decisions().count(), 1);
        assert_eq!(
            t.view_timeline(NodeId::new(0)),
            vec![(SimTime::from_millis(1), 1), (SimTime::from_millis(3), 2)]
        );
        assert!(t.view_timeline(NodeId::new(2)).is_empty());
    }

    #[test]
    fn json_round_trip_covers_every_kind() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_millis(1),
            NodeId::new(0),
            TraceKind::Decided {
                slot: 2,
                value: Value::new(9),
            },
        );
        t.record(
            SimTime::from_millis(2),
            NodeId::new(1),
            TraceKind::View { view: 3 },
        );
        t.record(
            SimTime::from_millis(3),
            NodeId::new(0),
            TraceKind::Sent {
                dst: NodeId::new(1),
                payload_type: "demo::Vote".into(),
            },
        );
        t.record(
            SimTime::from_millis(4),
            NodeId::new(1),
            TraceKind::Delivered {
                src: NodeId::new(0),
                payload_type: "demo::Vote".into(),
            },
        );
        t.record(
            SimTime::from_millis(5),
            NodeId::new(2),
            TraceKind::Corrupted,
        );
        t.record(SimTime::from_millis(6), NodeId::new(3), TraceKind::Crashed);
        t.record(
            SimTime::from_millis(7),
            NodeId::new(0),
            TraceKind::Custom {
                label: "pre-prepare".into(),
                detail: "view=0".into(),
            },
        );
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, t);
        // And via text, as the golden files store it.
        let reparsed = Trace::from_json(&Json::parse(&json.dump_pretty()).unwrap()).unwrap();
        assert_eq!(reparsed, t);
    }

    #[test]
    fn json_round_trip_survives_adversarial_content() {
        // Every variant with hostile content: extreme numbers, control
        // characters, JSON metacharacters, unicode inside and outside the
        // BMP, and empty strings. Round-trip must be bit-exact, both
        // structurally and through the textual form.
        let nasty_strings = [
            String::new(),
            "\"quoted\" and \\back\\slashed".to_string(),
            "newline\nreturn\rtab\tbackspace\u{8}formfeed\u{c}".to_string(),
            (0u8..0x20).map(|b| b as char).collect::<String>(),
            "\u{7f}\u{80}\u{7ff}\u{800}\u{ffff}".to_string(),
            "émoji 😀 and \u{10FFFF}".to_string(),
            "ends in backslash\\".to_string(),
        ];
        let mut t = Trace::new();
        t.record(
            SimTime::from_micros(u64::MAX),
            NodeId::new(u32::MAX),
            TraceKind::Decided {
                slot: u64::MAX,
                value: Value::new(u64::MAX),
            },
        );
        t.record(
            SimTime::ZERO,
            NodeId::new(0),
            TraceKind::View { view: u64::MAX },
        );
        for (i, s) in nasty_strings.iter().enumerate() {
            t.record(
                SimTime::from_micros(i as u64),
                NodeId::new(i as u32),
                TraceKind::Sent {
                    dst: NodeId::new(u32::MAX - i as u32),
                    payload_type: Cow::Owned(s.clone()),
                },
            );
            t.record(
                SimTime::from_micros(i as u64),
                NodeId::new(i as u32),
                TraceKind::Delivered {
                    src: NodeId::new(i as u32),
                    payload_type: Cow::Owned(s.clone()),
                },
            );
            t.record(
                SimTime::from_micros(i as u64),
                NodeId::new(i as u32),
                TraceKind::Custom {
                    label: s.clone().into(),
                    detail: nasty_strings[(i + 1) % nasty_strings.len()].clone().into(),
                },
            );
        }
        t.record(
            SimTime::from_millis(1),
            NodeId::new(1),
            TraceKind::Corrupted,
        );
        t.record(SimTime::from_millis(2), NodeId::new(2), TraceKind::Crashed);

        let json = t.to_json();
        assert_eq!(Trace::from_json(&json).unwrap(), t);
        let text = json.dump_pretty();
        let reparsed = Trace::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed, t);
        // Serialising again is byte-stable.
        assert_eq!(reparsed.to_json().dump_pretty(), text);
    }

    #[test]
    fn from_json_rejects_out_of_range_node_ids() {
        let too_big = u64::from(u32::MAX) + 1;
        let event = Json::obj([
            ("time", Json::from(0u64)),
            ("node", Json::from(too_big)),
            ("kind", Json::from("Crashed")),
        ]);
        let err = TraceEvent::from_json(&event).unwrap_err();
        assert!(err.contains("exceeds the u32 range"), "{err}");

        let sent = Json::obj([
            ("time", Json::from(0u64)),
            ("node", Json::from(0u64)),
            (
                "kind",
                Json::obj([(
                    "Sent",
                    Json::obj([
                        ("dst", Json::from(too_big)),
                        ("payload_type", Json::from("x")),
                    ]),
                )]),
            ),
        ]);
        let err = TraceEvent::from_json(&sent).unwrap_err();
        assert!(err.contains("\"dst\""), "{err}");
    }

    #[test]
    fn accessors_untangle_interleaved_multi_node_traces() {
        // Three nodes advancing views and deciding out of lock-step; the
        // accessors must filter by node and preserve per-node order.
        let mut t = Trace::new();
        let ev = |ms: u64, node: u32, kind: TraceKind| (SimTime::from_millis(ms), node, kind);
        let script = vec![
            ev(1, 0, TraceKind::View { view: 1 }),
            ev(1, 2, TraceKind::View { view: 1 }),
            ev(2, 1, TraceKind::View { view: 1 }),
            ev(
                3,
                2,
                TraceKind::Decided {
                    slot: 0,
                    value: Value::new(5),
                },
            ),
            ev(4, 0, TraceKind::View { view: 2 }),
            ev(
                4,
                0,
                TraceKind::Decided {
                    slot: 0,
                    value: Value::new(5),
                },
            ),
            ev(5, 2, TraceKind::View { view: 3 }),
            ev(
                6,
                1,
                TraceKind::Decided {
                    slot: 0,
                    value: Value::new(5),
                },
            ),
            ev(
                7,
                0,
                TraceKind::Decided {
                    slot: 1,
                    value: Value::new(6),
                },
            ),
        ];
        for (time, node, kind) in script {
            t.record(time, NodeId::new(node), kind);
        }

        assert_eq!(
            t.view_timeline(NodeId::new(0)),
            vec![(SimTime::from_millis(1), 1), (SimTime::from_millis(4), 2)]
        );
        assert_eq!(
            t.view_timeline(NodeId::new(2)),
            vec![(SimTime::from_millis(1), 1), (SimTime::from_millis(5), 3)]
        );
        assert_eq!(
            t.view_timeline(NodeId::new(1)),
            vec![(SimTime::from_millis(2), 1)]
        );

        let decisions: Vec<_> = t.decisions().collect();
        assert_eq!(
            decisions,
            vec![
                (SimTime::from_millis(3), NodeId::new(2), 0, Value::new(5)),
                (SimTime::from_millis(4), NodeId::new(0), 0, Value::new(5)),
                (SimTime::from_millis(6), NodeId::new(1), 0, Value::new(5)),
                (SimTime::from_millis(7), NodeId::new(0), 1, Value::new(6)),
            ]
        );
        // Per-node decision filtering composes on top of the iterator.
        let node0: Vec<_> = t
            .decisions()
            .filter(|(_, n, _, _)| *n == NodeId::new(0))
            .map(|(_, _, slot, _)| slot)
            .collect();
        assert_eq!(node0, vec![0, 1]);
    }

    #[test]
    fn custom_events_by_label() {
        let mut t = Trace::new();
        t.record(
            SimTime::ZERO,
            NodeId::new(0),
            TraceKind::Custom {
                label: "pre-prepare".into(),
                detail: "view=0".into(),
            },
        );
        assert_eq!(t.custom("pre-prepare").len(), 1);
        assert!(t.custom("commit").is_empty());
    }
}
