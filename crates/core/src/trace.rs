//! Execution traces.
//!
//! The controller records structured events (decisions, view changes,
//! corruptions, optionally every message) into a [`Trace`]. Traces power the
//! validator module, the per-node view visualisation of Fig. 9, and data
//! logging in general.

use std::borrow::Cow;

use crate::ids::NodeId;
use crate::json::Json;
use crate::time::SimTime;
use crate::value::Value;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// The node the event concerns (the destination for deliveries).
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// The kind of a recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A node decided `value` for consensus slot `slot`.
    Decided {
        /// Zero-based consensus slot (height).
        slot: u64,
        /// The decided value.
        value: Value,
    },
    /// A node entered a view/round (Fig. 9's per-node view timeline).
    View {
        /// The new view number.
        view: u64,
    },
    /// A node sent a message (recorded only with message recording on).
    Sent {
        /// Destination node.
        dst: NodeId,
        /// Payload type name. Borrowed (`&'static str`) when recorded live —
        /// the hot path allocates nothing — and owned when parsed from JSON.
        payload_type: Cow<'static, str>,
    },
    /// A node received a message (recorded only with message recording on).
    Delivered {
        /// Claimed source node.
        src: NodeId,
        /// Payload type name. Borrowed (`&'static str`) when recorded live —
        /// the hot path allocates nothing — and owned when parsed from JSON.
        payload_type: Cow<'static, str>,
    },
    /// The adversary corrupted this node.
    Corrupted,
    /// The node crashed (fail-stop).
    Crashed,
    /// Protocol-defined event, e.g. `commit` / `pre-prepare` markers used for
    /// cross-validation against ground-truth traces.
    Custom {
        /// Event label, e.g. `"pre-prepare"`.
        label: String,
        /// Free-form detail.
        detail: String,
    },
}

/// A time-ordered sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn record(&mut self, time: SimTime, node: NodeId, kind: TraceKind) {
        self.events.push(TraceEvent { time, node, kind });
    }

    /// All recorded events, in recording (= time) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over decision events as `(time, node, slot, value)`.
    pub fn decisions(&self) -> impl Iterator<Item = (SimTime, NodeId, u64, Value)> + '_ {
        self.events.iter().filter_map(|e| match e.kind {
            TraceKind::Decided { slot, value } => Some((e.time, e.node, slot, value)),
            _ => None,
        })
    }

    /// Per-node view timeline: for node `node`, the list of `(time, view)`
    /// transitions — the data series behind Fig. 9.
    pub fn view_timeline(&self, node: NodeId) -> Vec<(SimTime, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::View { view } if e.node == node => Some((e.time, view)),
                _ => None,
            })
            .collect()
    }

    /// Events with a given custom label, as `(time, node, detail)`.
    pub fn custom(&self, label: &str) -> Vec<(SimTime, NodeId, &str)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Custom { label: l, detail } if l == label => {
                    Some((e.time, e.node, detail.as_str()))
                }
                _ => None,
            })
            .collect()
    }

    /// Converts the trace to JSON (the format of the committed golden traces:
    /// externally-tagged event kinds, times/nodes as bare numbers).
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                Json::obj([
                    ("time", Json::from(e.time.as_micros())),
                    ("node", Json::from(e.node.as_u32())),
                    ("kind", e.kind.to_json()),
                ])
            })
            .collect();
        Json::obj([("events", Json::Arr(events))])
    }

    /// Parses a trace from the JSON produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch.
    pub fn from_json(json: &Json) -> Result<Trace, String> {
        let events = json
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("trace: missing \"events\" array")?;
        let events = events
            .iter()
            .map(|e| {
                let time = e
                    .get("time")
                    .and_then(Json::as_u64)
                    .ok_or("trace event: bad \"time\"")?;
                let node = e
                    .get("node")
                    .and_then(Json::as_u64)
                    .ok_or("trace event: bad \"node\"")?;
                Ok(TraceEvent {
                    time: SimTime::ZERO + crate::time::SimDuration::from_micros(time),
                    node: NodeId::new(node as u32),
                    kind: TraceKind::from_json(
                        e.get("kind").ok_or("trace event: missing \"kind\"")?,
                    )?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Trace { events })
    }
}

impl TraceKind {
    fn to_json(&self) -> Json {
        match self {
            TraceKind::Decided { slot, value } => Json::obj([(
                "Decided",
                Json::obj([
                    ("slot", Json::from(*slot)),
                    ("value", Json::from(value.as_u64())),
                ]),
            )]),
            TraceKind::View { view } => {
                Json::obj([("View", Json::obj([("view", Json::from(*view))]))])
            }
            TraceKind::Sent { dst, payload_type } => Json::obj([(
                "Sent",
                Json::obj([
                    ("dst", Json::from(dst.as_u32())),
                    ("payload_type", Json::from(payload_type.as_ref())),
                ]),
            )]),
            TraceKind::Delivered { src, payload_type } => Json::obj([(
                "Delivered",
                Json::obj([
                    ("src", Json::from(src.as_u32())),
                    ("payload_type", Json::from(payload_type.as_ref())),
                ]),
            )]),
            TraceKind::Corrupted => Json::from("Corrupted"),
            TraceKind::Crashed => Json::from("Crashed"),
            TraceKind::Custom { label, detail } => Json::obj([(
                "Custom",
                Json::obj([
                    ("label", Json::from(label.as_str())),
                    ("detail", Json::from(detail.as_str())),
                ]),
            )]),
        }
    }

    fn from_json(json: &Json) -> Result<TraceKind, String> {
        if let Some(unit) = json.as_str() {
            return match unit {
                "Corrupted" => Ok(TraceKind::Corrupted),
                "Crashed" => Ok(TraceKind::Crashed),
                other => Err(format!("trace kind: unknown variant \"{other}\"")),
            };
        }
        let Json::Obj(pairs) = json else {
            return Err("trace kind: expected string or single-key object".into());
        };
        let [(tag, body)] = pairs.as_slice() else {
            return Err("trace kind: expected exactly one variant key".into());
        };
        let field = |name: &str| -> Result<u64, String> {
            body.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace kind {tag}: bad \"{name}\""))
        };
        let text = |name: &str| -> Result<String, String> {
            body.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("trace kind {tag}: bad \"{name}\""))
        };
        match tag.as_str() {
            "Decided" => Ok(TraceKind::Decided {
                slot: field("slot")?,
                value: Value::new(field("value")?),
            }),
            "View" => Ok(TraceKind::View {
                view: field("view")?,
            }),
            "Sent" => Ok(TraceKind::Sent {
                dst: NodeId::new(field("dst")? as u32),
                payload_type: Cow::Owned(text("payload_type")?),
            }),
            "Delivered" => Ok(TraceKind::Delivered {
                src: NodeId::new(field("src")? as u32),
                payload_type: Cow::Owned(text("payload_type")?),
            }),
            "Custom" => Ok(TraceKind::Custom {
                label: text("label")?,
                detail: text("detail")?,
            }),
            other => Err(format!("trace kind: unknown variant \"{other}\"")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_millis(1),
            NodeId::new(0),
            TraceKind::View { view: 1 },
        );
        t.record(
            SimTime::from_millis(2),
            NodeId::new(1),
            TraceKind::Decided {
                slot: 0,
                value: Value::ONE,
            },
        );
        t.record(
            SimTime::from_millis(3),
            NodeId::new(0),
            TraceKind::View { view: 2 },
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.decisions().count(), 1);
        assert_eq!(
            t.view_timeline(NodeId::new(0)),
            vec![(SimTime::from_millis(1), 1), (SimTime::from_millis(3), 2)]
        );
        assert!(t.view_timeline(NodeId::new(2)).is_empty());
    }

    #[test]
    fn json_round_trip_covers_every_kind() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_millis(1),
            NodeId::new(0),
            TraceKind::Decided {
                slot: 2,
                value: Value::new(9),
            },
        );
        t.record(
            SimTime::from_millis(2),
            NodeId::new(1),
            TraceKind::View { view: 3 },
        );
        t.record(
            SimTime::from_millis(3),
            NodeId::new(0),
            TraceKind::Sent {
                dst: NodeId::new(1),
                payload_type: "demo::Vote".into(),
            },
        );
        t.record(
            SimTime::from_millis(4),
            NodeId::new(1),
            TraceKind::Delivered {
                src: NodeId::new(0),
                payload_type: "demo::Vote".into(),
            },
        );
        t.record(
            SimTime::from_millis(5),
            NodeId::new(2),
            TraceKind::Corrupted,
        );
        t.record(SimTime::from_millis(6), NodeId::new(3), TraceKind::Crashed);
        t.record(
            SimTime::from_millis(7),
            NodeId::new(0),
            TraceKind::Custom {
                label: "pre-prepare".into(),
                detail: "view=0".into(),
            },
        );
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, t);
        // And via text, as the golden files store it.
        let reparsed = Trace::from_json(&Json::parse(&json.dump_pretty()).unwrap()).unwrap();
        assert_eq!(reparsed, t);
    }

    #[test]
    fn custom_events_by_label() {
        let mut t = Trace::new();
        t.record(
            SimTime::ZERO,
            NodeId::new(0),
            TraceKind::Custom {
                label: "pre-prepare".into(),
                detail: "view=0".into(),
            },
        );
        assert_eq!(t.custom("pre-prepare").len(), 1);
        assert!(t.custom("commit").is_empty());
    }
}
