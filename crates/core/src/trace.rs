//! Execution traces.
//!
//! The controller records structured events (decisions, view changes,
//! corruptions, optionally every message) into a [`Trace`]. Traces power the
//! validator module, the per-node view visualisation of Fig. 9, and data
//! logging in general.

use serde::{Deserialize, Serialize};

use crate::ids::NodeId;
use crate::time::SimTime;
use crate::value::Value;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// The node the event concerns (the destination for deliveries).
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// The kind of a recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A node decided `value` for consensus slot `slot`.
    Decided {
        /// Zero-based consensus slot (height).
        slot: u64,
        /// The decided value.
        value: Value,
    },
    /// A node entered a view/round (Fig. 9's per-node view timeline).
    View {
        /// The new view number.
        view: u64,
    },
    /// A node sent a message (recorded only with message recording on).
    Sent {
        /// Destination node.
        dst: NodeId,
        /// Payload type name.
        payload_type: String,
    },
    /// A node received a message (recorded only with message recording on).
    Delivered {
        /// Claimed source node.
        src: NodeId,
        /// Payload type name.
        payload_type: String,
    },
    /// The adversary corrupted this node.
    Corrupted,
    /// The node crashed (fail-stop).
    Crashed,
    /// Protocol-defined event, e.g. `commit` / `pre-prepare` markers used for
    /// cross-validation against ground-truth traces.
    Custom {
        /// Event label, e.g. `"pre-prepare"`.
        label: String,
        /// Free-form detail.
        detail: String,
    },
}

/// A time-ordered sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn record(&mut self, time: SimTime, node: NodeId, kind: TraceKind) {
        self.events.push(TraceEvent { time, node, kind });
    }

    /// All recorded events, in recording (= time) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over decision events as `(time, node, slot, value)`.
    pub fn decisions(&self) -> impl Iterator<Item = (SimTime, NodeId, u64, Value)> + '_ {
        self.events.iter().filter_map(|e| match e.kind {
            TraceKind::Decided { slot, value } => Some((e.time, e.node, slot, value)),
            _ => None,
        })
    }

    /// Per-node view timeline: for node `node`, the list of `(time, view)`
    /// transitions — the data series behind Fig. 9.
    pub fn view_timeline(&self, node: NodeId) -> Vec<(SimTime, u64)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::View { view } if e.node == node => Some((e.time, view)),
                _ => None,
            })
            .collect()
    }

    /// Events with a given custom label, as `(time, node, detail)`.
    pub fn custom(&self, label: &str) -> Vec<(SimTime, NodeId, &str)> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Custom { label: l, detail } if l == label => {
                    Some((e.time, e.node, detail.as_str()))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_millis(1),
            NodeId::new(0),
            TraceKind::View { view: 1 },
        );
        t.record(
            SimTime::from_millis(2),
            NodeId::new(1),
            TraceKind::Decided {
                slot: 0,
                value: Value::ONE,
            },
        );
        t.record(
            SimTime::from_millis(3),
            NodeId::new(0),
            TraceKind::View { view: 2 },
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.decisions().count(), 1);
        assert_eq!(
            t.view_timeline(NodeId::new(0)),
            vec![
                (SimTime::from_millis(1), 1),
                (SimTime::from_millis(3), 2)
            ]
        );
        assert!(t.view_timeline(NodeId::new(2)).is_empty());
    }

    #[test]
    fn custom_events_by_label() {
        let mut t = Trace::new();
        t.record(
            SimTime::ZERO,
            NodeId::new(0),
            TraceKind::Custom {
                label: "pre-prepare".into(),
                detail: "view=0".into(),
            },
        );
        assert_eq!(t.custom("pre-prepare").len(), 1);
        assert!(t.custom("commit").is_empty());
    }
}
