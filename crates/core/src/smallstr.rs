//! A small-string type for hot-path trace details.
//!
//! Protocol implementations report short annotations like `"view=3"` on
//! every commit, proposal and timeout. Storing those as `String` put one
//! heap allocation on the critical path of every such event; [`SmallStr`]
//! keeps strings of up to [`SmallStr::INLINE_CAP`] bytes inline and only
//! spills longer ones to the heap.
//!
//! The representation is *canonical*: a value is stored inline if and only
//! if it fits, so two `SmallStr`s with equal text always compare equal and
//! hash identically regardless of how they were built.

use core::fmt;
use core::hash::{Hash, Hasher};

#[derive(Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [u8; SmallStr::INLINE_CAP],
    },
    Heap(String),
}

/// An immutable-ish string that stores short text inline (no allocation)
/// and long text on the heap. Append via [`core::fmt::Write`].
#[derive(Clone)]
pub struct SmallStr {
    repr: Repr,
}

impl SmallStr {
    /// Maximum byte length stored without a heap allocation.
    pub const INLINE_CAP: usize = 30;

    /// Creates an empty string (inline, no allocation).
    pub const fn new() -> Self {
        SmallStr {
            repr: Repr::Inline {
                len: 0,
                buf: [0; SmallStr::INLINE_CAP],
            },
        }
    }

    /// The text as a `&str`.
    pub fn as_str(&self) -> &str {
        match &self.repr {
            Repr::Inline { len, buf } => core::str::from_utf8(&buf[..*len as usize])
                .expect("SmallStr buffers only ever hold whole &str copies"),
            Repr::Heap(s) => s.as_str(),
        }
    }

    /// Byte length of the text.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(s) => s.len(),
        }
    }

    /// Whether the text is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the text is stored inline (i.e. cost no allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// Formats `args` directly into a fresh `SmallStr` — the zero-alloc
    /// path behind [`Context::report_fmt`](crate::context::Context::report_fmt).
    pub fn format(args: fmt::Arguments<'_>) -> Self {
        use fmt::Write as _;
        let mut s = SmallStr::new();
        s.write_fmt(args).expect("SmallStr never errors on write");
        s
    }
}

impl Default for SmallStr {
    fn default() -> Self {
        SmallStr::new()
    }
}

impl fmt::Write for SmallStr {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let cur = *len as usize;
                if cur + s.len() <= SmallStr::INLINE_CAP {
                    buf[cur..cur + s.len()].copy_from_slice(s.as_bytes());
                    *len = (cur + s.len()) as u8;
                } else {
                    // Spill: the final length exceeds the inline capacity,
                    // which keeps the representation canonical.
                    let mut heap = String::with_capacity(cur + s.len());
                    heap.push_str(
                        core::str::from_utf8(&buf[..cur])
                            .expect("SmallStr buffers only ever hold whole &str copies"),
                    );
                    heap.push_str(s);
                    self.repr = Repr::Heap(heap);
                }
            }
            Repr::Heap(heap) => heap.push_str(s),
        }
        Ok(())
    }
}

impl From<&str> for SmallStr {
    fn from(s: &str) -> Self {
        use fmt::Write as _;
        let mut out = SmallStr::new();
        if s.len() > SmallStr::INLINE_CAP {
            out.repr = Repr::Heap(s.to_string());
        } else {
            out.write_str(s).expect("inline copy cannot fail");
        }
        out
    }
}

impl From<String> for SmallStr {
    fn from(s: String) -> Self {
        if s.len() > SmallStr::INLINE_CAP {
            SmallStr {
                repr: Repr::Heap(s),
            }
        } else {
            SmallStr::from(s.as_str())
        }
    }
}

impl From<SmallStr> for String {
    fn from(s: SmallStr) -> Self {
        match s.repr {
            Repr::Heap(h) => h,
            Repr::Inline { .. } => s.as_str().to_string(),
        }
    }
}

impl AsRef<str> for SmallStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl core::ops::Deref for SmallStr {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

// Equality/hashing go through the text so the derived forms can never
// diverge between representations (belt and braces on top of canonicality).
impl PartialEq for SmallStr {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for SmallStr {}

impl PartialEq<str> for SmallStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SmallStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl Hash for SmallStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for SmallStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_strings_stay_inline() {
        let s = SmallStr::from("view=3");
        assert!(s.is_inline());
        assert_eq!(s.as_str(), "view=3");
        assert_eq!(s.len(), 6);
        let exactly = "x".repeat(SmallStr::INLINE_CAP);
        assert!(SmallStr::from(exactly.as_str()).is_inline());
    }

    #[test]
    fn long_strings_spill_to_heap() {
        let long = "y".repeat(SmallStr::INLINE_CAP + 1);
        let s = SmallStr::from(long.as_str());
        assert!(!s.is_inline());
        assert_eq!(s.as_str(), long);
        assert_eq!(String::from(s), long);
    }

    #[test]
    fn representation_is_canonical_across_construction_paths() {
        let a = SmallStr::from("short");
        let b = SmallStr::from("short".to_string());
        let c = SmallStr::format(format_args!("sho{}", "rt"));
        assert!(a.is_inline() && b.is_inline() && c.is_inline());
        assert_eq!(a, b);
        assert_eq!(a, c);
        use std::collections::hash_map::DefaultHasher;
        let h = |s: &SmallStr| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn format_appends_across_the_spill_boundary() {
        use fmt::Write as _;
        let mut s = SmallStr::new();
        for i in 0..10 {
            write!(s, "{i:0>4}").unwrap();
        }
        assert_eq!(s.as_str(), "0000000100020003000400050006000700080009");
        assert!(!s.is_inline());
        // Equal to a directly-built heap string.
        assert_eq!(s, SmallStr::from(s.as_str().to_string()));
    }

    #[test]
    fn unicode_survives_both_representations() {
        let short = "émoji 😀";
        assert_eq!(SmallStr::from(short).as_str(), short);
        let long = "émoji 😀 repeated: 😀😀😀😀😀😀😀";
        assert!(long.len() > SmallStr::INLINE_CAP);
        assert_eq!(SmallStr::from(long).as_str(), long);
    }

    #[test]
    fn compares_with_plain_strs() {
        let s = SmallStr::from("commit");
        assert_eq!(s, "commit");
        assert_eq!(s, *"commit");
        assert_ne!(s, "prepare");
    }
}
