//! Simulation time.
//!
//! The simulator never reads the wall clock: all time is *virtual* and driven
//! by the event queue. Time is represented with integer microseconds so that
//! event ordering is exact and runs are bit-for-bit reproducible, which a
//! floating-point clock cannot guarantee.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since the start of the
/// run.
///
/// # Examples
///
/// ```
/// use bft_sim_core::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250.0);
/// assert_eq!(t.as_millis_f64(), 250.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
///
/// # Examples
///
/// ```
/// use bft_sim_core::time::SimDuration;
///
/// let d = SimDuration::from_millis(1.5);
/// assert_eq!(d.as_micros(), 1_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from integral milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Returns the instant as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond and clamping negatives to zero.
    pub fn from_millis(millis: f64) -> Self {
        if !millis.is_finite() || millis <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((millis * 1_000.0).round() as u64)
    }

    /// Creates a duration from fractional seconds, clamping negatives to zero.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_millis(secs * 1_000.0)
    }

    /// Returns the duration as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Returns `self * 2^exp`, saturating on overflow. Used by exponential
    /// back-off pacemakers.
    pub fn saturating_shl(self, exp: u32) -> SimDuration {
        if self.0 == 0 {
            return SimDuration(0);
        }
        if exp > self.0.leading_zeros() {
            return SimDuration(u64::MAX);
        }
        SimDuration(self.0 << exp)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(2.5);
        assert_eq!((t + d).as_micros(), 12_500);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn negative_and_nan_millis_clamp_to_zero() {
        assert_eq!(SimDuration::from_millis(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_millis(1.0));
    }

    #[test]
    fn shl_saturates() {
        let d = SimDuration::from_micros(u64::MAX / 2);
        assert_eq!(d.saturating_shl(2), SimDuration::MAX);
        assert_eq!(d.saturating_shl(64), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_micros(3).saturating_shl(2),
            SimDuration::from_micros(12)
        );
    }

    #[test]
    fn display_is_millis() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1500.000ms");
        assert_eq!(SimDuration::from_millis(0.25).to_string(), "0.250ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_micros(5),
            SimTime::ZERO,
            SimTime::from_micros(3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(3),
                SimTime::from_micros(5)
            ]
        );
    }
}
