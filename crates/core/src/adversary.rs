//! The attacker module: a global abstracted adversary.
//!
//! Instead of instantiating individual Byzantine nodes, the simulator routes
//! **every** message through one global [`Adversary`] (§III-A5). Because the
//! adversary observes each message before it is delivered, it is *rushing by
//! construction*; because it can corrupt nodes mid-run (up to the fault
//! budget `f`), it can be *adaptive*; and because it can drop, delay, modify
//! and inject messages, corrupting a node's message stream is equivalent to
//! controlling the node itself.

use std::sync::Arc;

use rand::rngs::SmallRng;

use crate::ids::{NodeId, NodeSet};
use crate::message::Message;
use crate::payload::Payload;
use crate::time::{SimDuration, SimTime};

/// What the adversary decided to do with an intercepted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver after the given delay (possibly different from the network's
    /// proposed delay).
    Deliver(SimDuration),
    /// Silently drop the message.
    Drop,
}

/// Buffered adversary effects, applied by the engine after the callback.
#[derive(Debug)]
pub(crate) enum AdvAction {
    Inject {
        src: NodeId,
        dst: NodeId,
        delay: SimDuration,
        payload: Arc<dyn Payload>,
    },
    Corrupt(NodeId),
    Crash(NodeId),
    SetTimer {
        tag: u64,
        delay: SimDuration,
    },
}

/// Capabilities handed to adversary callbacks.
///
/// Inject/corrupt/crash requests are buffered and applied by the controller
/// after the callback returns; corruption beyond the fault budget is refused.
#[derive(Debug)]
pub struct AdversaryApi<'a> {
    now: SimTime,
    n: usize,
    f: usize,
    lambda: SimDuration,
    corrupted: &'a NodeSet,
    crashed: &'a NodeSet,
    budget_left: usize,
    rng: &'a mut SmallRng,
    actions: &'a mut Vec<AdvAction>,
}

impl<'a> AdversaryApi<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        now: SimTime,
        n: usize,
        f: usize,
        lambda: SimDuration,
        corrupted: &'a NodeSet,
        crashed: &'a NodeSet,
        rng: &'a mut SmallRng,
        actions: &'a mut Vec<AdvAction>,
    ) -> Self {
        let budget_left = f.saturating_sub(corrupted.len());
        AdversaryApi {
            now,
            n,
            f,
            lambda,
            corrupted,
            crashed,
            budget_left,
            rng,
            actions,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The fault budget `f`.
    pub fn f(&self) -> usize {
        self.f
    }

    /// The protocols' configured timeout parameter λ — an adversary that
    /// knows the victim's configuration can time its attack.
    pub fn lambda(&self) -> SimDuration {
        self.lambda
    }

    /// Nodes corrupted so far (iteration is in ascending node order).
    pub fn corrupted(&self) -> &NodeSet {
        self.corrupted
    }

    /// Whether `node` is currently corrupted.
    pub fn is_corrupted(&self, node: NodeId) -> bool {
        self.corrupted.contains(node)
    }

    /// Nodes crashed (fail-stopped) so far (ascending iteration order).
    pub fn crashed(&self) -> &NodeSet {
        self.crashed
    }

    /// How many more nodes may still be corrupted.
    pub fn remaining_budget(&self) -> usize {
        self.budget_left
    }

    /// The run RNG (the adversary's randomness is part of the seeded run).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Adaptively corrupts `node`, counting against the fault budget.
    /// Returns `false` (and does nothing) if the budget is exhausted.
    /// Corrupting an already-corrupted node is a free no-op.
    pub fn corrupt(&mut self, node: NodeId) -> bool {
        if self.is_corrupted(node) {
            return true;
        }
        if self.budget_left == 0 {
            return false;
        }
        self.budget_left -= 1;
        self.actions.push(AdvAction::Corrupt(node));
        true
    }

    /// Fail-stops `node`: it stops processing events entirely. Counts
    /// against the fault budget like corruption (a crash is the weakest
    /// Byzantine behaviour). Returns `false` if the budget is exhausted.
    pub fn crash(&mut self, node: NodeId) -> bool {
        if self.crashed.contains(node) {
            return true;
        }
        if self.budget_left == 0 {
            return false;
        }
        self.budget_left -= 1;
        self.actions.push(AdvAction::Crash(node));
        true
    }

    /// Injects a forged message claiming to be from `src`, delivered to
    /// `dst` after `delay`.
    pub fn inject<P: Payload + 'static>(
        &mut self,
        src: NodeId,
        dst: NodeId,
        delay: SimDuration,
        payload: P,
    ) {
        self.inject_payload(src, dst, delay, Arc::new(payload));
    }

    /// Like [`inject`](AdversaryApi::inject), but takes an already
    /// type-erased payload handle. This lets an adversary replay a payload it
    /// intercepted in flight ([`Message::payload_arc`]) without knowing — or
    /// cloning — the concrete type.
    pub fn inject_payload(
        &mut self,
        src: NodeId,
        dst: NodeId,
        delay: SimDuration,
        payload: Arc<dyn Payload>,
    ) {
        self.actions.push(AdvAction::Inject {
            src,
            dst,
            delay,
            payload,
        });
    }

    /// Registers an adversary time event; `on_timer` fires with `tag` after
    /// `delay`.
    pub fn set_timer(&mut self, tag: u64, delay: SimDuration) {
        self.actions.push(AdvAction::SetTimer { tag, delay });
    }
}

/// A global attacker. Implement [`attack`](Adversary::attack) (the paper's
/// message-interception callback) and optionally
/// [`on_timer`](Adversary::on_timer) for time-triggered behaviour.
pub trait Adversary: Send {
    /// Called once at simulation start.
    fn init(&mut self, api: &mut AdversaryApi<'_>) {
        let _ = api;
    }

    /// Called for every message after the network proposed a delay and
    /// before the message event is scheduled. The default is to deliver
    /// unmodified with the proposed delay.
    fn attack(
        &mut self,
        msg: &mut Message,
        proposed: SimDuration,
        api: &mut AdversaryApi<'_>,
    ) -> Fate {
        let _ = (msg, api);
        Fate::Deliver(proposed)
    }

    /// Called when an adversary time event registered via
    /// [`AdversaryApi::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, api: &mut AdversaryApi<'_>) {
        let _ = (tag, api);
    }

    /// Human-readable attacker name for results and traces.
    fn name(&self) -> &'static str {
        "adversary"
    }
}

/// The benign adversary: delivers everything untouched.
#[derive(Debug, Clone, Default)]
pub struct NullAdversary;

impl NullAdversary {
    /// Creates the benign adversary.
    pub fn new() -> Self {
        NullAdversary
    }
}

impl Adversary for NullAdversary {
    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corruption_budget_is_enforced() {
        let corrupted = NodeSet::new();
        let crashed = NodeSet::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut api = AdversaryApi::new(
            SimTime::ZERO,
            4,
            1,
            SimDuration::from_millis(1000.0),
            &corrupted,
            &crashed,
            &mut rng,
            &mut actions,
        );
        assert_eq!(api.remaining_budget(), 1);
        assert!(api.corrupt(NodeId::new(0)));
        assert!(!api.corrupt(NodeId::new(1)), "budget exhausted");
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn recorrupting_is_free() {
        let corrupted: NodeSet = [NodeId::new(2)].into_iter().collect();
        let crashed = NodeSet::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut api = AdversaryApi::new(
            SimTime::ZERO,
            4,
            1,
            SimDuration::ZERO,
            &corrupted,
            &crashed,
            &mut rng,
            &mut actions,
        );
        assert_eq!(api.remaining_budget(), 0);
        assert!(api.corrupt(NodeId::new(2)), "already corrupted: no-op ok");
        assert!(actions.is_empty());
    }

    #[test]
    fn crash_shares_the_budget() {
        let corrupted = NodeSet::new();
        let crashed = NodeSet::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut api = AdversaryApi::new(
            SimTime::ZERO,
            7,
            2,
            SimDuration::ZERO,
            &corrupted,
            &crashed,
            &mut rng,
            &mut actions,
        );
        assert!(api.crash(NodeId::new(0)));
        assert!(api.corrupt(NodeId::new(1)));
        assert!(!api.crash(NodeId::new(2)));
    }

    #[test]
    fn null_adversary_delivers() {
        let corrupted = NodeSet::new();
        let crashed = NodeSet::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut actions = Vec::new();
        let mut api = AdversaryApi::new(
            SimTime::ZERO,
            4,
            1,
            SimDuration::ZERO,
            &corrupted,
            &crashed,
            &mut rng,
            &mut actions,
        );
        let mut adv = NullAdversary::new();
        let mut msg = Message::new(
            NodeId::new(0),
            NodeId::new(1),
            SimTime::ZERO,
            crate::payload::boxed(7u8),
        );
        let fate = adv.attack(&mut msg, SimDuration::from_millis(5.0), &mut api);
        assert_eq!(fate, Fate::Deliver(SimDuration::from_millis(5.0)));
    }
}
