//! The network-model interface.
//!
//! The network module simulates a peer-to-peer network: for every message it
//! assigns a `delay` sampled from a configurable distribution (§III-A4). By
//! choosing how delays are sampled and bounded, the same interface models
//! synchronous, partially-synchronous and asynchronous networks. Rich models
//! (GST, partitions, per-link matrices) live in the `bft-sim-net` crate; this
//! module defines the trait plus the trivial models the engine tests need.

use rand::rngs::SmallRng;

use crate::dist::Dist;
use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};

/// Assigns a network delay to each message.
///
/// Implementations may be stateful (e.g. a partition schedule) and may use
/// the run RNG; they must be deterministic given the RNG stream.
pub trait NetworkModel: Send {
    /// The delay for a message sent from `src` to `dst` at time `now`.
    fn delay(&mut self, src: NodeId, dst: NodeId, now: SimTime, rng: &mut SmallRng) -> SimDuration;

    /// Human-readable model name for results and traces.
    fn name(&self) -> &'static str {
        "network"
    }
}

/// Every message takes exactly the same time. The simplest synchronous
/// network; handy for unit tests and worked examples.
///
/// # Examples
///
/// ```
/// use bft_sim_core::network::{ConstantNetwork, NetworkModel};
/// use bft_sim_core::{ids::NodeId, time::{SimDuration, SimTime}};
/// use rand::SeedableRng;
///
/// let mut net = ConstantNetwork::new(SimDuration::from_millis(100.0));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let d = net.delay(NodeId::new(0), NodeId::new(1), SimTime::ZERO, &mut rng);
/// assert_eq!(d, SimDuration::from_millis(100.0));
/// ```
#[derive(Debug, Clone)]
pub struct ConstantNetwork {
    delay: SimDuration,
}

impl ConstantNetwork {
    /// Creates a network with the given fixed delay.
    pub fn new(delay: SimDuration) -> Self {
        ConstantNetwork { delay }
    }
}

impl NetworkModel for ConstantNetwork {
    fn delay(
        &mut self,
        _src: NodeId,
        _dst: NodeId,
        _now: SimTime,
        _rng: &mut SmallRng,
    ) -> SimDuration {
        self.delay
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Samples every delay i.i.d. from a distribution, unbounded — the basic
/// asynchronous-style model; the richer bounded/GST variants live in
/// `bft-sim-net`.
#[derive(Debug, Clone)]
pub struct SampledNetwork {
    dist: Dist,
}

impl SampledNetwork {
    /// Creates a network sampling delays from `dist`.
    pub fn new(dist: Dist) -> Self {
        SampledNetwork { dist }
    }

    /// The underlying distribution.
    pub fn dist(&self) -> Dist {
        self.dist
    }
}

impl NetworkModel for SampledNetwork {
    fn delay(
        &mut self,
        _src: NodeId,
        _dst: NodeId,
        _now: SimTime,
        rng: &mut SmallRng,
    ) -> SimDuration {
        self.dist.sample_delay(rng)
    }

    fn name(&self) -> &'static str {
        "sampled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_network_is_constant() {
        let mut net = ConstantNetwork::new(SimDuration::from_millis(250.0));
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..10 {
            let d = net.delay(NodeId::new(i), NodeId::new(i + 1), SimTime::ZERO, &mut rng);
            assert_eq!(d, SimDuration::from_millis(250.0));
        }
    }

    #[test]
    fn sampled_network_uses_distribution() {
        let mut net = SampledNetwork::new(Dist::uniform(10.0, 20.0));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = net
                .delay(NodeId::new(0), NodeId::new(1), SimTime::ZERO, &mut rng)
                .as_millis_f64();
            assert!((10.0..20.0).contains(&d), "delay {d}");
        }
    }
}
