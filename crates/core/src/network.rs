//! The network-model interface.
//!
//! The network module simulates a peer-to-peer network. For every message it
//! makes a link-level *decision*: deliver after a delay, or drop at the link
//! (§III-A4, extended with the bandwidth/topology realism of the network-
//! simulation literature). The decision sees the message's wire size, so
//! models can charge serialization time against per-link capacity; simple
//! delay-only models ignore it. By choosing how delays are sampled and
//! bounded, the same interface models synchronous, partially-synchronous and
//! asynchronous networks. Rich models (GST, partitions, per-link matrices,
//! bandwidth queues, churn) live in the `bft-sim-net` crate; this module
//! defines the trait plus the trivial models the engine tests need.

use rand::rngs::SmallRng;

use crate::dist::Dist;
use crate::ids::NodeId;
use crate::time::{SimDuration, SimTime};

/// A delivery verdict from a [`NetworkModel`]: how long the message takes,
/// and how much of that time was spent queued behind earlier transmissions
/// on the same link.
///
/// `queued` and `depth` are diagnostics for the observability layer
/// (`bft-sim trace` uses them to surface bottleneck links); only `delay`
/// affects when the message arrives. Delay-only models leave both at zero
/// via [`LinkDecision::deliver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Total time from send to delivery (queueing + serialization +
    /// propagation, for models that distinguish them).
    pub delay: SimDuration,
    /// Portion of `delay` spent waiting for the link to free up.
    pub queued: SimDuration,
    /// Number of earlier transmissions still serializing on this link when
    /// the message was enqueued (0 = the link was idle).
    pub depth: u32,
}

/// The link-level fate of one message: deliver with a delay, or drop at the
/// network layer (disconnected topology, a node that is down).
///
/// A network-layer drop is distinct from an adversarial drop: the engine
/// records it as a dropped fate *without* consulting the adversary, so
/// replay schedules stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// Deliver the message after [`Delivery::delay`].
    Deliver(Delivery),
    /// The link refuses the message; it is never delivered.
    Drop,
}

impl LinkDecision {
    /// A plain delivery after `delay`, with no queueing — what every
    /// delay-only model returns.
    pub fn deliver(delay: SimDuration) -> Self {
        LinkDecision::Deliver(Delivery {
            delay,
            queued: SimDuration::ZERO,
            depth: 0,
        })
    }

    /// The delivery verdict, or `None` for a drop.
    pub fn delivery(&self) -> Option<Delivery> {
        match self {
            LinkDecision::Deliver(d) => Some(*d),
            LinkDecision::Drop => None,
        }
    }

    /// The total delivery delay, or `None` for a drop.
    pub fn delay(&self) -> Option<SimDuration> {
        self.delivery().map(|d| d.delay)
    }

    /// Whether the message is dropped at the link.
    pub fn is_drop(&self) -> bool {
        matches!(self, LinkDecision::Drop)
    }
}

/// Decides the link-level fate of each message.
///
/// Implementations may be stateful (e.g. a partition schedule or per-link
/// busy clocks) and may use the run RNG; they must be deterministic given
/// the RNG stream and derive *only* from simulated quantities, so runs stay
/// byte-identical across scheduler backends and thread counts.
pub trait NetworkModel: Send {
    /// The fate of a message of `wire_bytes` bytes sent from `src` to `dst`
    /// at time `now`.
    fn decide(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
        wire_bytes: u64,
        rng: &mut SmallRng,
    ) -> LinkDecision;

    /// Human-readable model name for results and traces.
    fn name(&self) -> &'static str {
        "network"
    }
}

/// Boxed models forward to their inner model, so heterogeneous network
/// stacks can be assembled at runtime (`Box<dyn NetworkModel>` satisfies
/// `SimulationBuilder::network` like any concrete model).
impl NetworkModel for Box<dyn NetworkModel> {
    fn decide(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
        wire_bytes: u64,
        rng: &mut SmallRng,
    ) -> LinkDecision {
        (**self).decide(src, dst, now, wire_bytes, rng)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Every message takes exactly the same time. The simplest synchronous
/// network; handy for unit tests and worked examples.
///
/// # Examples
///
/// ```
/// use bft_sim_core::network::{ConstantNetwork, NetworkModel};
/// use bft_sim_core::{ids::NodeId, time::{SimDuration, SimTime}};
/// use rand::SeedableRng;
///
/// let mut net = ConstantNetwork::new(SimDuration::from_millis(100.0));
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// let d = net.decide(NodeId::new(0), NodeId::new(1), SimTime::ZERO, 64, &mut rng);
/// assert_eq!(d.delay(), Some(SimDuration::from_millis(100.0)));
/// ```
#[derive(Debug, Clone)]
pub struct ConstantNetwork {
    delay: SimDuration,
}

impl ConstantNetwork {
    /// Creates a network with the given fixed delay.
    pub fn new(delay: SimDuration) -> Self {
        ConstantNetwork { delay }
    }
}

impl NetworkModel for ConstantNetwork {
    fn decide(
        &mut self,
        _src: NodeId,
        _dst: NodeId,
        _now: SimTime,
        _wire_bytes: u64,
        _rng: &mut SmallRng,
    ) -> LinkDecision {
        LinkDecision::deliver(self.delay)
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Samples every delay i.i.d. from a distribution, unbounded — the basic
/// asynchronous-style model; the richer bounded/GST/bandwidth variants live
/// in `bft-sim-net`.
#[derive(Debug, Clone)]
pub struct SampledNetwork {
    dist: Dist,
}

impl SampledNetwork {
    /// Creates a network sampling delays from `dist`.
    pub fn new(dist: Dist) -> Self {
        SampledNetwork { dist }
    }

    /// The underlying distribution.
    pub fn dist(&self) -> Dist {
        self.dist
    }
}

impl NetworkModel for SampledNetwork {
    fn decide(
        &mut self,
        _src: NodeId,
        _dst: NodeId,
        _now: SimTime,
        _wire_bytes: u64,
        rng: &mut SmallRng,
    ) -> LinkDecision {
        LinkDecision::deliver(self.dist.sample_delay(rng))
    }

    fn name(&self) -> &'static str {
        "sampled"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_network_is_constant() {
        let mut net = ConstantNetwork::new(SimDuration::from_millis(250.0));
        let mut rng = SmallRng::seed_from_u64(0);
        for i in 0..10 {
            let d = net
                .decide(
                    NodeId::new(i),
                    NodeId::new(i + 1),
                    SimTime::ZERO,
                    64,
                    &mut rng,
                )
                .delay()
                .expect("constant network always delivers");
            assert_eq!(d, SimDuration::from_millis(250.0));
        }
    }

    #[test]
    fn sampled_network_uses_distribution() {
        let mut net = SampledNetwork::new(Dist::uniform(10.0, 20.0));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = net
                .decide(NodeId::new(0), NodeId::new(1), SimTime::ZERO, 64, &mut rng)
                .delay()
                .expect("sampled network always delivers")
                .as_millis_f64();
            assert!((10.0..20.0).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn boxed_models_forward() {
        let mut boxed: Box<dyn NetworkModel> =
            Box::new(ConstantNetwork::new(SimDuration::from_millis(5.0)));
        let mut rng = SmallRng::seed_from_u64(2);
        let d = boxed.decide(NodeId::new(0), NodeId::new(1), SimTime::ZERO, 1, &mut rng);
        assert_eq!(d.delay(), Some(SimDuration::from_millis(5.0)));
        assert_eq!(boxed.name(), "constant");
    }

    #[test]
    fn decision_helpers_classify() {
        let deliver = LinkDecision::deliver(SimDuration::from_millis(1.0));
        assert!(!deliver.is_drop());
        assert_eq!(deliver.delivery().unwrap().queued, SimDuration::ZERO);
        assert_eq!(deliver.delivery().unwrap().depth, 0);
        let drop = LinkDecision::Drop;
        assert!(drop.is_drop());
        assert_eq!(drop.delay(), None);
        assert_eq!(drop.delivery(), None);
    }
}
