//! Error types.

use core::fmt;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The run configuration is internally inconsistent.
    InvalidConfig(String),
    /// A required component (protocol factory, network model, …) was not
    /// supplied to the builder.
    MissingComponent(&'static str),
    /// Honest nodes decided conflicting values — the protocol (or the
    /// simulation of it) violated safety.
    SafetyViolation(String),
    /// Validator replay diverged from the recorded ground truth.
    ValidationMismatch(String),
}

impl SimError {
    pub(crate) fn invalid_config(msg: impl Into<String>) -> Self {
        SimError::InvalidConfig(msg.into())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::MissingComponent(what) => {
                write!(f, "simulation builder is missing a component: {what}")
            }
            SimError::SafetyViolation(msg) => write!(f, "safety violation: {msg}"),
            SimError::ValidationMismatch(msg) => write!(f, "validation mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = SimError::invalid_config("n must be positive");
        assert_eq!(e.to_string(), "invalid configuration: n must be positive");
        let e = SimError::MissingComponent("protocol factory");
        assert!(e.to_string().contains("protocol factory"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
