//! The simulation controller (§III-A1).
//!
//! [`Simulation`] owns the event scheduler, the simulation clock, the
//! consensus module instances (one [`Protocol`] per node), the network model
//! and the global adversary. [`Simulation::run`] pops events in timestamp
//! order, dispatches them, applies the resulting actions, and stops once the
//! target number of decisions completed (or the time cap is hit).
//!
//! The event queue itself is pluggable: [`SimulationBuilder::scheduler`]
//! selects a [`SchedulerKind`] backend, and every backend honours the same
//! `(timestamp, insertion seq)` total order (see [`crate::scheduler`]), so
//! the choice never changes a run's results — only its performance profile.
//! Timer cancellation is the scheduler's job: the engine keeps a plain
//! `TimerId -> handle` map and hands cancellations straight to the backend.

use std::mem;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::adversary::{AdvAction, Adversary, AdversaryApi, Fate, NullAdversary};
use crate::buggify::{FaultInjector, WireFault};
use crate::config::RunConfig;
use crate::context::{Action, Context};
use crate::error::SimError;
use crate::event::{EventKind, Timer};
use crate::fasthash::FastMap;
use crate::ids::{NodeId, NodeSet, TimerId};
use crate::message::Message;
use crate::metrics::{MetricsCollector, RunResult};
use crate::network::{LinkDecision, NetworkModel};
use crate::obs::{ObsConfig, ObsRecorder};
use crate::protocol::{Protocol, ProtocolFactory, Vacant};
use crate::scheduler::{EventHandle, Scheduler, SchedulerKind};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::validator::DeliverySchedule;
use crate::value::Value;

/// A passive probe notified as the engine executes, step by step.
///
/// Observers power external correctness checking (the oracle suite in
/// [`crate::oracle`]): they see the clock at every event and every decision
/// *as it is applied*, so properties like clock monotonicity and
/// no-decision-revocation can be checked against what actually happened
/// rather than against the engine's own summary. Observers cannot influence
/// the run — the engine hands them values, never state.
pub trait StepObserver: Send {
    /// Called once per dispatched event, after the clock advanced to `now`.
    fn on_event(&mut self, now: crate::time::SimTime) {
        let _ = now;
    }

    /// Called when `node` decides `value` for consensus slot `slot`.
    fn on_decision(&mut self, now: crate::time::SimTime, node: NodeId, slot: u64, value: Value) {
        let _ = (now, node, slot, value);
    }
}

/// Builder for a [`Simulation`].
///
/// # Examples
///
/// ```
/// use bft_sim_core::prelude::*;
/// use bft_sim_core::network::ConstantNetwork;
///
/// #[derive(Debug)]
/// struct Trivial;
/// impl Protocol for Trivial {
///     fn init(&mut self, ctx: &mut Context<'_>) { ctx.decide(Value::new(1)); }
///     fn on_message(&mut self, _m: &Message, _c: &mut Context<'_>) {}
///     fn on_timer(&mut self, _t: &Timer, _c: &mut Context<'_>) {}
/// }
///
/// let result = SimulationBuilder::new(RunConfig::new(4))
///     .network(ConstantNetwork::new(SimDuration::from_millis(100.0)))
///     .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::new(Trivial) })
///     .build()
///     .expect("valid configuration")
///     .run();
/// assert_eq!(result.decisions_completed(), 1);
/// ```
pub struct SimulationBuilder {
    cfg: RunConfig,
    network: Option<Box<dyn NetworkModel>>,
    adversary: Box<dyn Adversary>,
    factory: Option<Box<dyn ProtocolFactory>>,
    record_schedule: bool,
    replay: Option<DeliverySchedule>,
    observer: Option<Box<dyn StepObserver>>,
    scheduler: SchedulerKind,
    obs: Option<ObsConfig>,
    faults: Option<FaultInjector>,
}

impl SimulationBuilder {
    /// Starts a builder for the given run configuration.
    pub fn new(cfg: RunConfig) -> Self {
        SimulationBuilder {
            cfg,
            network: None,
            adversary: Box::new(NullAdversary::new()),
            factory: None,
            record_schedule: false,
            replay: None,
            observer: None,
            scheduler: SchedulerKind::default(),
            obs: None,
            faults: None,
        }
    }

    /// Selects the event-scheduler backend (defaults to the reference binary
    /// heap). Both built-in backends honour the same `(timestamp, insertion
    /// seq)` total order, so results are byte-identical either way; see
    /// [`crate::scheduler`] for the contract.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets the network model (required).
    pub fn network<N: NetworkModel + 'static>(mut self, network: N) -> Self {
        self.network = Some(Box::new(network));
        self
    }

    /// Sets the global adversary (defaults to the benign [`NullAdversary`]).
    pub fn adversary<A: Adversary + 'static>(mut self, adversary: A) -> Self {
        self.adversary = Box::new(adversary);
        self
    }

    /// Sets the protocol factory (required). A closure
    /// `|id: NodeId| -> Box<dyn Protocol>` works.
    pub fn protocols<F: ProtocolFactory + 'static>(mut self, factory: F) -> Self {
        self.factory = Some(Box::new(factory));
        self
    }

    /// Records the per-message delivery schedule for later validator replay.
    pub fn record_schedule(mut self, on: bool) -> Self {
        self.record_schedule = on;
        self
    }

    /// Replays a previously recorded delivery schedule instead of sampling
    /// the network and consulting the adversary (validator mode, §III-A6).
    pub fn replay_schedule(mut self, schedule: DeliverySchedule) -> Self {
        self.replay = Some(schedule);
        self
    }

    /// Installs a step observer, notified of every event and decision as the
    /// run executes. Use a shared-state observer (e.g.
    /// [`OracleObserver`](crate::oracle::OracleObserver), which is `Clone`)
    /// to read what it saw after [`Simulation::run`] consumes the engine.
    pub fn observer<O: StepObserver + 'static>(mut self, observer: O) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Enables run-level observability: per-node latency/decision histograms,
    /// a per-phase message-flow matrix, per-view timings, and a ring buffer
    /// of recent trace events (see [`crate::obs`]). The resulting snapshot is
    /// attached to [`RunResult::observability`]. When this method is *not*
    /// called, every instrumentation hook is a single `Option` check — the
    /// hot path allocates and computes nothing.
    pub fn observability(mut self, cfg: ObsConfig) -> Self {
        self.obs = Some(cfg);
        self
    }

    /// Installs a buggify fault injector (see [`crate::buggify`]). When this
    /// method is *not* called, every injection site is a single `Option`
    /// check and the run is bit-identical to one built without the catalog.
    /// Do not combine with [`replay_schedule`](Self::replay_schedule):
    /// validator mode replays recorded fates, which already embody any wire
    /// faults, and timer/dispatch faults would double-apply.
    pub fn faults(mut self, injector: FaultInjector) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Validates the configuration and constructs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for inconsistent configurations
    /// and [`SimError::MissingComponent`] if the network model or protocol
    /// factory is missing.
    pub fn build(self) -> Result<Simulation, SimError> {
        self.cfg.validate()?;
        let network = self
            .network
            .ok_or(SimError::MissingComponent("network model"))?;
        let factory = self
            .factory
            .ok_or(SimError::MissingComponent("protocol factory"))?;
        let nodes: Vec<Box<dyn Protocol>> = NodeId::all(self.cfg.n)
            .map(|id| factory.create(id))
            .collect();
        let seed = self.cfg.seed;
        Ok(Simulation {
            rng: SmallRng::seed_from_u64(seed),
            queue: self.scheduler.build(),
            clock: crate::time::SimTime::ZERO,
            nodes,
            network,
            adversary: self.adversary,
            metrics: MetricsCollector::with_expected_decisions(
                self.cfg.n,
                self.cfg.target_decisions,
            ),
            trace: Trace::new(),
            timer_handles: FastMap::default(),
            crashed: NodeSet::with_capacity(self.cfg.n),
            corrupted: NodeSet::with_capacity(self.cfg.n),
            excluded: NodeSet::with_capacity(self.cfg.n),
            next_timer_id: 0,
            node_actions: Vec::new(),
            adv_actions: Vec::new(),
            recorder: if self.record_schedule {
                Some(DeliverySchedule::new())
            } else {
                None
            },
            replay: self.replay,
            replay_diverged: false,
            observer: self.observer,
            obs: match self.obs {
                Some(cfg) => Some(ObsRecorder::new(self.cfg.n, cfg)?),
                None => None,
            },
            faults: self.faults,
            completed: 0,
            queue_high_water: 0,
            cfg: self.cfg,
        })
    }
}

impl core::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("cfg", &self.cfg)
            .field("has_network", &self.network.is_some())
            .field("has_factory", &self.factory.is_some())
            .finish_non_exhaustive()
    }
}

/// A fully-configured simulation, ready to [`run`](Simulation::run).
pub struct Simulation {
    cfg: RunConfig,
    rng: SmallRng,
    queue: Box<dyn Scheduler>,
    clock: crate::time::SimTime,
    nodes: Vec<Box<dyn Protocol>>,
    network: Box<dyn NetworkModel>,
    adversary: Box<dyn Adversary>,
    metrics: MetricsCollector,
    trace: Trace,
    /// Scheduler handle of every timer currently pending in the queue;
    /// entries leave the map when the timer fires or is cancelled, so the
    /// map stays bounded by in-flight timers and cancelling an already-fired
    /// (or never-armed) timer is naturally a no-op. Timer ids are sequential
    /// `u64`s, so the cheap multiplicative hash is collision-free enough.
    timer_handles: FastMap<TimerId, EventHandle>,
    crashed: NodeSet,
    corrupted: NodeSet,
    /// `crashed ∪ corrupted`, maintained incrementally.
    excluded: NodeSet,
    next_timer_id: u64,
    node_actions: Vec<Action>,
    adv_actions: Vec<AdvAction>,
    recorder: Option<DeliverySchedule>,
    replay: Option<DeliverySchedule>,
    replay_diverged: bool,
    observer: Option<Box<dyn StepObserver>>,
    /// Run-level instrumentation (histograms, flow matrix, event ring); None
    /// keeps every hook down to one discriminant check.
    obs: Option<ObsRecorder>,
    /// Buggify fault injector (see [`crate::buggify`]); None keeps every
    /// injection site down to one discriminant check.
    faults: Option<FaultInjector>,
    completed: u64,
    queue_high_water: usize,
}

impl core::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("cfg", &self.cfg)
            .field("clock", &self.clock)
            .field("queue_len", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Runs the simulation to completion and returns its metrics.
    ///
    /// The run stops when (a) every live honest node has decided the target
    /// number of slots, (b) the simulated time cap is reached, or (c) the
    /// event queue drains (a stalled protocol) — the latter two are reported
    /// with [`RunResult::timed_out`] set.
    pub fn run(mut self) -> RunResult {
        let timed_out = self.drive();
        self.finish(timed_out)
    }

    /// Runs the simulation and also returns the recorded delivery schedule
    /// for validator replay (implies [`SimulationBuilder::record_schedule`]).
    pub fn run_recorded(mut self) -> (RunResult, DeliverySchedule) {
        if self.recorder.is_none() {
            self.recorder = Some(DeliverySchedule::new());
        }
        let timed_out = self.drive();
        let schedule = self.recorder.take().unwrap_or_default();
        (self.finish(timed_out), schedule)
    }

    /// Runs all events to the stop condition, returning whether the run
    /// timed out. Split from [`finish`](Simulation::finish) so unit tests
    /// can inspect engine internals after the event loop completes.
    fn drive(&mut self) -> bool {
        // Adversary goes first so attacks like fail-stop-from-start take
        // effect before any node initialises.
        self.run_adversary(|adv, api| adv.init(api));
        self.apply_adv_actions();

        for id in NodeId::all(self.cfg.n) {
            if self.excluded.contains(id) {
                continue;
            }
            self.dispatch_node(id, |node, ctx| node.init(ctx));
            if self.stop_reached() {
                break;
            }
        }

        self.run_loop()
    }

    /// Consumes the driven simulation into its metrics.
    fn finish(self, timed_out: bool) -> RunResult {
        let end_time = self.clock;
        let stats = self.queue.stats();
        let observability = self.obs.map(ObsRecorder::finish);
        let mut result = self.metrics.into_result(
            end_time,
            timed_out,
            self.trace,
            self.queue_high_water,
            stats,
            observability,
        );
        if self.replay_diverged {
            result.safety_violation = result
                .safety_violation
                .or_else(|| Some("replay diverged from recorded schedule".to_string()));
        }
        result
    }

    fn run_loop(&mut self) -> bool {
        while !self.stop_reached() {
            self.queue_high_water = self.queue_high_water.max(self.queue.len());
            let Some(ev) = self.queue.pop() else {
                return true;
            };
            if ev.at.saturating_since(crate::time::SimTime::ZERO) > self.cfg.time_cap {
                self.clock = crate::time::SimTime::ZERO + self.cfg.time_cap;
                return true;
            }
            self.clock = ev.at;
            // Events are only counted as processed (and reported to the
            // observer) once they survive the skip check below; deliveries to
            // excluded nodes go to the separate `skipped_excluded_nodes`
            // counter so they cannot inflate events/sec. Cancelled timers
            // never surface here at all — the scheduler removes or suppresses
            // them — and are counted at cancellation time instead.
            match ev.kind {
                EventKind::Deliver(msg) => {
                    let dst = msg.dst();
                    if self.excluded.contains(dst) {
                        self.metrics.count_skipped_excluded();
                        continue;
                    }
                    self.count_processed_event();
                    // Self-deliveries never touch the wire; keep them out of
                    // the message accounting (see `RunResult`).
                    if !Self::is_self_delivery(&msg) {
                        self.metrics.count_delivery(dst);
                    }
                    if self.cfg.record_messages {
                        self.trace.record(
                            self.clock,
                            dst,
                            TraceKind::Delivered {
                                src: msg.src(),
                                payload_type: msg.payload().payload_type().into(),
                            },
                        );
                    }
                    if let Some(obs) = &mut self.obs {
                        if !Self::is_self_delivery(&msg) {
                            obs.on_delivered(self.clock, &msg);
                        }
                        obs.push_event(TraceEvent {
                            time: self.clock,
                            node: dst,
                            kind: TraceKind::Delivered {
                                src: msg.src(),
                                payload_type: msg.payload().payload_type().into(),
                            },
                        });
                    }
                    self.dispatch_node(dst, |node, ctx| node.on_message(&msg, ctx));
                }
                EventKind::NodeTimer { node, timer } => {
                    self.timer_handles.remove(&timer.id);
                    if self.excluded.contains(node) {
                        self.metrics.count_skipped_excluded();
                        continue;
                    }
                    self.count_processed_event();
                    self.dispatch_node(node, |n, ctx| n.on_timer(&timer, ctx));
                }
                EventKind::AdversaryTimer { tag } => {
                    self.count_processed_event();
                    self.run_adversary(|adv, api| adv.on_timer(tag, api));
                    self.apply_adv_actions();
                }
            }
        }
        false
    }

    fn stop_reached(&self) -> bool {
        self.completed >= self.cfg.target_decisions
    }

    /// Counts a dispatched event and mirrors it to the observer, keeping the
    /// two in lockstep (the metrics-sanity oracle cross-checks them).
    fn count_processed_event(&mut self) {
        self.metrics.count_event();
        if let Some(obs) = &mut self.observer {
            obs.on_event(self.clock);
        }
    }

    /// Checks a node's protocol instance out of its slot, runs `f` with a
    /// fresh [`Context`], checks it back in, then applies buffered actions.
    fn dispatch_node<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn Protocol>, &mut Context<'_>),
    {
        let mut node = mem::replace(&mut self.nodes[id.index()], Box::new(Vacant));
        let mut actions = mem::take(&mut self.node_actions);
        {
            let mut ctx = Context::new(
                id,
                self.clock,
                self.cfg.n,
                self.cfg.f,
                self.cfg.lambda,
                &mut self.rng,
                &mut actions,
                &mut self.next_timer_id,
            );
            f(&mut node, &mut ctx);
        }
        self.nodes[id.index()] = node;
        // Torn-write injection: the node's state already advanced inside
        // `f`, but only a prefix of its buffered output is applied — the
        // simulated analogue of a partial state write. Only *outputs*
        // (messages and timer ops) are tearable: Decide / EnterView /
        // Custom are oracle reports of state the node already committed
        // internally, and tearing them would blind the safety checker with
        // false disagreements rather than perturb the protocol.
        if let Some(fi) = &mut self.faults {
            if let Some(keep) = fi.on_dispatch(actions.len()) {
                let mut seen = 0usize;
                actions.retain(|action| match action {
                    Action::Decide(_) | Action::EnterView(_) | Action::Custom { .. } => true,
                    _ => {
                        seen += 1;
                        seen <= keep
                    }
                });
            }
        }
        self.apply_node_actions(id, &mut actions);
        actions.clear();
        self.node_actions = actions;
        self.apply_adv_actions();
    }

    fn apply_node_actions(&mut self, src: NodeId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { dst, payload } => {
                    self.route(Message::new(src, dst, self.clock, payload));
                }
                Action::Broadcast {
                    payload,
                    include_self,
                } => {
                    self.metrics.count_broadcast();
                    for dst in NodeId::all(self.cfg.n) {
                        if dst == src {
                            continue;
                        }
                        // O(1) per destination: bump the payload refcount
                        // instead of deep-cloning it n−1 times.
                        self.route(Message::new(src, dst, self.clock, Arc::clone(&payload)));
                    }
                    if include_self {
                        self.queue.schedule(
                            self.clock,
                            EventKind::Deliver(Message::new(src, src, self.clock, payload)),
                        );
                    }
                }
                Action::SendSelf { payload, delay } => {
                    self.queue.schedule(
                        self.clock + delay,
                        EventKind::Deliver(Message::new(src, src, self.clock, payload)),
                    );
                }
                Action::SetTimer { id, delay, payload } => {
                    let delay = match &mut self.faults {
                        Some(fi) => fi.on_timer(delay),
                        None => delay,
                    };
                    let handle = self.queue.schedule(
                        self.clock + delay,
                        EventKind::NodeTimer {
                            node: src,
                            timer: Timer::new(id, payload),
                        },
                    );
                    self.timer_handles.insert(id, handle);
                }
                Action::CancelTimer(id) => {
                    // Only pending timers have a handle; cancelling a timer
                    // that already fired (or never existed) is a no-op. The
                    // count is taken here — not at pop time — so it is
                    // identical under every scheduler backend.
                    if let Some(handle) = self.timer_handles.remove(&id) {
                        self.queue.cancel(handle);
                        self.metrics.count_cancelled_timer();
                    }
                }
                Action::Decide(value) => {
                    let slot = self.metrics.record_decision(src, self.clock, value);
                    if let Some(obs) = &mut self.observer {
                        obs.on_decision(self.clock, src, slot, value);
                    }
                    if let Some(obs) = &mut self.obs {
                        obs.on_decided(self.clock, src);
                        obs.push_event(TraceEvent {
                            time: self.clock,
                            node: src,
                            kind: TraceKind::Decided { slot, value },
                        });
                    }
                    self.trace
                        .record(self.clock, src, TraceKind::Decided { slot, value });
                    self.metrics.check_safety(src, &self.excluded);
                    self.completed = self.metrics.update_completions(self.clock, &self.excluded);
                }
                Action::EnterView(view) => {
                    if let Some(obs) = &mut self.obs {
                        obs.on_view(self.clock, view);
                        obs.push_event(TraceEvent {
                            time: self.clock,
                            node: src,
                            kind: TraceKind::View { view },
                        });
                    }
                    self.trace.record(self.clock, src, TraceKind::View { view });
                }
                Action::Custom { label, detail } => {
                    if let Some(obs) = &self.obs {
                        obs.push_event(TraceEvent {
                            time: self.clock,
                            node: src,
                            kind: TraceKind::Custom {
                                label: label.clone(),
                                detail: detail.clone(),
                            },
                        });
                    }
                    self.trace
                        .record(self.clock, src, TraceKind::Custom { label, detail });
                }
            }
        }
    }

    /// A message a node addressed to itself (`SendSelf`, the self-copy of
    /// `Broadcast { include_self: true }`, or a literal `send` to self).
    /// These never touch the wire, so — following the paper, which counts
    /// wire messages only — they are excluded from both the sent and the
    /// delivered counters. Adversary-injected messages always count.
    fn is_self_delivery(msg: &Message) -> bool {
        msg.src() == msg.dst() && !msg.is_injected()
    }

    /// Sends one honest message through network + adversary (or the replay
    /// schedule in validator mode) and schedules its delivery.
    fn route(&mut self, mut msg: Message) {
        if !Self::is_self_delivery(&msg) {
            self.metrics.count_honest_message(msg.src());
        }
        if self.cfg.record_messages {
            self.trace.record(
                self.clock,
                msg.src(),
                TraceKind::Sent {
                    dst: msg.dst(),
                    payload_type: msg.payload().payload_type().into(),
                },
            );
        }
        if let Some(obs) = &self.obs {
            obs.push_event(TraceEvent {
                time: self.clock,
                node: msg.src(),
                kind: TraceKind::Sent {
                    dst: msg.dst(),
                    payload_type: msg.payload().payload_type().into(),
                },
            });
        }

        let fate = if let Some(replay) = &mut self.replay {
            match replay.next_fate() {
                Some(f) => f,
                None => {
                    self.replay_diverged = true;
                    Fate::Deliver(self.cfg.lambda)
                }
            }
        } else {
            match self.network.decide(
                msg.src(),
                msg.dst(),
                self.clock,
                msg.wire_size(),
                &mut self.rng,
            ) {
                // A link-level drop (severed topology, node down) never
                // reaches the adversary: the network refused the message
                // before the attacker could see it. The fate is still
                // recorded below, so schedule replay stays exact.
                LinkDecision::Drop => Fate::Drop,
                LinkDecision::Deliver(delivery) => {
                    if delivery.queued > crate::time::SimDuration::ZERO {
                        if let Some(obs) = &mut self.obs {
                            obs.on_link_queued(
                                msg.src(),
                                msg.dst(),
                                delivery.queued,
                                delivery.depth,
                            );
                        }
                    }
                    let mut adv_actions = mem::take(&mut self.adv_actions);
                    let fate = {
                        let mut api = AdversaryApi::new(
                            self.clock,
                            self.cfg.n,
                            self.cfg.f,
                            self.cfg.lambda,
                            &self.corrupted,
                            &self.crashed,
                            &mut self.rng,
                            &mut adv_actions,
                        );
                        self.adversary.attack(&mut msg, delivery.delay, &mut api)
                    };
                    self.adv_actions = adv_actions;
                    fate
                }
            }
        };

        // Wire-site fault injection, applied after the adversary but before
        // the recorder so targeted drops and reorder delays land in the
        // recorded schedule (keeping schedule-replay repros exact).
        // Duplicates live outside the fate stream: a second copy is
        // scheduled below and accounted as an adversary message, so the
        // metrics-sanity invariant `delivered <= sent` keeps holding.
        let mut duplicate = None;
        let fate = match &mut self.faults {
            Some(fi) if self.replay.is_none() => match fi.on_wire(msg.dst()) {
                WireFault::None => fate,
                WireFault::Drop => Fate::Drop,
                WireFault::Delay(extra) => match fate {
                    Fate::Deliver(delay) => Fate::Deliver(delay + extra),
                    Fate::Drop => Fate::Drop,
                },
                WireFault::Duplicate(extra) => {
                    duplicate = Some(extra);
                    fate
                }
            },
            _ => fate,
        };

        if let Some(rec) = &mut self.recorder {
            rec.push(fate);
        }
        let dup_msg = duplicate.map(|extra| (msg.clone(), extra));
        match fate {
            Fate::Deliver(delay) => {
                self.queue
                    .schedule(self.clock + delay, EventKind::Deliver(msg));
            }
            Fate::Drop => {
                self.metrics.count_dropped_message();
            }
        }
        if let Some((copy, extra)) = dup_msg {
            self.metrics.count_adversary_message();
            self.queue
                .schedule(self.clock + extra, EventKind::Deliver(copy));
        }
    }

    fn run_adversary<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Box<dyn Adversary>, &mut AdversaryApi<'_>),
    {
        if self.replay.is_some() {
            return; // validator mode: the schedule already embodies the attack
        }
        let mut adv_actions = mem::take(&mut self.adv_actions);
        {
            let mut api = AdversaryApi::new(
                self.clock,
                self.cfg.n,
                self.cfg.f,
                self.cfg.lambda,
                &self.corrupted,
                &self.crashed,
                &mut self.rng,
                &mut adv_actions,
            );
            f(&mut self.adversary, &mut api);
        }
        self.adv_actions = adv_actions;
    }

    fn apply_adv_actions(&mut self) {
        let mut actions = mem::take(&mut self.adv_actions);
        for action in actions.drain(..) {
            match action {
                AdvAction::Inject {
                    src,
                    dst,
                    delay,
                    payload,
                } => {
                    self.metrics.count_adversary_message();
                    self.queue.schedule(
                        self.clock + delay,
                        EventKind::Deliver(Message::injected(src, dst, self.clock, payload)),
                    );
                }
                AdvAction::Corrupt(node) => {
                    if self.corrupted.insert(node) {
                        self.excluded.insert(node);
                        self.trace.record(self.clock, node, TraceKind::Corrupted);
                        if let Some(obs) = &self.obs {
                            obs.push_event(TraceEvent {
                                time: self.clock,
                                node,
                                kind: TraceKind::Corrupted,
                            });
                        }
                        self.completed =
                            self.metrics.update_completions(self.clock, &self.excluded);
                    }
                }
                AdvAction::Crash(node) => {
                    if self.crashed.insert(node) {
                        self.excluded.insert(node);
                        self.trace.record(self.clock, node, TraceKind::Crashed);
                        if let Some(obs) = &self.obs {
                            obs.push_event(TraceEvent {
                                time: self.clock,
                                node,
                                kind: TraceKind::Crashed,
                            });
                        }
                        self.completed =
                            self.metrics.update_completions(self.clock, &self.excluded);
                    }
                }
                AdvAction::SetTimer { tag, delay } => {
                    self.queue
                        .schedule(self.clock + delay, EventKind::AdversaryTimer { tag });
                }
            }
        }
        self.adv_actions = actions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ConstantNetwork;
    use crate::time::SimDuration;
    use crate::value::Value;

    #[derive(Debug, Clone, PartialEq)]
    enum Tick {
        Churn,
        Short,
        Long,
        Probe,
    }

    fn constant_net() -> ConstantNetwork {
        ConstantNetwork::new(SimDuration::from_millis(10.0))
    }

    /// Each round fires a timer, cancels the *already fired* id, and arms the
    /// next one. Before the armed-gating fix every stale cancellation left a
    /// tombstone in `cancelled` forever.
    #[derive(Debug, Default)]
    struct TimerChurn {
        rounds: u64,
    }

    impl Protocol for TimerChurn {
        fn init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(5.0), Tick::Churn);
        }
        fn on_message(&mut self, _m: &Message, _ctx: &mut Context<'_>) {}
        fn on_timer(&mut self, t: &Timer, ctx: &mut Context<'_>) {
            ctx.cancel_timer(t.id); // stale: this timer just fired
            self.rounds += 1;
            if self.rounds < 200 {
                ctx.set_timer(SimDuration::from_millis(5.0), Tick::Churn);
            } else {
                ctx.decide(Value::new(1));
            }
        }
    }

    #[test]
    fn stale_cancellations_leave_no_tombstones() {
        for kind in SchedulerKind::ALL {
            let mut sim = SimulationBuilder::new(RunConfig::new(4).with_seed(1))
                .network(constant_net())
                .scheduler(kind)
                .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::<TimerChurn>::default() })
                .build()
                .unwrap();
            sim.drive();
            // Stale cancels (the timer already fired) never reach the
            // scheduler: the handle left the map at pop time, so neither
            // backend accumulates tombstones.
            let stats = sim.queue.stats();
            assert_eq!(stats.pending_tombstones, 0, "{kind}");
            assert_eq!(stats.tombstones_popped, 0, "{kind}");
            assert_eq!(stats.cancelled_in_place, 0, "{kind}");
            // The handle map only tracks timers still in the queue, so the
            // bookkeeping is bounded by in-flight timers.
            assert!(sim.timer_handles.len() <= sim.queue.len(), "{kind}");
        }
    }

    /// Cancelling a pending timer must still suppress its firing.
    #[derive(Debug, Default)]
    struct CancelBeforeFire {
        long: Option<TimerId>,
    }

    impl Protocol for CancelBeforeFire {
        fn init(&mut self, ctx: &mut Context<'_>) {
            self.long = Some(ctx.set_timer(SimDuration::from_millis(100.0), Tick::Long));
            ctx.set_timer(SimDuration::from_millis(10.0), Tick::Short);
        }
        fn on_message(&mut self, _m: &Message, _ctx: &mut Context<'_>) {}
        fn on_timer(&mut self, t: &Timer, ctx: &mut Context<'_>) {
            match t.downcast_ref::<Tick>() {
                Some(Tick::Short) => {
                    ctx.cancel_timer(self.long.take().unwrap());
                    ctx.set_timer(SimDuration::from_millis(300.0), Tick::Probe);
                }
                Some(Tick::Long) => panic!("cancelled timer fired"),
                Some(Tick::Probe) => ctx.decide(Value::new(1)),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn cancelled_pending_timer_does_not_fire() {
        for kind in SchedulerKind::ALL {
            let result = SimulationBuilder::new(RunConfig::new(4).with_seed(3))
                .network(constant_net())
                .scheduler(kind)
                .protocols(|_id: NodeId| -> Box<dyn Protocol> {
                    Box::<CancelBeforeFire>::default()
                })
                .build()
                .unwrap()
                .run();
            assert_eq!(result.decisions_completed(), 1, "{kind}");
            // Each node's Long timer is cancelled while pending; the count is
            // taken at cancel time, so it is identical on both backends. Only
            // the 4 Short + 4 Probe pops are dispatched.
            assert_eq!(result.skipped_cancelled_timers, 4, "{kind}");
            assert_eq!(result.skipped_excluded_nodes, 0, "{kind}");
            assert_eq!(result.events_processed, 8, "{kind}");
            // How the backend disposed of the cancelled timers differs: the
            // heap pops tombstones lazily, the wheel removes them in place.
            match kind {
                SchedulerKind::Heap => {
                    assert_eq!(result.scheduler.tombstones_popped, 4);
                    assert_eq!(result.scheduler.cancelled_in_place, 0);
                }
                SchedulerKind::Wheel => {
                    assert_eq!(result.scheduler.tombstones_popped, 0);
                    assert_eq!(result.scheduler.cancelled_in_place, 4);
                }
            }
        }
    }

    /// Every node broadcasts at 10 ms and decides at 30 ms; the adversary
    /// crashes node 3 at 5 ms, so node 3's timer pop and its three incoming
    /// deliveries all hit the excluded-destination skip path.
    #[derive(Debug, Default)]
    struct TalkThenDecide;

    impl Protocol for TalkThenDecide {
        fn init(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(10.0), Tick::Short);
        }
        fn on_message(&mut self, _m: &Message, _ctx: &mut Context<'_>) {}
        fn on_timer(&mut self, t: &Timer, ctx: &mut Context<'_>) {
            match t.downcast_ref::<Tick>() {
                Some(Tick::Short) => {
                    ctx.broadcast(Tick::Probe);
                    ctx.set_timer(SimDuration::from_millis(20.0), Tick::Long);
                }
                Some(Tick::Long) => ctx.decide(Value::new(1)),
                _ => unreachable!(),
            }
        }
    }

    #[derive(Debug)]
    struct CrashOneEarly;

    impl Adversary for CrashOneEarly {
        fn init(&mut self, api: &mut AdversaryApi<'_>) {
            api.set_timer(0, SimDuration::from_millis(5.0));
        }
        fn on_timer(&mut self, _tag: u64, api: &mut AdversaryApi<'_>) {
            api.crash(NodeId::new(3));
        }
    }

    #[test]
    fn events_to_excluded_nodes_are_skipped_not_processed() {
        for kind in SchedulerKind::ALL {
            let result = SimulationBuilder::new(RunConfig::new(4).with_seed(7))
                .network(constant_net())
                .scheduler(kind)
                .adversary(CrashOneEarly)
                .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::<TalkThenDecide>::default() })
                .build()
                .unwrap()
                .run();
            assert_eq!(result.decisions_completed(), 1, "{kind}");
            // Skipped: node 3's Short pop + its 3 incoming Probe deliveries.
            assert_eq!(result.skipped_excluded_nodes, 4, "{kind}");
            assert_eq!(result.skipped_cancelled_timers, 0, "{kind}");
            // Processed: adversary timer + 3 Short pops + 6 live deliveries
            // + 3 Long pops.
            assert_eq!(result.events_processed, 13, "{kind}");
        }
    }

    /// One broadcast round per node, with self-inclusion and a send-to-self,
    /// to pin down the wire-messages-only accounting convention.
    #[derive(Debug)]
    struct SelfTalk;

    impl Protocol for SelfTalk {
        fn init(&mut self, ctx: &mut Context<'_>) {
            ctx.broadcast_all(Tick::Probe);
            ctx.send_self(Tick::Short);
            let me = ctx.id();
            ctx.send(me, Tick::Long);
        }
        fn on_message(&mut self, m: &Message, ctx: &mut Context<'_>) {
            if m.downcast_ref::<Tick>() == Some(&Tick::Long) {
                ctx.decide(Value::new(7));
            }
        }
        fn on_timer(&mut self, _t: &Timer, _ctx: &mut Context<'_>) {}
    }

    #[test]
    fn self_deliveries_are_excluded_from_both_counters() {
        let n = 4;
        let result = SimulationBuilder::new(RunConfig::new(n).with_seed(5))
            .network(constant_net())
            .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::new(SelfTalk) })
            .build()
            .unwrap()
            .run();
        // Only the n·(n−1) broadcast transmissions touch the wire; the
        // broadcast self-copy, send_self, and the literal send-to-self are
        // all excluded — symmetrically — from sent and delivered counts.
        let wire = (n * (n - 1)) as u64;
        assert_eq!(result.honest_messages, wire);
        assert_eq!(result.sent_per_node.iter().sum::<u64>(), wire);
        assert_eq!(result.delivered_per_node.iter().sum::<u64>(), wire);
    }

    fn run_with(kind: SchedulerKind, seed: u64) -> RunResult {
        SimulationBuilder::new(RunConfig::new(4).with_seed(seed))
            .network(constant_net())
            .scheduler(kind)
            .adversary(CrashOneEarly)
            .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::<TalkThenDecide>::default() })
            .build()
            .unwrap()
            .run()
    }

    /// The determinism contract end to end: apart from the backend's own
    /// diagnostics, a run is identical under either scheduler.
    #[test]
    fn scheduler_backend_does_not_change_the_run() {
        for seed in [1, 7, 42] {
            let heap = run_with(SchedulerKind::Heap, seed);
            let mut wheel = run_with(SchedulerKind::Wheel, seed);
            assert_ne!(heap.scheduler.scheduler, wheel.scheduler.scheduler);
            wheel.scheduler = heap.scheduler.clone();
            assert_eq!(heap, wheel, "seed {seed}");
        }
    }

    /// Observability must not perturb the run: metrics are identical with it
    /// on or off, the snapshot is byte-identical across backends, and the
    /// ring handle still works after the engine is consumed.
    #[test]
    fn observability_is_inert_and_backend_independent() {
        use crate::obs::ObsConfig;
        let run_obs = |kind: SchedulerKind| {
            let cfg = ObsConfig::new(64);
            let ring = cfg.ring();
            let result = SimulationBuilder::new(RunConfig::new(4).with_seed(7))
                .network(constant_net())
                .scheduler(kind)
                .adversary(CrashOneEarly)
                .observability(cfg)
                .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::<TalkThenDecide>::default() })
                .build()
                .unwrap()
                .run();
            (result, ring)
        };

        let plain = run_with(SchedulerKind::Heap, 7);
        let (with_obs, ring) = run_obs(SchedulerKind::Heap);
        let obs = with_obs.observability.clone().expect("snapshot attached");

        // Same run apart from the attached snapshot.
        let mut stripped = with_obs.clone();
        stripped.observability = None;
        assert_eq!(stripped, plain);

        // Wire deliveries only: 6 live Probe deliveries (node 3 is crashed
        // and its own deliveries are skipped before the obs hook).
        let delivered: u64 = obs.delivery_latency.iter().map(|h| h.count()).sum();
        assert_eq!(delivered, 6);
        // Every delivery took the constant 10 ms.
        for h in &obs.delivery_latency {
            if !h.is_empty() {
                assert_eq!(h.min_micros(), 10_000);
                assert_eq!(h.max_micros(), 10_000);
            }
        }
        // No classifier configured: all flows land in the fallback phase.
        assert_eq!(obs.flows.len(), 1);
        assert_eq!(obs.flows[0].phase, crate::obs::UNCLASSIFIED_PHASE);
        assert_eq!(obs.flows[0].total(), 6);
        // One decision per live node.
        let decisions: u64 = obs.decision_interval.iter().map(|h| h.count()).sum();
        assert_eq!(decisions, 3);
        // The ring retains events and is readable via the pre-run handle.
        assert!(!obs.recent_events.is_empty());
        assert_eq!(ring.snapshot(), obs.recent_events);
        assert!(obs
            .recent_events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::Crashed)));

        // Byte-identical across scheduler backends.
        let (wheel, _) = run_obs(SchedulerKind::Wheel);
        let wheel_obs = wheel.observability.expect("snapshot attached");
        assert_eq!(wheel_obs, obs);
        assert_eq!(
            wheel_obs.to_json().dump_pretty(),
            obs.to_json().dump_pretty()
        );
    }

    /// A schedule recorded under one backend must replay under the other:
    /// record/replay only sees message fates, which the backend cannot
    /// influence.
    #[test]
    fn schedule_recorded_on_heap_replays_on_wheel() {
        let build = |kind: SchedulerKind| {
            SimulationBuilder::new(RunConfig::new(4).with_seed(11))
                .network(constant_net())
                .scheduler(kind)
                .protocols(|_id: NodeId| -> Box<dyn Protocol> { Box::<TalkThenDecide>::default() })
        };
        let (recorded, schedule) = build(SchedulerKind::Heap)
            .record_schedule(true)
            .build()
            .unwrap()
            .run_recorded();
        let mut replayed = build(SchedulerKind::Wheel)
            .replay_schedule(schedule)
            .build()
            .unwrap()
            .run();
        assert!(
            replayed.safety_violation.is_none(),
            "replay must not diverge"
        );
        replayed.scheduler = recorded.scheduler.clone();
        assert_eq!(recorded, replayed);
    }
}
