//! Fig. 6: time usage under a network-partition attack that splits the
//! nodes in half and resolves after 20 s (the dotted line in the paper's
//! figure). Most protocols terminate a few seconds after the partition
//! resolves; HotStuff+NS needs on the order of an extra hundred seconds
//! because its naive synchronizer's doubled timeouts overshoot.

use bft_sim_bench::{banner, default_n, print_latency_table, repetitions};
use bft_simulator::experiments::figures::fig6;

fn main() {
    let (n, reps) = (default_n(), repetitions());
    let resolve_s = 20.0;
    banner(
        "Fig. 6 — time usage under a network partition attack",
        &format!(
            "halved network, resolves at {resolve_s} s; n = {n}, lambda = 1000 ms, {reps} repetitions"
        ),
    );
    let points = fig6(n, reps, 0xF166, resolve_s);
    print_latency_table(&points);

    println!();
    for p in &points {
        let extra = p.latency.mean - resolve_s;
        println!(
            "{:<12} terminates {extra:7.1} s after the partition resolves",
            p.protocol.name()
        );
    }
}
