//! Fig. 9: each node's view over time during a HotStuff+NS execution with
//! an underestimated timeout (λ = 150 ms, N(250, 50)).
//!
//! The paper's visualisation shows the nodes' views diverging after a few
//! seconds and re-converging only much later (up to ~80 s in extreme
//! cases). This harness prints each node's view timeline plus an ASCII
//! divergence strip (number of distinct views across nodes per second).

use bft_sim_bench::{banner, default_n};
use bft_simulator::experiments::figures::fig9;

fn main() {
    let n = default_n();
    // Default to a seed that exhibits the view-divergence pathology — the
    // paper's Fig. 9 likewise shows one extreme execution, not a typical
    // one. Override with BFT_SIM_SEED.
    let seed: u64 = std::env::var("BFT_SIM_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(167);
    banner(
        "Fig. 9 — per-node views during HotStuff+NS execution",
        &format!("n = {n}, lambda = 150 ms, delays N(250, 50), seed {seed}"),
    );
    let timelines = fig9(n, seed);

    let end = timelines
        .iter()
        .flat_map(|(_, t)| t.last().map(|&(s, _)| s))
        .fold(0.0f64, f64::max);
    println!("run spanned {end:.1} s of simulated time");
    println!();

    for (node, timeline) in &timelines {
        let compact: Vec<String> = timeline
            .iter()
            .map(|(t, v)| format!("{t:.1}s->v{v}"))
            .collect();
        println!("{node}: {}", compact.join(" "));
    }

    // Divergence strip: distinct views held across nodes, sampled per second.
    println!();
    println!("view divergence per second (1 = synchronized):");
    let horizon = end.ceil() as u64 + 1;
    let mut strip = String::new();
    for sec in 0..horizon {
        let t = sec as f64;
        let mut views = std::collections::HashSet::new();
        for (_, timeline) in &timelines {
            let v = timeline
                .iter()
                .take_while(|&&(ts, _)| ts <= t)
                .last()
                .map(|&(_, v)| v)
                .unwrap_or(0);
            views.insert(v);
        }
        strip.push(char::from_digit(views.len().min(9) as u32, 10).unwrap_or('9'));
        if sec % 80 == 79 {
            strip.push('\n');
        }
    }
    println!("{strip}");
}
