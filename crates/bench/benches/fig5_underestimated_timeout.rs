//! Fig. 5: time usage of the partially synchronous protocols when λ
//! underestimates the real delay (network fixed at N(250, 50)).
//!
//! Paper findings to reproduce: LibraBFT is flat across λ; PBFT improves
//! as λ approaches the actual delay; HotStuff+NS becomes extremely slow
//! and unstable at λ = 150 ms because its naive view-doubling synchronizer
//! struggles to re-synchronise views.

use bft_sim_bench::{banner, default_n, print_latency_table, repetitions};
use bft_simulator::experiments::figures::fig5;

fn main() {
    let (n, reps) = (default_n(), repetitions());
    banner(
        "Fig. 5 — latency with an underestimated timeout",
        &format!("partially synchronous protocols, n = {n}, N(250, 50), {reps} repetitions"),
    );
    let lambdas = [150.0, 250.0, 500.0, 1000.0, 2000.0];
    let points = fig5(n, reps, 0xF165, &lambdas);
    print_latency_table(&points);

    let mean = |proto: &str, lambda: &str| {
        points
            .iter()
            .find(|p| p.protocol.name() == proto && p.x == lambda)
            .map(|p| p.latency.mean)
            .unwrap_or(f64::NAN)
    };
    println!();
    println!(
        "HotStuff+NS at λ=150 vs λ=1000: {:.1}s vs {:.1}s (paper: 5.3x degradation, up to ~80 s worst case)",
        mean("hotstuff-ns", "λ=150"),
        mean("hotstuff-ns", "λ=1000"),
    );
    println!(
        "LibraBFT    at λ=150 vs λ=1000: {:.1}s vs {:.1}s (paper: flat)",
        mean("librabft", "λ=150"),
        mean("librabft", "λ=1000"),
    );
}
