//! Fig. 7: time usage across different numbers of fail-stop nodes
//! (λ = 1000 ms, delays N(1000, 300)). The paper's finding: the partially
//! synchronous protocols are *less* resilient to fail-stop nodes because
//! they wait on messages from a quorum of live nodes, and HotStuff+NS
//! degrades drastically (crashed round-robin leaders stall its chain).

use bft_sim_bench::{banner, default_n, print_latency_table, repetitions};
use bft_simulator::experiments::figures::fig7;

fn main() {
    let (n, reps) = (default_n(), repetitions());
    banner(
        "Fig. 7 — time usage vs number of fail-stop nodes",
        &format!("n = {n}, lambda = 1000 ms, delays N(1000, 300), {reps} repetitions"),
    );
    let counts = [0, 1, 2, 3, 4, 5];
    let points = fig7(n, reps, 0xF167, &counts);
    print_latency_table(&points);
}
