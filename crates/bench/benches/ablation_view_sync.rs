//! Ablation: view-synchronisation mechanisms.
//!
//! DESIGN.md §8 identifies *retransmission of synchronisation votes* — not
//! timer arithmetic — as the mechanism separating the partially synchronous
//! protocols' partition recovery (Fig. 6). This harness isolates that claim
//! by sweeping the partition length and printing each pacemaker's recovery
//! overhead:
//!
//! * HotStuff+NS — local timers only, no retransmission → pays a large
//!   re-synchronisation penalty (order of two minutes at λ = 1 s), measured
//!   from the *start* of the partition, because convergence must wait out
//!   its exponentially grown view timers;
//! * LibraBFT — timeout-vote retransmission + TCs → seconds, regardless;
//! * PBFT — view-change retransmission → seconds, regardless;
//! * Tendermint — vote gossip + the f+1 skip rule → seconds, regardless.

use bft_sim_bench::banner;
use bft_simulator::experiments::{AttackSpec, Scenario};
use bft_simulator::prelude::*;

fn main() {
    let reps: usize = std::env::var("BFT_SIM_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
        .min(20);
    banner(
        "Ablation — view synchronisation under partitions of growing length",
        &format!("n = 16, lambda = 1000 ms, N(250, 50), {reps} repetitions; cells are seconds of recovery overhead after the partition resolves"),
    );
    let kinds = [
        ProtocolKind::HotStuffNs,
        ProtocolKind::LibraBft,
        ProtocolKind::Pbft,
        ProtocolKind::Tendermint,
    ];
    let resolves_s = [5.0, 10.0, 20.0, 40.0];

    print!("{:<14}", "protocol");
    for r in resolves_s {
        print!("{:>12}", format!("{r:.0}s split"));
    }
    println!();

    for kind in kinds {
        print!("{:<14}", kind.name());
        for resolve_s in resolves_s {
            let scenario = Scenario::new(kind, 16)
                .with_attack(AttackSpec::Partition {
                    start_ms: 0,
                    end_ms: (resolve_s * 1000.0) as u64,
                    drop: true,
                })
                .with_decisions(1)
                .with_time_cap_s(1800.0);
            let results = scenario.run_many(reps, 0xAB1A);
            for r in &results {
                assert!(
                    r.safety_violation.is_none(),
                    "{kind}: {:?}",
                    r.safety_violation
                );
            }
            let overhead = scenario.latency_summary(&results).mean - resolve_s;
            print!("{overhead:>12.1}");
        }
        println!();
    }
    println!();
    println!("Expected shape: HotStuff+NS pays a large, roughly fixed re-convergence");
    println!("penalty dominated by its exponentially grown view timers (no");
    println!("retransmission can shortcut them), while the three protocols that");
    println!("re-send their synchronisation votes recover within seconds no matter");
    println!("how long the partition lasted.");
}
