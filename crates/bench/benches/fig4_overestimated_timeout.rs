//! Fig. 4: latency when the timeout is overestimated — λ raised from
//! 1000 ms to 3000 ms while the network stays at N(250, 50). Only the
//! synchronous (non-responsive) protocols slow down; the responsive ones
//! (async BA, PBFT, HotStuff+NS, LibraBFT) are unaffected.

use bft_sim_bench::{banner, default_n, print_latency_table, repetitions};
use bft_simulator::experiments::figures::fig4;
use bft_simulator::prelude::ProtocolKind;

fn main() {
    let (n, reps) = (default_n(), repetitions());
    banner(
        "Fig. 4 — latency with an overestimated timeout",
        &format!("n = {n}, delays N(250, 50), {reps} repetitions"),
    );
    let lambdas = [1000.0, 1500.0, 2000.0, 2500.0, 3000.0];
    let points = fig4(n, reps, 0xF164, &lambdas);
    print_latency_table(&points);

    println!();
    for kind in ProtocolKind::all() {
        let series: Vec<f64> = points
            .iter()
            .filter(|p| p.protocol == kind)
            .map(|p| p.latency.mean)
            .collect();
        let growth = series.last().unwrap_or(&0.0) / series.first().unwrap_or(&1.0).max(1e-9);
        println!(
            "{:<12} latency growth 1000->3000 ms: {growth:5.2}x ({})",
            kind.name(),
            if kind.responsive() {
                "responsive: expected ~1x"
            } else {
                "timer-paced: expected ~3x"
            }
        );
    }
}
