//! Fig. 8: the static fail-stop attack (left) and the rushing adaptive
//! attack (right) against the three ADD+ variants.
//!
//! Paper findings to reproduce:
//! * static attack: v1 loses ~f iterations (its round-robin leader
//!   schedule is public); v2/v3 are immune (VRF leaders are always live);
//! * rushing adaptive attack: v2 cannot terminate in expected-constant
//!   rounds (each revealed leader is corrupted until the budget empties);
//!   v3 sails through thanks to its prepare round.

use bft_sim_bench::{banner, default_n, print_latency_table, repetitions};
use bft_simulator::experiments::figures::fig8;

fn main() {
    let (n, reps) = (default_n(), repetitions());
    banner(
        "Fig. 8 — static (left) and rushing-adaptive (right) attacks on ADD+",
        &format!("n = {n}, f = (n-1)/2, lambda = 1000 ms, {reps} repetitions"),
    );
    let points = fig8(n, reps, 0xF168);
    print_latency_table(&points);

    let mean = |proto: &str, attack: &str| {
        points
            .iter()
            .find(|p| p.protocol.name() == proto && p.x == attack)
            .map(|p| p.latency.mean)
            .unwrap_or(f64::NAN)
    };
    println!();
    println!(
        "static:   v1 {:.1}s  v2 {:.1}s  v3 {:.1}s   (paper: v1 grows ~f iterations, v2/v3 flat)",
        mean("add-v1", "static"),
        mean("add-v2", "static"),
        mean("add-v3", "static"),
    );
    println!(
        "adaptive: v1 {:.1}s  v2 {:.1}s  v3 {:.1}s   (paper: v2 grows ~f iterations, v3 flat)",
        mean("add-v1", "adaptive"),
        mean("add-v2", "adaptive"),
        mean("add-v3", "adaptive"),
    );
}
