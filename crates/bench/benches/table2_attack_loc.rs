//! Table II: implemented attacks with their attacker capabilities and
//! implementation lines of code (the paper's JavaScript attacks ran
//! 86–117 LoC).

use bft_sim_bench::banner;
use bft_simulator::experiments::loc::table2;

fn main() {
    banner(
        "Table II — implemented attacks",
        "implementation LoC (non-blank, non-comment, excluding unit tests)",
    );
    println!(
        "{:<20} {:<22} {:>6}",
        "attack", "attacker capability", "LoC"
    );
    for row in table2() {
        println!("{:<20} {:<22} {:>6}", row.name, row.capability, row.loc);
    }
    println!();
    println!("paper (JavaScript): partition 86, ADD+ static 86, ADD+ adaptive 117");
}
