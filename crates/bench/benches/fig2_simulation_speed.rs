//! Fig. 2: simulation time for PBFT, event-level engine vs the
//! packet-level (BFTSim-style) baseline, λ = 1000 ms, N(250, 50).
//!
//! The paper's claims to reproduce: the baseline fails (out of memory)
//! beyond 32 nodes, while the event-level engine scales to 512; and at 32
//! nodes the event-level engine is orders of magnitude faster.

use bft_sim_bench::{banner, fmt_summary};
use bft_simulator::experiments::figures::fig2;

fn main() {
    banner(
        "Fig. 2 — simulation speed & scale",
        "PBFT, lambda = 1000 ms, delays N(250, 50); wall-clock per run",
    );
    let reps: usize = std::env::var("BFT_SIM_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let sizes = [4, 8, 16, 32, 64, 128, 256, 512];
    let rows = fig2(&sizes, reps, 0xF162);

    println!(
        "{:<6} {:>24} {:>12} {:>28} {:>12}",
        "n", "ours (wall)", "events", "baseline (wall)", "events"
    );
    let mut ratio_at_32 = None;
    for row in &rows {
        let baseline = match (&row.baseline_wall_ms, row.baseline_oom) {
            (Some(s), _) => fmt_summary(s, "ms"),
            (None, true) => "OUT OF MEMORY".to_string(),
            (None, false) => "-".to_string(),
        };
        println!(
            "{:<6} {:>24} {:>12} {:>28} {:>12}",
            row.n,
            fmt_summary(&row.core_wall_ms, "ms"),
            row.core_events,
            baseline,
            row.baseline_events
                .map(|e| e.to_string())
                .unwrap_or_default()
        );
        if row.n == 32 {
            if let Some(b) = &row.baseline_wall_ms {
                // Ratio of minima: robust against scheduler noise.
                ratio_at_32 = Some(b.min / row.core_wall_ms.min.max(1e-6));
            }
        }
    }
    if let Some(r) = ratio_at_32 {
        println!();
        println!("speedup at 32 nodes: {r:.0}x (paper: >500x, 38 ms vs 19.4 s)");
    }
    println!(
        "baseline OOM boundary: first failing n = {:?} (paper: >32)",
        rows.iter().find(|r| r.baseline_oom).map(|r| r.n)
    );
}
