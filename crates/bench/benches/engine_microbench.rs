//! Micro-benchmarks of the simulation engine: full PBFT and HotStuff+NS
//! runs at several sizes, and delay sampling — the hot paths behind
//! Fig. 2's headline numbers.
//!
//! Plain timing harness (`harness = false`): each case is warmed up once
//! and then timed over `BFT_SIM_BENCH_ITERS` iterations (default 10),
//! reporting min / mean wall time and events/s for the full runs.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use bft_sim_bench::banner;
use bft_sim_core::config::RunConfig;
use bft_sim_core::dist::Dist;
use bft_sim_core::engine::SimulationBuilder;
use bft_sim_core::network::SampledNetwork;
use bft_sim_core::time::SimDuration;
use bft_sim_protocols::registry::ProtocolKind;

fn iters() -> usize {
    std::env::var("BFT_SIM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn run_protocol(kind: ProtocolKind, n: usize, seed: u64) -> u64 {
    let cfg = kind.configure(
        RunConfig::new(n)
            .with_seed(seed)
            .with_lambda_ms(1000.0)
            .with_time_cap(SimDuration::from_secs(600.0)),
    );
    let factory = kind.factory(&cfg, 7);
    let result = SimulationBuilder::new(cfg)
        .network(SampledNetwork::new(Dist::normal(250.0, 50.0)))
        .protocols(factory)
        .build()
        .unwrap()
        .run();
    assert!(result.is_clean());
    result.events_processed
}

fn bench_full_runs(iters: usize) {
    println!(
        "{:<20} {:>6} {:>12} {:>12} {:>14}",
        "full_run", "n", "min (ms)", "mean (ms)", "events/s"
    );
    for kind in [ProtocolKind::Pbft, ProtocolKind::HotStuffNs] {
        for n in [4usize, 16, 64] {
            let mut seed = 0;
            run_protocol(kind, n, seed); // warm-up
            let mut total_ms = 0.0;
            let mut min_ms = f64::INFINITY;
            let mut events = 0u64;
            for _ in 0..iters {
                seed += 1;
                let start = Instant::now();
                events += run_protocol(kind, n, seed);
                let ms = start.elapsed().as_secs_f64() * 1e3;
                total_ms += ms;
                min_ms = min_ms.min(ms);
            }
            let mean_ms = total_ms / iters as f64;
            let events_per_sec = events as f64 / (total_ms / 1e3);
            println!(
                "{:<20} {:>6} {:>12.3} {:>12.3} {:>14.0}",
                kind.name(),
                n,
                min_ms,
                mean_ms,
                events_per_sec
            );
        }
    }
}

fn bench_delay_sampling(iters: usize) {
    const SAMPLES: usize = 1_000_000;
    println!();
    println!("{:<20} {:>18}", "dist_sample", "ns/sample (min)");
    let dists = [
        ("constant", Dist::constant(250.0)),
        ("uniform", Dist::uniform(200.0, 300.0)),
        ("normal", Dist::normal(250.0, 50.0)),
        ("exponential", Dist::exponential(250.0)),
        ("poisson", Dist::poisson(250.0)),
    ];
    for (name, dist) in dists {
        let mut min_ns = f64::INFINITY;
        let mut sink = 0u64;
        for _ in 0..iters {
            let mut rng = SmallRng::seed_from_u64(1);
            let start = Instant::now();
            for _ in 0..SAMPLES {
                sink = sink.wrapping_add(dist.sample_delay(&mut rng).as_micros());
            }
            min_ns = min_ns.min(start.elapsed().as_secs_f64() * 1e9 / SAMPLES as f64);
        }
        // Consume the sink so the sampling loop cannot be optimised away.
        assert!(sink != 1);
        println!("{name:<20} {min_ns:>18.2}");
    }
}

fn main() {
    banner(
        "Engine micro-benchmarks",
        "full PBFT / HotStuff+NS runs and per-distribution delay sampling",
    );
    let iters = iters();
    bench_full_runs(iters);
    bench_delay_sampling(iters);
}
