//! Criterion micro-benchmarks of the simulation engine: full PBFT and
//! HotStuff+NS runs at several sizes, event-queue throughput, and delay
//! sampling — the hot paths behind Fig. 2's headline numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use bft_sim_core::config::RunConfig;
use bft_sim_core::dist::Dist;
use bft_sim_core::engine::SimulationBuilder;
use bft_sim_core::network::SampledNetwork;
use bft_sim_core::time::SimDuration;
use bft_sim_protocols::registry::ProtocolKind;

fn run_protocol(kind: ProtocolKind, n: usize, seed: u64) -> u64 {
    let cfg = kind.configure(
        RunConfig::new(n)
            .with_seed(seed)
            .with_lambda_ms(1000.0)
            .with_time_cap(SimDuration::from_secs(600.0)),
    );
    let factory = kind.factory(&cfg, 7);
    let result = SimulationBuilder::new(cfg)
        .network(SampledNetwork::new(Dist::normal(250.0, 50.0)))
        .protocols(factory)
        .build()
        .unwrap()
        .run();
    assert!(result.is_clean());
    result.events_processed
}

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("pbft", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_protocol(ProtocolKind::Pbft, n, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("hotstuff-ns", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run_protocol(ProtocolKind::HotStuffNs, n, seed)
            });
        });
    }
    group.finish();
}

fn bench_delay_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_sample");
    let dists = [
        ("constant", Dist::constant(250.0)),
        ("uniform", Dist::uniform(200.0, 300.0)),
        ("normal", Dist::normal(250.0, 50.0)),
        ("exponential", Dist::exponential(250.0)),
        ("poisson", Dist::poisson(250.0)),
    ];
    for (name, dist) in dists {
        group.bench_function(name, |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| dist.sample_delay(&mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_runs, bench_delay_sampling);
criterion_main!(benches);
