//! Fig. 3: the performance of all eight BFT protocols under four network
//! environments, from fast-and-stable N(250, 50) to slow-and-unstable
//! N(1000, 1000), with λ = 1000 ms. Latency (Fig. 3a) and message usage
//! (Fig. 3b) per decision, mean ± sd over repetitions.

use bft_sim_bench::{banner, default_n, print_latency_table, repetitions};
use bft_simulator::experiments::figures::fig3;

fn main() {
    let (n, reps) = (default_n(), repetitions());
    banner(
        "Fig. 3 — performance across different delays",
        &format!("all 8 protocols, n = {n}, lambda = 1000 ms, {reps} repetitions"),
    );
    let points = fig3(n, reps, 0xF163);
    print_latency_table(&points);

    // Headline checks from the paper: HotStuff+NS has the lowest latency
    // except under N(1000, 1000), where PBFT edges it out; and HotStuff+NS
    // sends the fewest messages per decision.
    let lat = |proto: &str, env: &str| {
        points
            .iter()
            .find(|p| p.protocol.name() == proto && p.x == env)
            .map(|p| p.latency.mean)
            .unwrap_or(f64::NAN)
    };
    println!();
    println!(
        "HotStuff+NS vs PBFT under N(250,50):   {:.2}s vs {:.2}s",
        lat("hotstuff-ns", "N(250,50)"),
        lat("pbft", "N(250,50)")
    );
    println!(
        "HotStuff+NS vs PBFT under N(1000,1000): {:.2}s vs {:.2}s",
        lat("hotstuff-ns", "N(1000,1000)"),
        lat("pbft", "N(1000,1000)")
    );
}
