//! Table I: implemented BFT protocols with their network models and
//! implementation lines of code — the paper's argument that the simulator
//! makes protocols cheap to express (its JavaScript versions ran 265–606
//! LoC).

use bft_sim_bench::banner;
use bft_simulator::experiments::loc::table1;

fn main() {
    banner(
        "Table I — implemented BFT protocols",
        "implementation LoC (non-blank, non-comment, excluding unit tests)",
    );
    println!("{:<14} {:<24} {:>6}", "protocol", "network model", "LoC");
    for row in table1() {
        println!("{:<14} {:<24} {:>6}", row.name, row.network, row.loc);
    }
    println!();
    println!("paper (JavaScript): ADD+ 304/307/376, Algorand 387, async BA 265,");
    println!("                    PBFT 606, HotStuff+NS 502, LibraBFT 568");
}
