//! Allocation bisection probe: runs one protocol config under a
//! size-histogram allocator so steady-state allocation sources can be
//! identified by their exact size class.
//!
//! ```text
//! cargo run --release -p bft-sim-bench --example alloc_probe -- hotstuff-ns 64 20
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bft_sim_core::config::RunConfig;
use bft_sim_core::dist::Dist;
use bft_sim_core::engine::SimulationBuilder;
use bft_sim_core::network::SampledNetwork;
use bft_sim_core::time::SimDuration;
use bft_sim_protocols::registry::ProtocolKind;

const BUCKETS: usize = 4096;

static RECORDING: AtomicBool = AtomicBool::new(false);
static SIZES: [AtomicU64; BUCKETS] = [const { AtomicU64::new(0) }; BUCKETS];
static TOTAL: AtomicU64 = AtomicU64::new(0);

struct Probe;
unsafe impl GlobalAlloc for Probe {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if RECORDING.load(Ordering::Relaxed) {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            SIZES[layout.size().min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if RECORDING.load(Ordering::Relaxed) {
            TOTAL.fetch_add(1, Ordering::Relaxed);
            SIZES[new_size.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: Probe = Probe;

fn main() {
    let mut args = std::env::args().skip(1);
    let kind = args
        .next()
        .as_deref()
        .and_then(ProtocolKind::parse)
        .unwrap_or(ProtocolKind::HotStuffNs);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let decisions: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let cfg = kind
        .configure(
            RunConfig::new(n)
                .with_seed(1)
                .with_lambda_ms(1000.0)
                .with_time_cap(SimDuration::from_secs(3600.0)),
        )
        .with_target_decisions(decisions);
    let factory = kind.factory(&cfg, 7);
    let sim = SimulationBuilder::new(cfg)
        .network(SampledNetwork::new(Dist::normal(250.0, 50.0)))
        .protocols(factory)
        .build()
        .unwrap();
    RECORDING.store(true, Ordering::SeqCst);
    let result = sim.run();
    RECORDING.store(false, Ordering::SeqCst);

    println!(
        "{} n={n} d={decisions}: allocs={} events={} broadcasts={}",
        kind.name(),
        TOTAL.load(Ordering::Relaxed),
        result.events_processed,
        result.broadcasts,
    );
    for (sz, c) in SIZES.iter().enumerate() {
        let c = c.load(Ordering::Relaxed);
        if c > 0 {
            let tail = if sz == BUCKETS - 1 { "+" } else { "" };
            println!("  size {sz:>5}{tail}: {c}");
        }
    }
}
